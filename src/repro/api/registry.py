"""String-keyed factory registries behind the declarative API.

:func:`repro.api.simulate` turns a serializable
:class:`~repro.api.spec.SimulationSpec` into protocol / topology /
initial-condition / delay / stop objects.  The mapping from spec
*names* to *factories* lives here, in five registries that the
implementing modules populate at import time:

====================  =========================  ==========================
registry              registered by              example names
====================  =========================  ==========================
:data:`PROTOCOLS`     ``repro.protocols.*``      ``two-choices``, ``voter``
:data:`TOPOLOGIES`    ``repro.graphs.*``         ``complete``, ``ring``
:data:`INITIALS`      ``repro.workloads.initial``  ``two-colors``, ``balanced``
:data:`DELAYS`        ``repro.engine.delays``    ``exponential``, ``fixed``
:data:`STOPS`         ``repro.engine.base``      ``consensus``, ``near-consensus``
:data:`FAULTS`        ``repro.protocols.faults``  ``loss``, ``stubborn``
====================  =========================  ==========================

Each entry carries parameter metadata (:class:`ParamSpec`) so the CLI
can list, document and type-coerce ``key=value`` overrides, and so
:meth:`RegistryEntry.build` can reject unknown parameters with the
valid names in the error message.

This module is deliberately import-light (stdlib + exceptions only):
the registering modules import it at module level, so anything heavier
would recreate exactly the import cycles the registry exists to avoid.
Importing any part of :mod:`repro` populates every registry, because
``repro/__init__`` pulls in all the registering modules.

Protocols are special-cased (:class:`ProtocolEntry`): one protocol
*name* covers up to three interface realisations — a round-based
counts-exact class (``K_n`` only), an agent-level synchronous class
(any topology) and a tick-based sequential class (shared by the
sequential and continuous models) — and the runner picks the
realisation that :func:`repro.engine.dispatch.fastest_engine` can
route fastest for the requested (model, topology) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError

__all__ = [
    "ParamSpec",
    "RegistryEntry",
    "ProtocolEntry",
    "Registry",
    "ProtocolRegistry",
    "PROTOCOLS",
    "TOPOLOGIES",
    "INITIALS",
    "DELAYS",
    "STOPS",
    "FAULTS",
    "register_protocol",
    "register_topology",
    "register_initial",
    "register_delay",
    "register_stop",
    "register_fault",
]

def _parse_bool(text: str) -> bool:
    lowered = text.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"not a boolean: {text!r}")


_KINDS: Dict[str, Callable[[str], Any]] = {
    "int": int,
    "float": float,
    "str": str,
    "bool": _parse_bool,
}


@dataclass(frozen=True)
class ParamSpec:
    """Metadata for one factory parameter.

    ``kind`` names the scalar type (``int`` / ``float`` / ``str`` /
    ``bool``) used to coerce CLI-style string values; ``default`` is
    documentation only — defaults are owned by the factory signature,
    and :meth:`RegistryEntry.build` passes a parameter through only
    when the caller supplied it.
    """

    name: str
    kind: str = "float"
    default: Any = None
    required: bool = False
    doc: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown param kind {self.kind!r}; expected one of {sorted(_KINDS)}"
            )

    def coerce(self, value: Any) -> Any:
        """Coerce a CLI string into the declared kind (non-strings pass through)."""
        if not isinstance(value, str) or self.kind == "str":
            return value
        try:
            return _KINDS[self.kind](value)
        except ValueError as exc:
            raise ConfigurationError(
                f"parameter {self.name!r} expects {self.kind}, got {value!r}"
            ) from exc


def _validated_params(
    kind: str, name: str, params: Sequence[ParamSpec], overrides: Optional[Mapping]
) -> Dict[str, Any]:
    """Check *overrides* against the declared params and coerce values."""
    overrides = dict(overrides or {})
    by_name = {p.name: p for p in params}
    unknown = sorted(set(overrides) - set(by_name))
    if unknown:
        valid = ", ".join(sorted(by_name)) or "(none)"
        raise ConfigurationError(
            f"unknown parameter(s) {unknown} for {kind} {name!r}; valid: {valid}"
        )
    missing = sorted(p.name for p in params if p.required and p.name not in overrides)
    if missing:
        raise ConfigurationError(f"{kind} {name!r} requires parameter(s) {missing}")
    return {key: by_name[key].coerce(value) for key, value in overrides.items()}


@dataclass(frozen=True)
class RegistryEntry:
    """One named factory plus its parameter metadata."""

    kind: str
    name: str
    factory: Callable
    params: Tuple[ParamSpec, ...] = ()
    description: str = ""

    def build(self, overrides: Optional[Mapping] = None, *args) -> Any:
        """Call the factory with positional *args* + validated *overrides*."""
        return self.factory(*args, **_validated_params(self.kind, self.name, self.params, overrides))


class Registry:
    """Name → :class:`RegistryEntry` map with decorator registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}

    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        params: Sequence[ParamSpec] = (),
        description: str = "",
    ):
        """Register *factory* under *name*; usable as a decorator."""

        def _register(fn: Callable) -> Callable:
            if name in self._entries:
                raise ConfigurationError(f"duplicate {self.kind} registration: {name!r}")
            self._entries[name] = RegistryEntry(
                kind=self.kind,
                name=name,
                factory=fn,
                params=tuple(params),
                description=description or _first_doc_line(fn),
            )
            return fn

        if factory is None:
            return _register
        return _register(factory)

    def get(self, name: str) -> RegistryEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def build(self, name: str, overrides: Optional[Mapping] = None, *args) -> Any:
        """Build ``name`` with positional *args* and keyword *overrides*."""
        return self.get(name).build(overrides, *args)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(self.names())


@dataclass(frozen=True)
class ProtocolEntry:
    """One protocol name covering up to three interface realisations.

    ``counts`` / ``synchronous`` serve the synchronous model (counts is
    the ``K_n``-exact fast form, synchronous the agent-level fallback
    for other topologies); ``sequential`` serves both asynchronous
    models (the dispatcher upgrades it to a counts tick engine on
    ``K_n`` via ``as_sequential_counts``).  All realisations share one
    parameter list — they are the same protocol under different
    machines.
    """

    name: str
    counts: Optional[Callable] = None
    synchronous: Optional[Callable] = None
    sequential: Optional[Callable] = None
    params: Tuple[ParamSpec, ...] = ()
    description: str = ""

    def models(self) -> List[str]:
        """Execution models this protocol can run under."""
        out = []
        if self.counts is not None or self.synchronous is not None:
            out.append("synchronous")
        if self.sequential is not None:
            out.extend(["sequential", "continuous"])
        return out

    def factory_for(self, model: str, on_complete: bool = True) -> Callable:
        """The realisation the dispatcher routes fastest for *model*."""
        if model == "synchronous":
            if on_complete and self.counts is not None:
                return self.counts
            if self.synchronous is not None:
                return self.synchronous
            if self.counts is not None:  # counts-only protocols need K_n
                return self.counts
        elif model in ("sequential", "continuous"):
            if self.sequential is not None:
                return self.sequential
        else:
            raise ConfigurationError(
                f"unknown model {model!r}; expected 'sequential', 'continuous' or 'synchronous'"
            )
        raise ConfigurationError(
            f"protocol {self.name!r} does not implement the {model} model "
            f"(supported: {', '.join(self.models())})"
        )

    def build(self, model: str, overrides: Optional[Mapping] = None, on_complete: bool = True):
        factory = self.factory_for(model, on_complete=on_complete)
        return factory(**_validated_params("protocol", self.name, self.params, overrides))


class ProtocolRegistry:
    """Name → :class:`ProtocolEntry` map."""

    kind = "protocol"

    def __init__(self):
        self._entries: Dict[str, ProtocolEntry] = {}

    def register(
        self,
        name: str,
        *,
        counts: Optional[Callable] = None,
        synchronous: Optional[Callable] = None,
        sequential: Optional[Callable] = None,
        params: Sequence[ParamSpec] = (),
        description: str = "",
    ) -> ProtocolEntry:
        if name in self._entries:
            raise ConfigurationError(f"duplicate protocol registration: {name!r}")
        if counts is None and synchronous is None and sequential is None:
            raise ConfigurationError(f"protocol {name!r} registered without any realisation")
        entry = ProtocolEntry(
            name=name,
            counts=counts,
            synchronous=synchronous,
            sequential=sequential,
            params=tuple(params),
            description=description,
        )
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> ProtocolEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown protocol {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(self.names())


def _first_doc_line(fn: Callable) -> str:
    doc = (fn.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


PROTOCOLS = ProtocolRegistry()
TOPOLOGIES = Registry("topology")
INITIALS = Registry("initial condition")
DELAYS = Registry("delay model")
STOPS = Registry("stop condition")
#: Fault wrappers (:mod:`repro.protocols.faults`): factories that take
#: the protocol to wrap as their one positional argument and return the
#: wrapped protocol, so a ``SimulationSpec.faults`` chain composes
#: inner-to-outer through :meth:`Registry.build`.
FAULTS = Registry("fault wrapper")

#: Module-level aliases so registering modules read naturally.
register_protocol = PROTOCOLS.register
register_topology = TOPOLOGIES.register
register_initial = INITIALS.register
register_delay = DELAYS.register
register_stop = STOPS.register
register_fault = FAULTS.register

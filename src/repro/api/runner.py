"""``simulate(spec)``: the one front door over protocols, topologies,
engines and ensembles.

The runner resolves a :class:`~repro.api.spec.SimulationSpec` against
the registries (:func:`resolve`), routes it through
:func:`repro.engine.dispatch.fastest_engine` with ``n_reps=spec.reps``,
and normalizes whatever came back — a single :class:`RunResult` or an
ensemble list — into one :class:`~repro.api.results.SimulationResult`.

Exactness
---------
``simulate`` adds no randomness of its own:

* ``reps == 1`` calls ``engine.run(initial, seed=spec.seed, ...)``
  directly, so the result is value-for-value what hand-wiring the
  dispatcher produces (asserted across all registered protocols in
  ``tests/test_api.py``);
* ``reps > 1`` goes through
  :func:`repro.engine.ensemble.run_replicated` with the master seed,
  i.e. the PR-2 seeding contract (``SeedSequence.spawn`` children on
  the looped path, the ``"ensemble"`` child stream on the vectorised
  path) byte-for-byte as the experiments used before this API existed.

Engine imports happen inside the functions: the registering modules
(protocols, graphs, workloads) import :mod:`repro.api.registry` at
module level, and a module-level engine import here would close that
cycle while :mod:`repro.engine` is still initialising.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..core.exceptions import ConfigurationError
from .registry import DELAYS, FAULTS, INITIALS, PROTOCOLS, STOPS, TOPOLOGIES
from .results import SimulationResult
from .spec import SimulationSpec

__all__ = ["simulate", "resolve", "ResolvedSimulation"]


@dataclass
class ResolvedSimulation:
    """The concrete objects a spec names, plus the routed engine.

    Exposed so callers that need a component the aggregate does not
    carry (e.g. the initial configuration for a theory prediction, or
    the engine instance for introspection) can share the registry
    resolution instead of re-wiring it by hand.
    """

    spec: SimulationSpec
    protocol: Any
    topology: Any
    initial: Any
    delay_model: Optional[Any]
    stop: Callable
    engine: Any

    def run_kwargs(self) -> dict:
        """Engine ``run`` keyword arguments the spec implies."""
        kwargs: dict = {"stop": self.stop}
        if self.spec.model == "synchronous":
            if self.spec.max_steps is not None:
                kwargs["max_rounds"] = self.spec.max_steps
        elif self.spec.model == "sequential":
            if self.spec.max_steps is not None:
                kwargs["max_ticks"] = self.spec.max_steps
        else:  # continuous
            if self.spec.max_time is not None:
                kwargs["max_time"] = self.spec.max_time
        return kwargs

    def trace_kwargs(self) -> dict:
        """``record_trace`` keywords, translated to the engine's names."""
        if not self.spec.record_trace:
            return {}
        kwargs: dict = {"record_trace": True}
        if self.spec.trace_every is not None:
            # The engines name the cadence differently: rounds for the
            # synchronous family, parallel time for the tick engines.
            if self.spec.model == "synchronous":
                kwargs["trace_every"] = int(self.spec.trace_every)
            elif self.spec.model == "sequential":
                kwargs["trace_every_parallel"] = float(self.spec.trace_every)
            else:
                kwargs["trace_every"] = float(self.spec.trace_every)
        return kwargs


def resolve(spec: SimulationSpec) -> ResolvedSimulation:
    """Turn a spec's names into objects and route the fastest engine."""
    from ..engine.dispatch import fastest_engine

    topology = TOPOLOGIES.build(spec.topology, spec.topology_params, spec.n)
    protocol = PROTOCOLS.get(spec.protocol).build(
        spec.model, spec.protocol_params, on_complete=topology.is_complete()
    )
    # Fault wrappers compose around the resolved protocol, first entry
    # innermost; the spec layer already rejected them for the
    # synchronous model, so the build always receives a tick protocol.
    for entry in spec.faults:
        protocol = FAULTS.build(entry["name"], entry["params"], protocol)
    initial = INITIALS.build(spec.initial, spec.initial_params, spec.n)
    delay_model = None if spec.delay is None else DELAYS.build(spec.delay, spec.delay_params)
    stop = STOPS.build(spec.stop, spec.stop_params)
    engine = fastest_engine(
        protocol, topology, model=spec.model, delay_model=delay_model, n_reps=spec.reps
    )
    return ResolvedSimulation(
        spec=spec,
        protocol=protocol,
        topology=topology,
        initial=initial,
        delay_model=delay_model,
        stop=stop,
        engine=engine,
    )


def simulate(spec: SimulationSpec) -> SimulationResult:
    """Run *spec* to completion and aggregate the replications.

    See the module docstring for the exactness guarantees; the routing
    table itself lives in :func:`repro.engine.dispatch.fastest_engine`.
    """
    from ..engine.ensemble import run_replicated

    if not isinstance(spec, SimulationSpec):
        raise ConfigurationError(
            f"simulate() takes a SimulationSpec, got {type(spec).__name__}"
        )
    resolved = resolve(spec)
    run_kwargs = {**resolved.run_kwargs(), **resolved.trace_kwargs()}
    start = time.perf_counter()
    if spec.reps == 1:
        runs = [resolved.engine.run(resolved.initial, seed=spec.seed, **run_kwargs)]
    else:
        runs = run_replicated(
            resolved.engine, resolved.initial, spec.reps, seed=spec.seed, **run_kwargs
        )
    elapsed = time.perf_counter() - start
    return SimulationResult(
        spec=spec,
        runs=runs,
        engine=type(resolved.engine).__name__,
        elapsed_seconds=elapsed,
    )

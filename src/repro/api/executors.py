"""Campaign executors: how a batch of spec payloads gets run.

The executor contract is deliberately tiny so backends can be swapped
(the lesson PAPERS.md draws from ELSI's unified solver interface): an
executor is any object with a ``name`` attribute and a method ::

    map_payloads(payloads: list[dict]) -> iterable[dict]

that maps ``SimulationSpec.to_dict()`` payloads to
``SimulationResult.to_dict()`` payloads **in order** — one result per
spec, as an iterable (a list is fine; the built-in executors are
generators so results stream back as they complete, which is what lets
``run_campaign`` persist each point to the cache the moment it
finishes instead of after the whole batch — an interrupted campaign
keeps its completed prefix).  Executors move plain dicts, never live
objects: dicts pickle cheaply and identically across process
boundaries, and forcing *every* executor (including the in-process
one) through the same dict round trip is what makes ``run_campaign``
executor-independent by construction — a serial run, a 4-worker
process run and a warm cache replay all hand back byte-equal payloads.

Seeding never involves the executor: every spec arrives with its
per-point seed already pinned by
:meth:`repro.api.campaign.CampaignSpec.points`, so results cannot
depend on worker count, chunking, or completion order.
"""

from __future__ import annotations

import functools
import math
import os
from typing import Any, Dict, Iterator, Optional, Sequence, Union

from ..core.exceptions import ConfigurationError, ExperimentError

__all__ = [
    "execute_spec_payload",
    "execute_with_retries",
    "ExecutorPointError",
    "SerialExecutor",
    "ProcessExecutor",
    "EXECUTORS",
    "resolve_executor",
]


class ExecutorPointError(ExperimentError):
    """A campaign point failed inside an executor worker.

    The message names the offending spec payload by its content-address
    (:func:`repro.api.cache.spec_key`), so a failing point in a
    thousand-point campaign can be replayed directly instead of
    bisecting a bare mid-iteration traceback.  Single-string payload,
    so it pickles cleanly across the process-pool boundary.
    """


def execute_spec_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one spec payload through :func:`repro.api.simulate`.

    Module-level (hence picklable) so :class:`ProcessExecutor` can ship
    it to workers; imports are deferred per the registry's import-cycle
    rule and so forked workers pay nothing extra.
    """
    from .runner import simulate
    from .spec import SimulationSpec

    return simulate(SimulationSpec.from_dict(payload)).to_dict()


def execute_with_retries(payload: Dict[str, Any], max_retries: int = 1) -> Dict[str, Any]:
    """:func:`execute_spec_payload` plus the transient-retry contract.

    Retries a failing point up to *max_retries* times in place, then
    wraps the final exception in :class:`ExecutorPointError` carrying
    the payload's cache key.  The distributed executor implements the
    same knob coordinator-side (requeue, typically onto a *different*
    worker) so both backends tolerate the same transient failures.
    """
    from .cache import spec_key

    attempt = 0
    while True:
        attempt += 1
        try:
            return execute_spec_payload(payload)
        except Exception as exc:
            if attempt <= max_retries:
                continue
            raise ExecutorPointError(
                f"spec payload (cache key {spec_key(payload)}) failed after "
                f"{attempt} attempt(s): {type(exc).__name__}: {exc}"
            ) from exc


class SerialExecutor:
    """Run every point in the calling process, one after another."""

    name = "serial"

    def map_payloads(self, payloads: Sequence[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        for payload in payloads:
            yield execute_spec_payload(payload)


class ProcessExecutor:
    """Chunked dispatch over a :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    workers:
        Pool size (default: ``os.cpu_count()``).  The pool is never
        larger than the batch.
    chunksize:
        Points handed to a worker per dispatch.  Default aims at four
        chunks per worker — large enough to amortise pickling, small
        enough to keep the pool busy when point costs are uneven.
    max_retries:
        Transient failures tolerated per point (retried in the worker)
        before the error surfaces as an :class:`ExecutorPointError`
        naming the point's cache key.  Shared knob with the distributed
        executor.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        max_retries: int = 1,
    ):
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers
        self.chunksize = chunksize
        self.max_retries = max_retries

    def map_payloads(self, payloads: Sequence[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        from concurrent.futures import ProcessPoolExecutor

        payloads = list(payloads)
        if not payloads:
            return
        workers = min(self.workers or os.cpu_count() or 1, len(payloads))
        chunksize = self.chunksize or max(1, math.ceil(len(payloads) / (4 * workers)))
        run_one = functools.partial(execute_with_retries, max_retries=self.max_retries)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # pool.map yields in input order as chunks complete, so the
            # caller can checkpoint each result while later points run.
            yield from pool.map(run_one, payloads, chunksize=chunksize)


#: Registered executor factories, keyed by the names ``run_campaign``
#: accepts.  :mod:`repro.api.distributed` registers ``"distributed"``
#: here at import time (it lives in its own module because it imports
#: this one for :func:`execute_spec_payload`).
EXECUTORS = {
    "serial": SerialExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(
    executor: Union[str, Any],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
):
    """Turn the ``executor=`` argument of ``run_campaign`` into an object.

    Strings go through :data:`EXECUTORS`; a ``"name:arg"`` suffix is
    handed to the factory's ``from_string`` classmethod when it defines
    one (``"distributed:HOST:PORT"`` binds the coordinator address), and
    ``workers`` / ``chunksize`` apply to the process executor.  Objects
    pass through unchanged after a duck-type check, so callers can bring
    their own backend.
    """
    if isinstance(executor, str):
        name, sep, arg = executor.partition(":")
        try:
            factory = EXECUTORS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown executor {name!r}; registered: {', '.join(sorted(EXECUTORS))}"
            ) from None
        builder = getattr(factory, "from_string", None)
        if builder is not None:
            return builder(arg if sep else None, workers=workers, chunksize=chunksize)
        if sep:
            raise ConfigurationError(
                f"executor {name!r} takes no ':<arg>' suffix (only executors with a "
                f"from_string hook do, e.g. 'distributed:HOST:PORT')"
            )
        if factory is ProcessExecutor:
            return ProcessExecutor(workers=workers, chunksize=chunksize)
        return factory()
    if not callable(getattr(executor, "map_payloads", None)):
        raise ConfigurationError(
            f"an executor needs a map_payloads(list[dict]) -> iterable[dict] method "
            f"(or pass one of the registered names: {', '.join(sorted(EXECUTORS))}); "
            f"got {type(executor).__name__}"
        )
    return executor

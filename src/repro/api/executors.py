"""Campaign executors: how a batch of spec payloads gets run.

The executor contract is deliberately tiny so backends can be swapped
(the lesson PAPERS.md draws from ELSI's unified solver interface): an
executor is any object with a ``name`` attribute and a method ::

    map_payloads(payloads: list[dict]) -> iterable[dict]

that maps ``SimulationSpec.to_dict()`` payloads to
``SimulationResult.to_dict()`` payloads **in order** — one result per
spec, as an iterable (a list is fine; the built-in executors are
generators so results stream back as they complete, which is what lets
``run_campaign`` persist each point to the cache the moment it
finishes instead of after the whole batch — an interrupted campaign
keeps its completed prefix).  Executors move plain dicts, never live
objects: dicts pickle cheaply and identically across process
boundaries, and forcing *every* executor (including the in-process
one) through the same dict round trip is what makes ``run_campaign``
executor-independent by construction — a serial run, a 4-worker
process run and a warm cache replay all hand back byte-equal payloads.

Seeding never involves the executor: every spec arrives with its
per-point seed already pinned by
:meth:`repro.api.campaign.CampaignSpec.points`, so results cannot
depend on worker count, chunking, or completion order.
"""

from __future__ import annotations

import math
import os
from typing import Any, Dict, Iterator, Optional, Sequence, Union

from ..core.exceptions import ConfigurationError

__all__ = [
    "execute_spec_payload",
    "SerialExecutor",
    "ProcessExecutor",
    "EXECUTORS",
    "resolve_executor",
]


def execute_spec_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one spec payload through :func:`repro.api.simulate`.

    Module-level (hence picklable) so :class:`ProcessExecutor` can ship
    it to workers; imports are deferred per the registry's import-cycle
    rule and so forked workers pay nothing extra.
    """
    from .runner import simulate
    from .spec import SimulationSpec

    return simulate(SimulationSpec.from_dict(payload)).to_dict()


class SerialExecutor:
    """Run every point in the calling process, one after another."""

    name = "serial"

    def map_payloads(self, payloads: Sequence[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        for payload in payloads:
            yield execute_spec_payload(payload)


class ProcessExecutor:
    """Chunked dispatch over a :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    workers:
        Pool size (default: ``os.cpu_count()``).  The pool is never
        larger than the batch.
    chunksize:
        Points handed to a worker per dispatch.  Default aims at four
        chunks per worker — large enough to amortise pickling, small
        enough to keep the pool busy when point costs are uneven.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None, chunksize: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        self.workers = workers
        self.chunksize = chunksize

    def map_payloads(self, payloads: Sequence[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        from concurrent.futures import ProcessPoolExecutor

        payloads = list(payloads)
        if not payloads:
            return
        workers = min(self.workers or os.cpu_count() or 1, len(payloads))
        chunksize = self.chunksize or max(1, math.ceil(len(payloads) / (4 * workers)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # pool.map yields in input order as chunks complete, so the
            # caller can checkpoint each result while later points run.
            yield from pool.map(execute_spec_payload, payloads, chunksize=chunksize)


#: Registered executor factories, keyed by the names ``run_campaign`` accepts.
EXECUTORS = {
    "serial": SerialExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(
    executor: Union[str, Any],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
):
    """Turn the ``executor=`` argument of ``run_campaign`` into an object.

    Strings go through :data:`EXECUTORS` (``workers`` / ``chunksize``
    apply to the process executor); objects pass through unchanged after
    a duck-type check, so callers can bring their own backend.
    """
    if isinstance(executor, str):
        try:
            factory = EXECUTORS[executor]
        except KeyError:
            raise ConfigurationError(
                f"unknown executor {executor!r}; registered: {', '.join(sorted(EXECUTORS))}"
            ) from None
        if factory is ProcessExecutor:
            return ProcessExecutor(workers=workers, chunksize=chunksize)
        return factory()
    if not callable(getattr(executor, "map_payloads", None)):
        raise ConfigurationError(
            f"an executor needs a map_payloads(list[dict]) -> iterable[dict] method; "
            f"got {type(executor).__name__}"
        )
    return executor

"""A stdlib HTTP client for the ``repro serve`` surface.

Thin by design: one persistent keep-alive connection per client (so a
load generator pays connection setup once, not per request), JSON in
and out, and errors surfaced as :class:`ServeError` carrying the HTTP
status.  A :class:`ServeClient` is **not** thread-safe — give each
client thread its own instance (the underlying
:class:`http.client.HTTPConnection` serializes one request at a time).

>>> from repro.api.serve import ServeClient
>>> client = ServeClient("127.0.0.1:7680")        # doctest: +SKIP
>>> client.simulate({"protocol": "two-choices", "n": 10000, "seed": 7})  # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple, Union

from ...core.exceptions import ExperimentError
from ..distributed import parse_address

__all__ = ["ServeError", "ServeClient"]


class ServeError(ExperimentError):
    """A non-2xx server reply, carrying its HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _payload_of(obj: Any) -> Dict[str, Any]:
    """Accept a spec object or its ``to_dict`` payload."""
    to_dict = getattr(obj, "to_dict", None)
    return to_dict() if callable(to_dict) else dict(obj)


class ServeClient:
    """Requests against one ``repro serve`` instance."""

    def __init__(self, address: Union[str, Tuple[str, int]], timeout: float = 330.0):
        if isinstance(address, str):
            host, port = parse_address(address, default_port=-1)
            if port < 0:
                raise ExperimentError(f"serve address {address!r} needs an explicit port")
        else:
            host, port = address
        self.host, self.port = host, int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request_raw(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request; returns ``(status, headers, raw body bytes)``.

        The raw form exists so callers can byte-compare coalesced
        responses; retries once on a dropped keep-alive connection (the
        server may have closed an idle one under us).
        """
        encoded = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if encoded is not None else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=encoded, headers=headers)
                response = conn.getresponse()
                data = response.read()
                return response.status, dict(response.getheaders()), data
            except (http.client.HTTPException, ConnectionError, BrokenPipeError, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(self, method: str, path: str, body: Optional[Dict[str, Any]] = None) -> Any:
        status, _, data = self.request_raw(method, path, body)
        try:
            payload = json.loads(data.decode("utf-8")) if data else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(status, f"non-JSON reply from server: {exc}") from exc
        if status >= 400:
            message = payload.get("error") if isinstance(payload, dict) else None
            raise ServeError(status, message or f"HTTP {status}")
        return payload

    # -- read side -----------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def registry(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/registry")

    def jobs(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/jobs")

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def result(self, key: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/results/{key}")

    # -- write side ----------------------------------------------------
    @staticmethod
    def _post_path(base: str, wait: bool, timeout: Optional[float]) -> str:
        query = []
        if not wait:
            query.append("wait=0")
        if timeout is not None:
            query.append(f"timeout={timeout}")
        return base + ("?" + "&".join(query) if query else "")

    def simulate(
        self, spec: Any, wait: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """POST a :class:`SimulationSpec` (object or payload).

        Returns the result payload (``200``) or the ``202`` job body
        (``{"job": ..., "key": ..., "status": ...}``) when ``wait`` is
        off or the window elapsed — tell them apart by the ``"job"``
        key.
        """
        path = self._post_path("/v1/simulate", wait, timeout)
        return self._json("POST", path, _payload_of(spec))

    def campaign(
        self, campaign: Any, wait: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """POST a :class:`CampaignSpec`; same reply shape as :meth:`simulate`."""
        path = self._post_path("/v1/campaign", wait, timeout)
        return self._json("POST", path, _payload_of(campaign))

    def wait_job(
        self, job_id: str, poll: float = 0.1, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Poll ``GET /v1/jobs/<id>`` until terminal; return the result.

        On ``done``, fetches and returns the payload under the job's
        key; on ``error``, raises :class:`ServeError` with the job's
        message.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] == "done":
                return self.result(job["key"])
            if job["status"] == "error":
                raise ServeError(500, job.get("error") or "job failed")
            if deadline is not None and time.monotonic() >= deadline:
                raise ServeError(504, f"job {job_id} still {job['status']} after {timeout}s")
            time.sleep(poll)

"""``repro serve`` — the persistent simulation-as-a-service front door.

PRs 3/4/7 reduced every experiment to a serializable, content-addressed
value: a :class:`~repro.api.spec.SimulationSpec` or
:class:`~repro.api.campaign.CampaignSpec` payload whose result is a
pure function of its content, deduplicated by the
:class:`~repro.api.cache.ResultCache`.  That is exactly the shape of an
RPC request, and this module is the long-running server over it — one
stable HTTP surface (stdlib ``http.server`` only) with the executor
registry, ``fastest_engine`` dispatch, and the cache hidden behind it.

HTTP surface
------------
==================================  ========================================
``POST /v1/simulate``               ``SimulationSpec`` JSON → result payload
``POST /v1/campaign``               ``CampaignSpec`` JSON → deterministic
                                    campaign payload (no ``execution`` block)
``GET /v1/jobs`` / ``/v1/jobs/<id>``  job lifecycle + point-level progress
``GET /v1/results/<key>``           cached result payload by content key
``GET /v1/registry``                the ``repro list`` registries as JSON
``GET /healthz``                    liveness + serve counters
==================================  ========================================

Request path for a ``POST``:

1. **Warm hit** — the spec's content key is already in the cache: the
   handler thread answers synchronously from
   :meth:`ResultCache.get_payload` (memo-backed, zero parse on hot
   keys) without touching the queue.  Microseconds.
2. **Coalesced** — the key is cold but already *in flight*: the request
   joins the existing :class:`~repro.api.serve.flight.Flight` and waits
   for the one shared computation.  N identical concurrent cold
   requests produce exactly one engine run.
3. **Cold** — the request becomes the flight leader: a
   :class:`~repro.api.serve.jobs.Job` is created and queued onto the
   bounded worker pool, which executes it through the ``map_payloads``
   executor contract (``serial`` in the worker thread by default;
   ``process`` or ``distributed:HOST:PORT`` via ``--executor``).  The
   result is cached, the flight resolves, every waiter gets the same
   bytes.

``wait=0`` (query) makes 2/3 return ``202`` with the job id instead of
blocking; a blocking request that outlives its ``timeout`` degrades to
the same ``202`` so the client can poll ``GET /v1/jobs/<id>`` — whose
progress for campaigns streams point by point as results land in the
cache (the PR-7 ``progress_hook`` path, surfaced through
:class:`_ProgressCache`).

Response bodies for results are exactly the ``to_dict()`` payloads the
in-process front doors produce (``simulate()``; ``run_campaign()``
minus the volatile ``execution`` block), serialized with sorted keys —
so equal requests get byte-identical bodies and the server is
value-identical to calling the library.  Non-finite statistics are
emitted as JSON ``NaN``/``Infinity`` literals, matching the on-disk
cache-entry format.

Drain semantics
---------------
``SIGTERM`` (or ``SIGINT``) starts a graceful drain: the listener stops
accepting, new work is refused with ``503``, every already-queued and
in-flight job runs to completion (each campaign point persists to the
cache the moment it lands, so nothing computed is ever lost), blocked
waiters receive their responses, and the process exits 0.
"""

from __future__ import annotations

import json
import queue
import signal
import sys
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, TextIO, Tuple
from urllib.parse import parse_qs, urlparse

from ...core.exceptions import ConfigurationError, ExperimentError
from ..cache import ResultCache, spec_key
from ..campaign import CampaignSpec, run_campaign
from ..executors import resolve_executor
from ..registry import DELAYS, INITIALS, PROTOCOLS, STOPS, TOPOLOGIES
from ..spec import SimulationSpec
from .flight import SingleFlight
from .jobs import JobTable

__all__ = [
    "ServeRequestError",
    "SimulationService",
    "ReproServer",
    "run_server",
    "DEFAULT_WAIT_TIMEOUT",
]

#: Seconds a blocking request waits on a flight before degrading to a
#: ``202`` + job id (override per request with the ``timeout`` query
#: parameter).
DEFAULT_WAIT_TIMEOUT = 300.0

#: Upper bound on an accepted request body; a campaign spec is a few KB,
#: so this is orders of magnitude of slack.
MAX_BODY_BYTES = 16 * 1024 * 1024

_SHUTDOWN = object()


class ServeRequestError(ExperimentError):
    """A request the server refuses, carrying its HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServeStats:
    """Monotonic serve counters (``/healthz`` and the load benchmark)."""

    FIELDS = (
        "requests",
        "simulate_requests",
        "campaign_requests",
        "cache_hits",
        "coalesced",
        "engine_runs",
        "campaign_point_hits",
        "errors",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self.FIELDS}  # guarded-by: _lock

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + by

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


class _ProgressCache(ResultCache):
    """A view of the serve cache that reports landed points to a job.

    ``run_campaign`` persists every completed point through its cache —
    in completion order via the executor ``progress_hook`` and again in
    expansion order by the in-order consumer — so delegating ``put``
    (and hit-serving ``get``) to the shared cache while marking the
    point's key on the job is all it takes to stream campaign progress:
    ``GET /v1/jobs/<id>`` sees ``completed`` climb as points land.
    Progress counts unique keys, so the double-put is harmless.
    """

    def __init__(self, inner: ResultCache, job):
        super().__init__(inner.directory, memo_size=0)
        self._inner = inner
        self._job = job

    def get_payload(self, spec):
        payload = self._inner.get_payload(spec)
        if payload is not None:
            self._job.mark_point(spec_key(spec))
        return payload

    def put(self, spec, result):
        path = self._inner.put(spec, result)
        self._job.mark_point(spec_key(spec))
        return path

    def __contains__(self, spec):
        return self._inner.__contains__(spec)


class SimulationService:
    """The HTTP-independent serve core: cache + jobs + flights + pool.

    Parameters
    ----------
    cache_dir:
        Directory of the content-addressed result cache (shared freely
        with ``repro sweep --cache-dir`` — the serve layer is just
        another client of the same store).
    workers:
        Worker-pool threads draining the cold-run queue.
    executor:
        ``map_payloads`` backend each job runs through: ``"serial"``
        (in the worker thread, the default), ``"process"``, or
        ``"distributed:HOST:PORT"``.  A distributed executor binds its
        coordinator socket once at service start and is shared by all
        jobs (serialized — one coordinator session at a time).
    queue_limit:
        Bound on queued cold jobs; admission beyond it is refused with
        ``503`` instead of letting memory grow without limit.
    memo_size:
        LRU memo entries the cache keeps in-process for the warm-hit
        fast path.
    """

    def __init__(
        self,
        cache_dir: str = ".repro-cache",
        workers: int = 2,
        executor: str = "serial",
        queue_limit: int = 256,
        memo_size: int = 1024,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ConfigurationError(f"queue_limit must be >= 1, got {queue_limit}")
        self.cache = ResultCache(cache_dir, memo_size=memo_size)
        self.jobs = JobTable()
        self.flights = SingleFlight()
        self.stats = ServeStats()
        self.workers = int(workers)
        self.queue_limit = int(queue_limit)
        self.queue: "queue.Queue" = queue.Queue(maxsize=queue_limit + workers)
        self.draining = threading.Event()
        self.started_at = time.monotonic()  # uptime baseline, never rendered as a date
        self.executor_spec = str(executor)
        # Validate the executor string eagerly (unknown names should
        # fail at startup, not on the first cold request); a distributed
        # executor also binds its coordinator socket here, shared across
        # jobs and serialized by the lock below.
        self._executor_lock = threading.Lock()
        self._shared_executor = None
        if self.executor_spec.partition(":")[0] == "distributed":
            self._shared_executor = resolve_executor(self.executor_spec)
        else:
            resolve_executor(self.executor_spec)
        self._threads = []
        self._idle = threading.Condition()
        self._active_requests = 0  # guarded-by: _idle
        # Finished campaign aggregates, keyed by campaign content hash.
        # Points live in the ResultCache; the aggregate is a pure
        # function of the campaign spec, so memoizing it gives repeated
        # campaign POSTs (and async GET /v1/results/<key> retrieval) a
        # warm path without re-walking every point.
        self._campaign_memo: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()  # guarded-by: _campaign_memo_lock
        self._campaign_memo_lock = threading.Lock()
        self.campaign_memo_size = 64
        self.start()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, grace: float = 10.0) -> None:
        """Finish every queued/in-flight job, then stop the pool.

        Sentinels are FIFO-queued behind the pending jobs, so each
        worker finishes the real work first; *grace* bounds the final
        wait for handler threads still writing responses.
        """
        self.draining.set()
        for _ in self._threads:
            self.queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join()
        if self._shared_executor is not None:
            self._shared_executor.close()
        deadline = time.monotonic() + grace
        with self._idle:
            while self._active_requests > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)

    # -- request accounting (drain waits for responses in progress) ---
    def request_started(self) -> None:
        with self._idle:
            self._active_requests += 1

    def request_finished(self) -> None:
        with self._idle:
            self._active_requests -= 1
            if self._active_requests <= 0:
                self._idle.notify_all()

    # -- admission -----------------------------------------------------
    def submit_simulate(
        self, payload: Any, wait: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Handle one ``POST /v1/simulate`` body; see :meth:`_respond`."""
        self.stats.bump("simulate_requests")
        spec = self._parse_spec(payload)
        key = spec_key(spec)
        hit = self.cache.get_payload(spec)
        if hit is not None:
            self.stats.bump("cache_hits")
            return {"kind": "result", "served": "cache", "key": key, "payload": hit}
        flight, leader = self._admit("simulate", key, spec.to_dict(), total=1)
        return self._respond(flight, leader, wait, timeout)

    def submit_campaign(
        self, payload: Any, wait: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Handle one ``POST /v1/campaign`` body; see :meth:`_respond`."""
        self.stats.bump("campaign_requests")
        campaign = self._parse_campaign(payload)
        canonical = campaign.to_dict()
        key = spec_key(canonical)  # same canonical-JSON content hash
        hit = self._campaign_memo_get(key)
        if hit is not None:
            self.stats.bump("cache_hits")
            return {"kind": "result", "served": "cache", "key": key, "payload": hit}
        flight, leader = self._admit("campaign", key, canonical, total=campaign.size)
        return self._respond(flight, leader, wait, timeout)

    def _campaign_memo_get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._campaign_memo_lock:
            payload = self._campaign_memo.get(key)
            if payload is not None:
                self._campaign_memo.move_to_end(key)
            return payload

    def _campaign_memo_put(self, key: str, payload: Dict[str, Any]) -> None:
        with self._campaign_memo_lock:
            self._campaign_memo[key] = payload
            self._campaign_memo.move_to_end(key)
            while len(self._campaign_memo) > self.campaign_memo_size:
                self._campaign_memo.popitem(last=False)

    def _admit(self, kind: str, key: str, work: Dict[str, Any], total: int):
        if self.draining.is_set():
            raise ServeRequestError(503, "server is draining; no new work accepted")

        def on_lead(flight) -> None:
            job = self.jobs.create(kind, key, total)
            flight.job_id = job.id
            try:
                self.queue.put_nowait((job, kind, key, work))
            except queue.Full:
                job.mark_error("refused: job queue full")
                raise ServeRequestError(
                    503, f"job queue full ({self.queue_limit} pending); retry later"
                ) from None

        flight, leader = self.flights.join(key, on_lead)
        if not leader:
            self.stats.bump("coalesced")
        return flight, leader

    def _respond(self, flight, leader: bool, wait: bool, timeout: Optional[float]) -> Dict[str, Any]:
        job_payload = {
            "kind": "job",
            "served": "queued" if leader else "coalesced",
            "key": flight.key,
            "job_id": flight.job_id,
        }
        if not wait:
            return job_payload
        window = DEFAULT_WAIT_TIMEOUT if timeout is None else timeout
        if not flight.wait(window):
            job_payload["served"] = "timeout"
            return job_payload
        if flight.error is not None:
            raise ServeRequestError(500, flight.error)
        return {
            "kind": "result",
            "served": "engine" if leader else "coalesced",
            "key": flight.key,
            "job_id": flight.job_id,
            "payload": flight.payload,
        }

    # -- request validation -------------------------------------------
    def _parse_spec(self, payload: Any) -> SimulationSpec:
        if not isinstance(payload, dict):
            raise ServeRequestError(400, "request body must be a SimulationSpec JSON object")
        try:
            spec = SimulationSpec.from_dict(payload)
        except (ConfigurationError, TypeError, ValueError) as exc:
            raise ServeRequestError(400, f"bad SimulationSpec: {exc}") from exc
        if spec.seed is None:
            raise ServeRequestError(
                400,
                "serve requires a seeded spec: with seed=None the result is not a "
                "function of the request, so it can be neither cached nor coalesced",
            )
        if spec.record_trace:
            raise ServeRequestError(
                400, "serve refuses traced specs: traces do not survive the payload round trip"
            )
        self._check_names(spec)
        return spec

    @staticmethod
    def _check_names(spec: SimulationSpec) -> None:
        """Reject unknown registry names at admission time (400, not 500).

        Cheap lookups only — parameters and builds are still validated
        by the engine on the worker side; this just keeps typos from
        occupying a queue slot and surfacing as an opaque job error.
        """
        try:
            PROTOCOLS.get(spec.protocol)
            TOPOLOGIES.get(spec.topology)
            INITIALS.get(spec.initial)
            STOPS.get(spec.stop)
            if spec.delay is not None:
                DELAYS.get(spec.delay)
        except ConfigurationError as exc:
            raise ServeRequestError(400, str(exc)) from exc

    def _parse_campaign(self, payload: Any) -> CampaignSpec:
        if not isinstance(payload, dict):
            raise ServeRequestError(400, "request body must be a CampaignSpec JSON object")
        try:
            campaign = CampaignSpec.from_dict(payload)
        except (ConfigurationError, TypeError, ValueError, KeyError) as exc:
            raise ServeRequestError(400, f"bad CampaignSpec: {exc}") from exc
        if campaign.base.record_trace:
            raise ServeRequestError(
                400, "serve refuses traced campaigns: traces do not survive the payload round trip"
            )
        self._check_names(campaign.base)
        return campaign

    # -- the worker pool ----------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self.queue.get()
            try:
                if item is _SHUTDOWN:
                    return
                job, kind, key, work = item
                job.mark_running()
                try:
                    if kind == "simulate":
                        self._run_simulate(job, key, work)
                    else:
                        self._run_campaign(job, key, work)
                except Exception as exc:  # noqa: BLE001 - job isolation
                    message = f"{type(exc).__name__}: {exc}"
                    job.mark_error(message)
                    self.stats.bump("errors")
                    self.flights.resolve(key, error=message)
            finally:
                self.queue.task_done()

    def _run_simulate(self, job, key: str, payload: Dict[str, Any]) -> None:
        spec = SimulationSpec.from_dict(payload)
        # Re-check the cache at execution time: a request that raced the
        # tail of an earlier flight may have been admitted after that
        # flight resolved — serve the cached value instead of re-running.
        hit = self.cache.get_payload(spec)
        if hit is not None:
            self.stats.bump("cache_hits")
            job.mark_point(key)
            job.mark_done(engine_runs=0, cache_hits=1)
            self.flights.resolve(key, payload=hit)
            return
        result = self._map_payloads([payload])[0]
        self.cache.put(spec, result)
        self.stats.bump("engine_runs")
        job.mark_point(key)
        job.mark_done(engine_runs=1)
        self.flights.resolve(key, payload=result)

    def _run_campaign(self, job, key: str, payload: Dict[str, Any]) -> None:
        campaign = CampaignSpec.from_dict(payload)
        progress = _ProgressCache(self.cache, job)
        if self._shared_executor is not None:
            with self._executor_lock:
                # The shared distributed coordinator is single-campaign by
                # design: _executor_lock exists to serialize whole runs, so
                # holding it across the run is the point, not a hazard.
                result = run_campaign(campaign, executor=self._shared_executor, cache=progress)  # repro: lint-ignore[REPRO-L002] serializing runs is this lock's purpose
        else:
            result = run_campaign(campaign, executor=self.executor_spec, cache=progress)
        out = result.to_dict()
        execution = out.pop("execution")
        self.stats.bump("engine_runs", execution["engine_runs"])
        self.stats.bump("campaign_point_hits", execution["cache_hits"])
        job.mark_done(
            engine_runs=execution["engine_runs"], cache_hits=execution["cache_hits"]
        )
        self._campaign_memo_put(key, out)
        self.flights.resolve(key, payload=out)

    def _map_payloads(self, payloads):
        """One batch through the configured ``map_payloads`` backend."""
        if self._shared_executor is not None:
            with self._executor_lock:
                # Same contract as _run_campaign: the shared coordinator
                # socket handles one batch at a time, serialized here.
                results = list(self._shared_executor.map_payloads(payloads))  # repro: lint-ignore[REPRO-L002] serializing batches is this lock's purpose
        else:
            executor = resolve_executor(self.executor_spec)
            try:
                results = list(executor.map_payloads(payloads))
            finally:
                closer = getattr(executor, "close", None)
                if callable(closer):
                    closer()
        if len(results) != len(payloads):
            raise ExperimentError(
                f"executor {self.executor_spec!r} returned {len(results)} payload(s) "
                f"for {len(payloads)} spec(s)"
            )
        return results

    # -- read-side payloads -------------------------------------------
    def read_result(self, key: str) -> Optional[Dict[str, Any]]:
        """``GET /v1/results/<key>``: campaign aggregate or cached point."""
        payload = self._campaign_memo_get(key)
        if payload is not None:
            return payload
        return self.cache.read_key(key)

    def health_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining.is_set() else "ok",
            "uptime_seconds": time.monotonic() - self.started_at,
            "workers": self.workers,
            "executor": self.executor_spec,
            "queue_depth": self.queue.qsize(),
            "inflight": self.flights.pending(),
            "jobs": self.jobs.counts(),
            "stats": self.stats.snapshot(),
            "cache_memo_entries": self.cache.memo_len,
        }

    def registry_payload(self) -> Dict[str, Any]:
        """The ``repro list`` registries as JSON."""
        from ...bench import experiment_ids
        from ..executors import EXECUTORS

        def params(entry):
            return [
                {
                    "name": p.name,
                    "kind": p.kind,
                    "required": p.required,
                    "default": p.default,
                    "doc": p.doc,
                }
                for p in entry.params
            ]

        protocols = {}
        for name in PROTOCOLS.names():
            entry = PROTOCOLS.get(name)
            protocols[name] = {
                "models": list(entry.models()),
                "params": params(entry),
                "description": entry.description,
            }
        sections: Dict[str, Any] = {"protocols": protocols}
        for section, registry in (
            ("topologies", TOPOLOGIES),
            ("initials", INITIALS),
            ("delays", DELAYS),
            ("stops", STOPS),
        ):
            sections[section] = {
                name: {
                    "params": params(registry.get(name)),
                    "description": registry.get(name).description,
                }
                for name in registry.names()
            }
        sections["executors"] = {
            name: ((EXECUTORS[name].__doc__ or "").strip().splitlines() or ["-"])[0]
            for name in sorted(EXECUTORS)
        }
        sections["experiments"] = list(experiment_ids())
        return sections


# ---------------------------------------------------------------------------
# the HTTP layer
# ---------------------------------------------------------------------------
def _make_handler(service: SimulationService, quiet: bool = True):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"
        timeout = 120
        # The warm path answers in microseconds; without TCP_NODELAY the
        # Nagle / delayed-ACK interaction stalls the small header+body
        # writes ~40 ms, burying the cache win.
        disable_nagle_algorithm = True

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt, *args):  # noqa: A003 - stdlib name
            if not quiet:
                super().log_message(fmt, *args)

        def _send_json(self, status: int, obj: Any, extra: Optional[Dict[str, str]] = None):
            body = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if service.draining.is_set():
                self.send_header("Connection", "close")
                self.close_connection = True
            for name, value in (extra or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_error_json(self, status: int, message: str):
            self._send_json(status, {"error": message})

        def _read_body(self) -> Any:
            length = self.headers.get("Content-Length")
            if length is None:
                raise ServeRequestError(411, "Content-Length required")
            try:
                length = int(length)
            except ValueError:
                raise ServeRequestError(400, "bad Content-Length") from None
            if length > MAX_BODY_BYTES:
                raise ServeRequestError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
            raw = self.rfile.read(length)
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeRequestError(400, f"body is not valid JSON: {exc}") from exc

        def _query(self) -> Dict[str, str]:
            parsed = parse_qs(urlparse(self.path).query)
            return {name: values[-1] for name, values in parsed.items()}

        # -- routing ---------------------------------------------------
        def do_GET(self):  # noqa: N802 - stdlib casing
            self._dispatch(self._route_get)

        def do_POST(self):  # noqa: N802 - stdlib casing
            self._dispatch(self._route_post)

        def _dispatch(self, route) -> None:
            service.request_started()
            service.stats.bump("requests")
            try:
                route(urlparse(self.path).path.rstrip("/") or "/")
            except ServeRequestError as exc:
                self._send_error_json(exc.status, str(exc))
            except BrokenPipeError:
                self.close_connection = True
            except Exception as exc:  # noqa: BLE001 - a request never kills the server
                service.stats.bump("errors")
                self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            finally:
                service.request_finished()

        def _route_get(self, path: str) -> None:
            if path == "/healthz":
                self._send_json(200, service.health_payload())
            elif path == "/v1/registry":
                self._send_json(200, service.registry_payload())
            elif path == "/v1/jobs":
                self._send_json(
                    200,
                    {"jobs": service.jobs.summaries(), "counts": service.jobs.counts()},
                )
            elif path.startswith("/v1/jobs/"):
                job = service.jobs.get(path[len("/v1/jobs/"):])
                if job is None:
                    raise ServeRequestError(404, "no such job")
                self._send_json(200, job.to_payload())
            elif path.startswith("/v1/results/"):
                payload = service.read_result(path[len("/v1/results/"):])
                if payload is None:
                    raise ServeRequestError(404, "no result under that key")
                self._send_json(200, payload)
            else:
                raise ServeRequestError(404, f"unknown path {path!r}")

        def _route_post(self, path: str) -> None:
            body = self._read_body()
            query = self._query()
            wait = query.get("wait", "1").lower() not in ("0", "false", "no")
            timeout = None
            if "timeout" in query:
                try:
                    timeout = float(query["timeout"])
                except ValueError:
                    raise ServeRequestError(400, "bad timeout parameter") from None
            if path == "/v1/simulate":
                outcome = service.submit_simulate(body, wait=wait, timeout=timeout)
            elif path == "/v1/campaign":
                outcome = service.submit_campaign(body, wait=wait, timeout=timeout)
            else:
                raise ServeRequestError(404, f"unknown path {path!r}")
            extra = {"X-Repro-Key": outcome["key"], "X-Repro-Served": outcome["served"]}
            if outcome.get("job_id"):
                extra["X-Repro-Job"] = outcome["job_id"]
            if outcome["kind"] == "result":
                self._send_json(200, outcome["payload"], extra)
            else:
                self._send_json(
                    202,
                    {"job": outcome["job_id"], "key": outcome["key"], "status": outcome["served"]},
                    extra,
                )

    return Handler


class ReproServer:
    """A bound HTTP server plus its :class:`SimulationService`.

    Construction binds the socket (``port=0`` picks an ephemeral port —
    read it back from :attr:`address`) and starts nothing; call
    :meth:`start` for a background accept loop (tests, benchmarks) or
    :meth:`serve_forever` to run in the calling thread (the CLI).
    Either way, :meth:`shutdown` performs the graceful drain.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str = ".repro-cache",
        workers: int = 2,
        executor: str = "serial",
        queue_limit: int = 256,
        memo_size: int = 1024,
        quiet: bool = True,
    ):
        self.service = SimulationService(
            cache_dir=cache_dir,
            workers=workers,
            executor=executor,
            queue_limit=queue_limit,
            memo_size=memo_size,
        )
        self.httpd = ThreadingHTTPServer((host, port), _make_handler(self.service, quiet))
        # Handler threads must not pin the process: drain resolves every
        # flight before exit, and idle keep-alive connections would
        # otherwise block a blocking join forever.
        self.httpd.daemon_threads = True
        self.httpd.block_on_close = False
        self.address: Tuple[str, int] = self.httpd.server_address[:2]
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.address[0]}:{self.address[1]}"

    def start(self) -> "ReproServer":
        self.service.start()
        self._accept_thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        self.service.start()
        self.httpd.serve_forever()

    def shutdown(self, grace: float = 10.0) -> None:
        """Graceful drain: stop accepting, finish all work, release."""
        self.service.draining.set()
        self.httpd.shutdown()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=grace)
        self.service.drain(grace=grace)
        self.httpd.server_close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def run_server(
    host: str = "127.0.0.1",
    port: int = 7680,
    cache_dir: str = ".repro-cache",
    workers: int = 2,
    executor: str = "serial",
    queue_limit: int = 256,
    verbose: bool = False,
    stream: Optional[TextIO] = None,
) -> int:
    """``python -m repro serve`` entry point.

    Runs until ``SIGTERM``/``SIGINT``, then drains gracefully (stop
    accepting → finish or persist in-flight points → exit 0).
    """
    stream = sys.stderr if stream is None else stream
    server = ReproServer(
        host=host,
        port=port,
        cache_dir=cache_dir,
        workers=workers,
        executor=executor,
        queue_limit=queue_limit,
        quiet=not verbose,
    )
    bound_host, bound_port = server.address
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(workers={workers}, executor={executor}, cache={cache_dir})",
        file=stream,
        flush=True,
    )

    drain_started = threading.Event()

    def _begin_drain(signum, frame):  # noqa: ARG001 - signal signature
        if drain_started.is_set():
            return
        drain_started.set()
        server.service.draining.set()
        # shutdown() blocks until the accept loop exits, so it must run
        # off the main thread (which is inside serve_forever right now).
        threading.Thread(target=server.httpd.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _begin_drain)
    try:
        server.serve_forever()  # returns once _begin_drain fires
        server.service.drain()
        server.httpd.server_close()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("repro serve: drained cleanly; exiting", file=stream, flush=True)
    return 0

"""Single-flight coalescing for identical in-flight requests.

The serve layer keys every piece of work by its content address
(:func:`repro.api.cache.spec_key` of the spec payload), which makes
"the same request" a well-defined notion: two clients POSTing equal
specs name the same key, so only the first should reach an engine.  A
:class:`SingleFlight` map holds one :class:`Flight` per in-flight key;
the first caller to :meth:`~SingleFlight.join` a key becomes the
**leader** (it owns scheduling the computation and must eventually
:meth:`~SingleFlight.resolve`), every later caller is a **follower**
that just waits on the flight's event and reads the same payload.

A flight resolves exactly once — with a payload or an error — and is
removed from the map at that instant, so a key can be flown again
later (e.g. after a failed attempt; a *successful* flight lands in the
result cache first, which is checked before the flight map, so re-runs
only happen for failures or evicted entries).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["Flight", "SingleFlight"]


class Flight:
    """One in-flight computation, shared by every request for its key."""

    __slots__ = ("key", "job_id", "event", "payload", "error", "followers")

    def __init__(self, key: str, job_id: Optional[str] = None):
        self.key = key
        self.job_id = job_id
        self.event = threading.Event()
        self.payload: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.followers = 0

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved; ``False`` if *timeout* elapsed first."""
        return self.event.wait(timeout)


class SingleFlight:
    """Map of key → :class:`Flight`, with leader election on join."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: Dict[str, Flight] = {}  # guarded-by: _lock

    def join(
        self, key: str, on_lead: Optional[Callable[[Flight], None]] = None
    ) -> Tuple[Flight, bool]:
        """The flight for *key*, creating it if absent.

        Returns ``(flight, leader)``.  When this call created the
        flight, *on_lead* (if given) runs under the map lock before any
        other caller can observe the flight — the serve layer uses it
        to create and enqueue the backing job atomically, so a follower
        never sees a flight without a ``job_id``.  If *on_lead* raises,
        the flight is removed again and the exception propagates (the
        key is not poisoned).
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.followers += 1
                return flight, False
            flight = Flight(key)
            self._flights[key] = flight
            if on_lead is not None:
                try:
                    on_lead(flight)
                except BaseException:
                    del self._flights[key]
                    raise
            return flight, True

    def resolve(
        self,
        key: str,
        payload: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> Optional[Flight]:
        """Publish the outcome for *key* and wake every waiter.

        Returns the resolved flight, or ``None`` if the key was not in
        flight (already resolved — resolution is idempotent).
        """
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is None:
            return None
        flight.payload = payload
        flight.error = error
        flight.event.set()
        return flight

    def pending(self) -> int:
        """Number of keys currently in flight."""
        with self._lock:
            return len(self._flights)

"""The serve layer's in-memory job table.

Every cold request admitted by the server becomes one :class:`Job`:
a unit of queued work with a lifecycle (``queued`` → ``running`` →
``done`` | ``error``), point-level progress, and the content key its
result will be cached under.  ``GET /v1/jobs/<id>`` renders
:meth:`Job.to_payload`; campaign jobs stream progress point by point
as results land in the cache (wired through the PR-7 ``progress_hook``
path — see :mod:`repro.api.serve.server`), so a client polling the job
watches ``completed`` climb toward ``total`` while the campaign runs.

The table is bounded only by process lifetime: jobs are tiny (no
payloads are retained after completion — results live in the
:class:`~repro.api.cache.ResultCache`), and keeping finished jobs
queryable is the point of a job endpoint.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["Job", "JobTable"]

#: Legal job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "error")


class Job:
    """One admitted unit of work (a simulate point or a whole campaign)."""

    def __init__(self, job_id: str, kind: str, key: str, total: int):
        self.id = job_id
        self.kind = kind  # "simulate" | "campaign"
        self.key = key  # content address of the spec / campaign payload
        self.total = int(total)  # points this job will produce
        self.status = "queued"  # guarded-by: _lock
        self.error: Optional[str] = None  # guarded-by: _lock
        # wall-clock display field in the job payload, never compared
        # against a deadline
        self.created = time.time()  # repro: lint-ignore[REPRO-C001] display timestamp
        self.started: Optional[float] = None  # guarded-by: _lock
        self.finished: Optional[float] = None  # guarded-by: _lock
        self.engine_runs = 0  # guarded-by: _lock
        self.cache_hits = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        self._point_keys: set = set()  # guarded-by: _lock

    # -- lifecycle -----------------------------------------------------
    def mark_running(self) -> None:
        with self._lock:
            self.status = "running"
            self.started = time.time()  # repro: lint-ignore[REPRO-C001] display timestamp

    def mark_done(self, engine_runs: int = 0, cache_hits: int = 0) -> None:
        with self._lock:
            self.status = "done"
            self.finished = time.time()  # repro: lint-ignore[REPRO-C001] display timestamp
            self.engine_runs = int(engine_runs)
            self.cache_hits = int(cache_hits)

    def mark_error(self, message: str) -> None:
        with self._lock:
            self.status = "error"
            self.error = str(message)
            self.finished = time.time()  # repro: lint-ignore[REPRO-C001] display timestamp

    # -- progress ------------------------------------------------------
    def mark_point(self, key: str) -> None:
        """Record one landed point (idempotent per key).

        Campaign points can be persisted twice for the same key — once
        by the executor's ``progress_hook`` as the point lands and once
        by ``run_campaign``'s in-order consumer — so progress counts
        unique keys, never raw put calls.
        """
        with self._lock:
            self._point_keys.add(key)

    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._point_keys)

    # -- rendering -----------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready form for ``GET /v1/jobs/<id>``."""
        with self._lock:
            payload: Dict[str, Any] = {
                "id": self.id,
                "kind": self.kind,
                "key": self.key,
                "status": self.status,
                "progress": {"completed": len(self._point_keys), "total": self.total},
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
            }
            if self.status == "error":
                payload["error"] = self.error
            if self.status == "done":
                payload["engine_runs"] = self.engine_runs
                payload["cache_hits"] = self.cache_hits
        return payload


class JobTable:
    """Thread-safe id → :class:`Job` map with monotonically issued ids."""

    def __init__(self):
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}  # guarded-by: _lock
        self._counter = 0  # guarded-by: _lock

    def create(self, kind: str, key: str, total: int) -> Job:
        with self._lock:
            self._counter += 1
            job = Job(f"job-{self._counter:06d}", kind, key, total)
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def summaries(self) -> List[Dict[str, Any]]:
        """Payloads of every job, newest first (``GET /v1/jobs``)."""
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.to_payload() for job in reversed(jobs)]

    def counts(self) -> Dict[str, int]:
        """Jobs per state, for ``/healthz``."""
        with self._lock:
            jobs = list(self._jobs.values())
        out = {state: 0 for state in JOB_STATES}
        for job in jobs:
            out[job.status] = out.get(job.status, 0) + 1
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

"""repro.api.serve — the persistent simulation-as-a-service layer.

The first part of the repo that stays up between experiments: a
stdlib-only HTTP server (``python -m repro serve``) accepting
``SimulationSpec``/``CampaignSpec`` JSON, answering warm-cache hits in
microseconds, coalescing identical in-flight requests onto one
computation, and queueing cold runs onto a bounded worker pool behind
the ``map_payloads`` executor contract.

Modules
-------
``server``
    :class:`SimulationService` (the HTTP-independent core),
    :class:`ReproServer` (bound socket + accept loop), and
    :func:`run_server` (the CLI entry point with SIGTERM drain).
``flight``
    :class:`SingleFlight` — request coalescing keyed by content hash.
``jobs``
    :class:`JobTable` — queued → running → done/error lifecycle with
    point-level campaign progress.
``client``
    :class:`ServeClient` — a stdlib keep-alive client for tests,
    benchmarks and scripts.
"""

from .client import ServeClient, ServeError
from .flight import Flight, SingleFlight
from .jobs import Job, JobTable
from .server import (
    DEFAULT_WAIT_TIMEOUT,
    ReproServer,
    ServeRequestError,
    SimulationService,
    run_server,
)

__all__ = [
    "ReproServer",
    "SimulationService",
    "ServeRequestError",
    "ServeClient",
    "ServeError",
    "SingleFlight",
    "Flight",
    "Job",
    "JobTable",
    "run_server",
    "DEFAULT_WAIT_TIMEOUT",
]

"""Content-addressed result cache for the campaign layer.

A :class:`ResultCache` never runs anything: it maps the *content* of a
:class:`~repro.api.spec.SimulationSpec` to a persisted
:class:`~repro.api.results.SimulationResult` payload, so a campaign
that has already computed a grid point skips it on resume and a warm
replay of a whole campaign performs zero engine runs.

The key (:func:`spec_key`) is the SHA-256 hex digest of the canonical
JSON form of ``spec.to_dict()`` — ``json.dumps(payload, sort_keys=True,
separators=(",", ":"))`` — so any two specs with equal content share a
key regardless of construction order, and any change to any field
(including the seed) produces a different key.  Entries live at
``<directory>/<key[:2]>/<key>.json``; the two-character fan-out keeps
directory listings manageable for large campaigns.

Specs with ``seed=None`` are not reproducible (every run draws fresh OS
entropy) and are refused, as are traced specs (``record_trace=True`` —
the JSON payload drops traces by design, so serving one from the cache
would silently lose data).  :func:`repro.api.campaign.run_campaign`
enforces both before it ever consults the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..core.exceptions import ConfigurationError, ExperimentError
from .results import SimulationResult
from .spec import SimulationSpec

__all__ = ["spec_key", "ResultCache"]

#: Payload format version; bump when the entry layout changes so stale
#: entries read as misses instead of mis-parsing.
CACHE_FORMAT = 1


def spec_key(spec: Union[SimulationSpec, Dict[str, Any]]) -> str:
    """Canonical content hash of a spec (SHA-256 hex digest).

    Accepts either a :class:`SimulationSpec` or its ``to_dict`` form;
    both hash identically, so keys can be computed without constructing
    spec objects (e.g. by out-of-process workers).
    """
    payload = spec.to_dict() if isinstance(spec, SimulationSpec) else dict(spec)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _cacheable(spec: SimulationSpec) -> None:
    """Raise unless *spec* is deterministic and loss-free under caching."""
    if spec.seed is None:
        raise ConfigurationError(
            "cannot cache a spec with seed=None: the result is not a function of the spec"
        )
    if spec.record_trace:
        raise ConfigurationError(
            "cannot cache a traced spec: result payloads drop traces by design"
        )


class ResultCache:
    """Directory-backed, content-addressed store of simulation results.

    Writes are atomic (temp file + ``os.replace``), so concurrent
    campaign processes sharing one cache directory can race on the same
    key and the loser simply overwrites the winner with identical bytes.

    ``memo_size > 0`` adds an in-process LRU memo over hot keys: a
    repeated warm hit skips re-reading and re-parsing the JSON file
    entirely (the ``repro serve`` hot path).  Memoization is sound
    because the store is content-addressed — a key's value never
    changes, so a memo entry can only ever disagree with the file by
    outliving a deleted one, which is indistinguishable from the read
    having happened earlier.  Only entries that already passed the
    spec-mismatch check (or arrived through :meth:`put`, which verifies
    the payload against the spec) enter the memo, so corruption
    detection on first contact with a key is unchanged.  Memoized
    payloads are shared between callers: treat them as read-only.
    """

    def __init__(self, directory: Union[str, os.PathLike] = ".repro-cache", memo_size: int = 0):
        self.directory = Path(directory)
        if memo_size < 0:
            raise ConfigurationError(f"memo_size must be >= 0, got {memo_size}")
        self.memo_size = int(memo_size)
        self._memo: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()  # guarded-by: _memo_lock
        self._memo_lock = threading.Lock()

    # -- in-process memo ----------------------------------------------
    def _memo_get(self, key: str) -> Optional[Dict[str, Any]]:
        if not self.memo_size:
            return None
        with self._memo_lock:
            payload = self._memo.get(key)
            if payload is not None:
                self._memo.move_to_end(key)
            return payload

    def _memo_put(self, key: str, payload: Dict[str, Any]) -> None:
        if not self.memo_size:
            return
        with self._memo_lock:
            self._memo[key] = payload
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)

    @property
    def memo_len(self) -> int:
        """Number of keys currently memoized (observability/tests)."""
        with self._memo_lock:
            return len(self._memo)

    # -- key/path layout ----------------------------------------------
    def path_for(self, key: str) -> Path:
        """``<directory>/<key[:2]>/<key>.json``."""
        return self.directory / key[:2] / f"{key}.json"

    # -- lookup --------------------------------------------------------
    def get_payload(self, spec: SimulationSpec) -> Optional[Dict[str, Any]]:
        """The cached ``SimulationResult.to_dict()`` payload for *spec*.

        ``None`` on a miss.  This is the zero-parse hot path the serve
        layer answers warm hits from: a memo hit returns the already
        validated payload dict without touching the filesystem.  The
        returned dict is shared — treat it as read-only.

        An unreadable or format-mismatched entry reads as a miss (it
        will be overwritten by the next :meth:`put`); an entry whose
        stored spec differs from *spec* raises — that is corruption or
        a hash collision, never something to silently serve.
        """
        _cacheable(spec)
        key = spec_key(spec)
        memoized = self._memo_get(key)
        if memoized is not None:
            return memoized
        payload = self._read(self.path_for(key))
        if payload is None:
            return None
        if payload["result"]["spec"] != spec.to_dict():
            raise ExperimentError(
                f"cache entry {key} holds a different spec; "
                f"the cache directory {self.directory} is corrupt"
            )
        self._memo_put(key, payload["result"])
        return payload["result"]

    def get(self, spec: SimulationSpec) -> Optional[SimulationResult]:
        """The cached result for *spec*, or ``None`` on a miss.

        Semantics of :meth:`get_payload`, parsed into a
        :class:`SimulationResult`.
        """
        payload = self.get_payload(spec)
        if payload is None:
            return None
        return SimulationResult.from_dict(payload)

    def read_key(self, key: str) -> Optional[Dict[str, Any]]:
        """The result payload stored under a bare content *key*.

        For callers that hold only the key (``GET /v1/results/<key>``);
        no spec is available to cross-check, but the entry's recorded
        key must match its filename.  ``None`` on a miss or unreadable
        entry.  The returned dict is shared — treat it as read-only.
        """
        memoized = self._memo_get(key)
        if memoized is not None:
            return memoized
        payload = self._read(self.path_for(key))
        if payload is None or payload.get("key") != key:
            return None
        self._memo_put(key, payload["result"])
        return payload["result"]

    def put(self, spec: SimulationSpec, result: Union[SimulationResult, Dict[str, Any]]) -> Path:
        """Persist *result* (object or ``to_dict`` payload) under *spec*'s key."""
        _cacheable(spec)
        result_payload = result.to_dict() if isinstance(result, SimulationResult) else result
        if result_payload["spec"] != spec.to_dict():
            raise ExperimentError("result payload was produced by a different spec")
        key = spec_key(spec)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": CACHE_FORMAT, "key": key, "result": result_payload}
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._memo_put(key, result_payload)
        return path

    def __contains__(self, spec: SimulationSpec) -> bool:
        _cacheable(spec)
        key = spec_key(spec)
        if self._memo_get(key) is not None:
            return True
        return self._read(self.path_for(key)) is not None

    # -- maintenance ---------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Keys of every readable entry currently on disk."""
        if not self.directory.exists():
            return
        for path in sorted(self.directory.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def _read(self, path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
            return None
        result = payload.get("result")
        if not isinstance(result, dict) or "spec" not in result:
            return None
        return payload

"""Content-addressed result cache for the campaign layer.

A :class:`ResultCache` never runs anything: it maps the *content* of a
:class:`~repro.api.spec.SimulationSpec` to a persisted
:class:`~repro.api.results.SimulationResult` payload, so a campaign
that has already computed a grid point skips it on resume and a warm
replay of a whole campaign performs zero engine runs.

The key (:func:`spec_key`) is the SHA-256 hex digest of the canonical
JSON form of ``spec.to_dict()`` — ``json.dumps(payload, sort_keys=True,
separators=(",", ":"))`` — so any two specs with equal content share a
key regardless of construction order, and any change to any field
(including the seed) produces a different key.  Entries live at
``<directory>/<key[:2]>/<key>.json``; the two-character fan-out keeps
directory listings manageable for large campaigns.

Specs with ``seed=None`` are not reproducible (every run draws fresh OS
entropy) and are refused, as are traced specs (``record_trace=True`` —
the JSON payload drops traces by design, so serving one from the cache
would silently lose data).  :func:`repro.api.campaign.run_campaign`
enforces both before it ever consults the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..core.exceptions import ConfigurationError, ExperimentError
from .results import SimulationResult
from .spec import SimulationSpec

__all__ = ["spec_key", "ResultCache"]

#: Payload format version; bump when the entry layout changes so stale
#: entries read as misses instead of mis-parsing.
CACHE_FORMAT = 1


def spec_key(spec: Union[SimulationSpec, Dict[str, Any]]) -> str:
    """Canonical content hash of a spec (SHA-256 hex digest).

    Accepts either a :class:`SimulationSpec` or its ``to_dict`` form;
    both hash identically, so keys can be computed without constructing
    spec objects (e.g. by out-of-process workers).
    """
    payload = spec.to_dict() if isinstance(spec, SimulationSpec) else dict(spec)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _cacheable(spec: SimulationSpec) -> None:
    """Raise unless *spec* is deterministic and loss-free under caching."""
    if spec.seed is None:
        raise ConfigurationError(
            "cannot cache a spec with seed=None: the result is not a function of the spec"
        )
    if spec.record_trace:
        raise ConfigurationError(
            "cannot cache a traced spec: result payloads drop traces by design"
        )


class ResultCache:
    """Directory-backed, content-addressed store of simulation results.

    Writes are atomic (temp file + ``os.replace``), so concurrent
    campaign processes sharing one cache directory can race on the same
    key and the loser simply overwrites the winner with identical bytes.
    """

    def __init__(self, directory: Union[str, os.PathLike] = ".repro-cache"):
        self.directory = Path(directory)

    # -- key/path layout ----------------------------------------------
    def path_for(self, key: str) -> Path:
        """``<directory>/<key[:2]>/<key>.json``."""
        return self.directory / key[:2] / f"{key}.json"

    # -- lookup --------------------------------------------------------
    def get(self, spec: SimulationSpec) -> Optional[SimulationResult]:
        """The cached result for *spec*, or ``None`` on a miss.

        An unreadable or format-mismatched entry reads as a miss (it
        will be overwritten by the next :meth:`put`); an entry whose
        stored spec differs from *spec* raises — that is corruption or
        a hash collision, never something to silently serve.
        """
        _cacheable(spec)
        payload = self._read(self.path_for(spec_key(spec)))
        if payload is None:
            return None
        if payload["result"]["spec"] != spec.to_dict():
            raise ExperimentError(
                f"cache entry {spec_key(spec)} holds a different spec; "
                f"the cache directory {self.directory} is corrupt"
            )
        return SimulationResult.from_dict(payload["result"])

    def put(self, spec: SimulationSpec, result: Union[SimulationResult, Dict[str, Any]]) -> Path:
        """Persist *result* (object or ``to_dict`` payload) under *spec*'s key."""
        _cacheable(spec)
        result_payload = result.to_dict() if isinstance(result, SimulationResult) else result
        if result_payload["spec"] != spec.to_dict():
            raise ExperimentError("result payload was produced by a different spec")
        key = spec_key(spec)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": CACHE_FORMAT, "key": key, "result": result_payload}
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, spec: SimulationSpec) -> bool:
        _cacheable(spec)
        return self._read(self.path_for(spec_key(spec))) is not None

    # -- maintenance ---------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Keys of every readable entry currently on disk."""
        if not self.directory.exists():
            return
        for path in sorted(self.directory.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def _read(self, path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
            return None
        result = payload.get("result")
        if not isinstance(result, dict) or "spec" not in result:
            return None
        return payload

"""The declarative simulation spec.

A :class:`SimulationSpec` is the serializable answer to "run protocol P
on topology G under execution model M, R times, and summarize
convergence" — the one shape every experiment in the paper instantiates.
It is plain data: names into the registries of
:mod:`repro.api.registry` plus parameter dicts, with a loss-free
``to_dict`` / ``from_dict`` round trip so specs can be stored next to
results, shipped over a wire, or built from CLI flags.  Validation
against the registries happens when the spec is *run*
(:func:`repro.api.simulate`), not when it is built, so specs can be
constructed and serialized without importing any simulation code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.exceptions import ConfigurationError

__all__ = ["SimulationSpec"]


def _normalize_fault(entry: Mapping[str, Any]) -> Dict[str, Any]:
    """Canonical ``{"name": str, "params": dict}`` form of a fault entry."""
    if isinstance(entry, str):
        entry = {"name": entry}
    try:
        entry = dict(entry)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"fault entries must be mappings with a 'name' key, got {entry!r}"
        ) from None
    unknown = sorted(set(entry) - {"name", "params"})
    if unknown:
        raise ConfigurationError(f"unknown fault entry key(s) {unknown}; expected 'name'/'params'")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"fault entries need a non-empty string 'name', got {name!r}")
    return {"name": name, "params": dict(entry.get("params") or {})}


@dataclass(frozen=True)
class SimulationSpec:
    """Everything needed to reproduce one replicated simulation.

    Attributes
    ----------
    protocol / protocol_params:
        Registry name of the protocol (e.g. ``"two-choices"``) and
        constructor overrides (e.g. ``{"bp_rounds": 12}``).
    n:
        Number of nodes; the topology and initial-condition factories
        both receive it.
    topology / topology_params:
        Registry name of the topology (default the paper's ``K_n``) and
        factory overrides (e.g. ``{"degree": 8}`` for ``random-regular``).
    model:
        Execution model: ``"sequential"`` (tick-based asynchronous, the
        default), ``"continuous"`` (Poisson clocks) or ``"synchronous"``
        (round-based).
    delay / delay_params:
        Optional response-delay model name for the continuous model
        (``None`` means instantaneous responses, the paper's base model).
    initial / initial_params:
        Registry name of the initial-condition generator (default the
        60/40 benchmark split) and its parameters (e.g. ``{"k": 8,
        "z": 1.0}`` for ``theorem-1-1-gap``).
    stop / stop_params:
        Stop-criterion name (default full consensus).
    faults:
        Optional chain of fault-wrapper applications, each a
        ``{"name": ..., "params": {...}}`` mapping into the
        :data:`~repro.api.registry.FAULTS` registry (e.g. ``({"name":
        "stubborn", "params": {"fraction": 0.05}},)``).  Wrappers are
        applied first-entry-innermost around the resolved protocol.
        Fault wrappers wrap the tick interface, so faults require an
        asynchronous model (``sequential`` or ``continuous``).
    reps:
        Independent replications.  ``reps == 1`` runs the engine
        directly with *seed* (value-for-value what hand-wiring
        ``fastest_engine(...).run(..., seed=seed)`` produces);
        ``reps > 1`` routes through
        :func:`repro.engine.ensemble.run_replicated` under the PR-2
        seeding contract.
    seed:
        Master seed (``None`` for fresh OS entropy — use an int for
        reproducible specs).
    max_steps:
        Optional step budget in the model's native unit: synchronous
        rounds or sequential ticks.  Rejected for the continuous model
        (its budget is wall-clock time).
    max_time:
        Optional continuous-time budget; continuous model only.
    record_trace / trace_every:
        Record a counts trace every *trace_every* native time units
        (rounds for the synchronous model, parallel time otherwise).
        Only valid with ``reps == 1`` — the ensemble engines do not
        trace.
    """

    protocol: str
    n: int
    protocol_params: Dict[str, Any] = field(default_factory=dict)
    topology: str = "complete"
    topology_params: Dict[str, Any] = field(default_factory=dict)
    model: str = "sequential"
    delay: Optional[str] = None
    delay_params: Dict[str, Any] = field(default_factory=dict)
    initial: str = "benchmark-split"
    initial_params: Dict[str, Any] = field(default_factory=dict)
    stop: str = "consensus"
    stop_params: Dict[str, Any] = field(default_factory=dict)
    faults: Tuple[Dict[str, Any], ...] = ()
    reps: int = 1
    seed: Optional[int] = None
    max_steps: Optional[int] = None
    max_time: Optional[float] = None
    record_trace: bool = False
    trace_every: Optional[float] = None

    def __post_init__(self):
        # Normalise the param mappings to plain dicts so equality,
        # serialization and hashing-by-content behave predictably.
        for name in ("protocol_params", "topology_params", "delay_params", "initial_params", "stop_params"):
            object.__setattr__(self, name, dict(getattr(self, name) or {}))
        object.__setattr__(
            self, "faults", tuple(_normalize_fault(entry) for entry in (self.faults or ()))
        )
        if self.n < 2:
            raise ConfigurationError(f"n must be at least 2, got {self.n}")
        if self.reps < 1:
            raise ConfigurationError(f"reps must be positive, got {self.reps}")
        if self.model not in ("sequential", "continuous", "synchronous"):
            raise ConfigurationError(
                f"unknown model {self.model!r}; expected 'sequential', 'continuous' or 'synchronous'"
            )
        if self.max_time is not None and self.model != "continuous":
            raise ConfigurationError("max_time only applies to the continuous model")
        if self.max_steps is not None and self.model == "continuous":
            raise ConfigurationError("the continuous model budgets time, not steps; use max_time")
        if self.record_trace and self.reps != 1:
            raise ConfigurationError("record_trace requires reps == 1 (ensemble engines do not trace)")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an int or None, got {type(self.seed).__name__}")
        if self.faults and self.model == "synchronous":
            raise ConfigurationError(
                "faults wrap the sequential tick interface; use the "
                "'sequential' or 'continuous' model"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Loss-free JSON-ready form; inverse of :meth:`from_dict`.

        The ``faults`` key is emitted only when the chain is non-empty,
        so the serialized form — and therefore every
        :func:`~repro.api.cache.spec_key` content hash of a fault-free
        spec — is byte-identical to what it was before the field
        existed (cached campaign results stay valid).
        """
        payload = {
            "protocol": self.protocol,
            "protocol_params": dict(self.protocol_params),
            "n": self.n,
            "topology": self.topology,
            "topology_params": dict(self.topology_params),
            "model": self.model,
            "delay": self.delay,
            "delay_params": dict(self.delay_params),
            "initial": self.initial,
            "initial_params": dict(self.initial_params),
            "stop": self.stop,
            "stop_params": dict(self.stop_params),
            "reps": self.reps,
            "seed": self.seed,
            "max_steps": self.max_steps,
            "max_time": self.max_time,
            "record_trace": self.record_trace,
            "trace_every": self.trace_every,
        }
        if self.faults:
            payload["faults"] = [
                {"name": entry["name"], "params": dict(entry["params"])} for entry in self.faults
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationSpec":
        """Rebuild a spec from :meth:`to_dict` output (identity round trip)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown SimulationSpec field(s): {unknown}")
        return cls(**dict(payload))

    def replace(self, **changes) -> "SimulationSpec":
        """A copy with *changes* applied (convenience for sweeps)."""
        import dataclasses

        return dataclasses.replace(self, **changes)

"""The normalized output of :func:`repro.api.simulate`.

Whatever the dispatcher routed under the hood — one ``engine.run`` call,
an ensemble-vectorised ``run_ensemble`` pass, or a looped replication —
the caller sees one :class:`SimulationResult`: the spec that produced
it, the per-replication :class:`~repro.core.results.RunResult` list in
replication order, and the convergence-time statistics every experiment
summarizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from ..core.results import RunResult
from .spec import SimulationSpec

__all__ = ["SimulationResult"]


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def _std(values: List[float]) -> float:
    if len(values) < 2:
        return float("nan")
    mean = _mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))


@dataclass
class SimulationResult:
    """Aggregate of one replicated simulation.

    Attributes
    ----------
    spec:
        The spec that produced this result (round-trippable).
    runs:
        One :class:`RunResult` per replication, in replication order —
        identical values whether the ensemble or the looped path ran.
    engine:
        Class name of the engine the dispatcher selected (e.g.
        ``"EnsembleCountsSequentialEngine"``).
    elapsed_seconds:
        Wall-clock time of the whole replicated run.
    """

    spec: SimulationSpec
    runs: List[RunResult] = field(default_factory=list)
    engine: str = ""
    elapsed_seconds: float = 0.0

    # -- convergence-time statistics ----------------------------------
    @property
    def reps(self) -> int:
        return len(self.runs)

    @property
    def n_converged(self) -> int:
        return sum(1 for r in self.runs if r.converged)

    @property
    def converged_rate(self) -> float:
        return self.n_converged / self.reps if self.runs else float("nan")

    @property
    def plurality_rate(self) -> float:
        """Fraction of replications where the initial plurality won."""
        if not self.runs:
            return float("nan")
        return sum(1 for r in self.runs if r.plurality_preserved) / self.reps

    def convergence_times(self) -> List[float]:
        """Parallel times of the converged replications."""
        return [r.parallel_time for r in self.runs if r.converged]

    @property
    def mean_parallel_time(self) -> float:
        """Mean parallel time over converged replications (nan if none)."""
        return _mean(self.convergence_times())

    @property
    def std_parallel_time(self) -> float:
        return _std(self.convergence_times())

    @property
    def mean_rounds(self) -> float:
        """Mean native step count over converged replications."""
        return _mean([float(r.rounds) for r in self.runs if r.converged])

    def summary(self) -> Dict[str, Any]:
        """The statistics block of :meth:`to_dict`, as plain scalars."""
        times = self.convergence_times()
        return {
            "reps": self.reps,
            "converged": self.n_converged,
            "converged_rate": self.converged_rate,
            "plurality_rate": self.plurality_rate,
            "mean_rounds": self.mean_rounds,
            "mean_parallel_time": self.mean_parallel_time,
            "std_parallel_time": self.std_parallel_time,
            "min_parallel_time": min(times) if times else float("nan"),
            "max_parallel_time": max(times) if times else float("nan"),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload: spec + per-rep results + statistics."""
        return {
            "spec": self.spec.to_dict(),
            "engine": self.engine,
            "elapsed_seconds": self.elapsed_seconds,
            "summary": self.summary(),
            "runs": [r.to_dict() for r in self.runs],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        The summary block is not stored back — every statistic is a
        property recomputed from the rebuilt runs, so a payload edited
        by hand cannot disagree with itself.  This is the deserialiser
        the campaign :class:`~repro.api.cache.ResultCache` and the
        process executor round-trip every result through.
        """
        return cls(
            spec=SimulationSpec.from_dict(payload["spec"]),
            runs=[RunResult.from_dict(r) for r in payload["runs"]],
            engine=payload.get("engine", ""),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )

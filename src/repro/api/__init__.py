"""repro.api — the declarative front door.

Every paper experiment is an instance of one shape: *run protocol P on
topology G under execution model M, R times, and summarize
convergence*.  This package makes that shape a value:

>>> from repro.api import SimulationSpec, simulate
>>> spec = SimulationSpec(protocol="two-choices", n=10_000, reps=4, seed=7)
>>> result = simulate(spec)
>>> result.converged_rate
1.0

`simulate` routes through the same
:func:`~repro.engine.dispatch.fastest_engine` /
:func:`~repro.engine.ensemble.run_replicated` machinery the
experiments always used — those remain the supported low-level layer,
and the exactness contracts of the counts fast paths (PR 1) and the
ensemble engines (PR 2) carry over bit-for-bit (see
``tests/test_api.py``).

Modules
-------
``spec``
    :class:`SimulationSpec` — serializable, ``to_dict``/``from_dict``
    round-trippable plain data.
``registry``
    String-keyed factories with parameter metadata; populated by the
    protocols / graphs / workloads / engine modules at import time.
``runner``
    :func:`simulate` and :func:`resolve`.
``results``
    :class:`SimulationResult` — per-rep ``RunResult`` list plus
    convergence-time statistics.
``campaign``
    The grid layer: :class:`SweepSpec` axes expand over a base spec
    into a :class:`CampaignSpec`; :func:`run_campaign` executes the
    points (serial or process-parallel) behind a content-addressed
    :class:`ResultCache` and aggregates a tidy table.
``executors`` / ``cache``
    The pluggable execution backends and the persistent result cache
    behind ``run_campaign``.
``distributed``
    The multi-host backend: a socket coordinator
    (:class:`DistributedExecutor`) feeding ``repro worker`` processes
    with work-stealing, leases, and crash-tolerant resume via the
    cache.
"""

from .cache import ResultCache, spec_key
from .campaign import (
    CampaignPoint,
    CampaignResult,
    CampaignSpec,
    SweepSpec,
    point_seed,
    run_campaign,
)
from .distributed import DistributedExecutor, run_worker
from .executors import EXECUTORS, ExecutorPointError, ProcessExecutor, SerialExecutor
from .registry import (
    DELAYS,
    FAULTS,
    INITIALS,
    PROTOCOLS,
    STOPS,
    TOPOLOGIES,
    ParamSpec,
    register_delay,
    register_fault,
    register_initial,
    register_protocol,
    register_stop,
    register_topology,
)
from .results import SimulationResult
from .runner import ResolvedSimulation, resolve, simulate
from .spec import SimulationSpec

__all__ = [
    "SimulationSpec",
    "SimulationResult",
    "ResolvedSimulation",
    "simulate",
    "resolve",
    "SweepSpec",
    "CampaignSpec",
    "CampaignPoint",
    "CampaignResult",
    "run_campaign",
    "point_seed",
    "ResultCache",
    "spec_key",
    "EXECUTORS",
    "SerialExecutor",
    "ProcessExecutor",
    "DistributedExecutor",
    "ExecutorPointError",
    "run_worker",
    "ParamSpec",
    "PROTOCOLS",
    "TOPOLOGIES",
    "INITIALS",
    "DELAYS",
    "STOPS",
    "FAULTS",
    "register_protocol",
    "register_topology",
    "register_initial",
    "register_delay",
    "register_stop",
    "register_fault",
]

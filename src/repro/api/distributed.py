"""Distributed campaign execution: a socket coordinator + pull workers.

The campaign layer already reduced every figure-scale experiment to a
bag of independent, pre-seeded ``SimulationSpec`` payloads behind the
``map_payloads`` executor contract (:mod:`repro.api.executors`) — the
exact shape that scales across hosts.  This module adds the cluster
backend without touching determinism: per-point seeds are pinned by
:meth:`repro.api.campaign.CampaignSpec.points` *before* dispatch, so a
distributed run is value-for-value identical to a serial one whatever
the worker count, work distribution, or completion order.

Topology
--------
One **coordinator** (the :class:`DistributedExecutor`, living inside
``run_campaign``) listens on a TCP socket.  Any number of **workers**
(``python -m repro worker --connect HOST:PORT``) dial in — before the
campaign starts, or late, mid-campaign — and *pull* work one point at a
time (work-stealing: an idle worker always takes the next pending
point, so a slow worker never blocks the queue; it just ends up holding
fewer points).

Wire protocol
-------------
Length-prefixed JSON frames (stdlib only): a 4-byte big-endian unsigned
length followed by a UTF-8 JSON object with a ``"type"`` field.

=========== =========== ====================================================
direction   type        body
=========== =========== ====================================================
worker → c  hello       ``{"worker": id, "pid": pid}`` — register
c → worker  welcome     ``{"heartbeat": s, "lease_timeout": s}``
worker → c  next        request one unit of work
c → worker  task        ``{"task": index, "payload": spec_dict}``
c → worker  wait        ``{"delay": s}`` — nothing pending *right now*
                        (the queue may refill on a requeue; retry)
c → worker  shutdown    campaign finished (or aborted); disconnect
worker → c  result      ``{"task": index, "payload": result_dict}``
worker → c  error       ``{"task": index, "message": str}``
worker → c  heartbeat   liveness while a long point runs
=========== =========== ====================================================

Fault tolerance
---------------
Every dispatched point carries a **lease**: the worker must finish it,
or keep heartbeating, within ``lease_timeout`` seconds.  A worker whose
connection drops has its in-flight points requeued immediately; a
worker that hangs (socket open, no heartbeat) loses its leases to the
expiry monitor.  Duplicate results from a resurrected worker are
ignored (they are value-identical by the seeding contract anyway).  A
point whose worker *reports* an error is retried ``max_retries`` times
(requeued, typically landing on a different worker) before the
campaign aborts with the offending spec's cache key in the message.

Because ``run_campaign`` persists each completed point to the
content-addressed :class:`~repro.api.cache.ResultCache` the moment it
lands (via the executor's ``progress_hook``, out of arrival order), a
coordinator crash loses at most the in-flight points: rerunning the
same campaign against the same cache resumes from the completed set.
Like the cache, the coordinator refuses unseeded and traced payloads —
both would break the "result is a pure function of the spec" contract
that makes all of the above safe.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Sequence, TextIO, Tuple

from ..core.exceptions import ConfigurationError, ExperimentError
from .executors import EXECUTORS, execute_spec_payload

__all__ = [
    "send_frame",
    "recv_frame",
    "parse_address",
    "DistributedExecutor",
    "run_worker",
]

_HEADER = struct.Struct(">I")

#: Defensive bound on a single frame; a result payload for a huge
#: campaign point is a few MB, so this is orders of magnitude of slack.
MAX_FRAME_BYTES = 256 * 1024 * 1024


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------
def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ExperimentError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    chunks = []
    remaining = size
    while remaining:
        piece = sock.recv(remaining)
        if not piece:
            return None
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean or mid-frame disconnect."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ExperimentError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict) or "type" not in message:
        raise ExperimentError("malformed frame: expected a JSON object with a 'type' field")
    return message


def parse_address(
    text: Optional[str], default_host: str = "127.0.0.1", default_port: int = 0
) -> Tuple[str, int]:
    """``"HOST:PORT"`` | ``"PORT"`` | empty → ``(host, port)``."""
    if not text:
        return (default_host, default_port)
    host, sep, port_text = str(text).rpartition(":")
    if not sep:
        host, port_text = "", str(text)
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"bad distributed address {text!r}; expected 'HOST:PORT' or 'PORT'"
        ) from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"port {port} out of range in distributed address {text!r}")
    return (host or default_host, port)


def _refuse_uncacheable_payload(payload: Dict[str, Any]) -> None:
    """Mirror the cache's refusals: dispatch only pure-function specs."""
    if payload.get("seed") is None:
        raise ConfigurationError(
            "distributed executor refuses seed=None specs: the result would depend "
            "on which worker ran it (the campaign layer pins per-point seeds)"
        )
    if payload.get("record_trace"):
        raise ConfigurationError(
            "distributed executor refuses traced specs: traces do not survive the "
            "payload round trip (run_campaign pins traced points in-process)"
        )


# ---------------------------------------------------------------------------
# coordinator state (one instance per map_payloads call)
# ---------------------------------------------------------------------------
class _CampaignState:
    """Work queue + leases + results, shared by the handler threads.

    All mutation happens under one condition variable; waiters (the
    in-order result generator, workers blocked on ``next``) are woken on
    every completion, requeue, registration, or abort.
    """

    def __init__(self, payloads: List[Dict[str, Any]], lease_timeout: float, max_retries: int):
        self.payloads = payloads
        self.lease_timeout = lease_timeout
        self.max_retries = max_retries
        self.cond = threading.Condition()
        self.pending: deque = deque(range(len(payloads)))  # guarded-by: cond
        self.leases: Dict[int, Tuple[str, float]] = {}  # guarded-by: cond
        self.done: Dict[int, Dict[str, Any]] = {}  # guarded-by: cond
        self.attempts: Dict[int, int] = {}  # guarded-by: cond
        self.fatal: Optional[str] = None  # guarded-by: cond
        self.workers: set = set()  # guarded-by: cond
        self.workers_seen = 0  # guarded-by: cond
        self.requeued = 0  # guarded-by: cond
        self.retried = 0  # guarded-by: cond
        self.duplicates = 0  # guarded-by: cond
        # Called (outside the lock) with (index, payload) as each result
        # lands, in completion order — run_campaign persists to the
        # cache here, which is what bounds a coordinator crash to the
        # in-flight points.
        self.on_result = None

    def _finished_locked(self) -> bool:
        return self.fatal is not None or len(self.done) == len(self.payloads)

    # -- worker lifecycle ---------------------------------------------
    def register(self, worker_id: str) -> None:
        with self.cond:
            self.workers.add(worker_id)
            self.workers_seen += 1
            self.cond.notify_all()

    def unregister(self, worker_id: str) -> None:
        """Connection gone: requeue every lease the worker held."""
        with self.cond:
            self.workers.discard(worker_id)
            held = [i for i, (owner, _) in self.leases.items() if owner == worker_id]
            for index in held:
                del self.leases[index]
                if index not in self.done:
                    self.pending.append(index)
                    self.requeued += 1
            if held:
                self.cond.notify_all()

    def touch(self, worker_id: str) -> None:
        """Heartbeat (or any activity): extend the worker's leases."""
        with self.cond:
            self._touch_locked(worker_id)

    def _touch_locked(self, worker_id: str) -> None:
        deadline = time.monotonic() + self.lease_timeout
        for index, (owner, _) in list(self.leases.items()):
            if owner == worker_id:
                self.leases[index] = (owner, deadline)

    # -- work dispatch ------------------------------------------------
    def acquire(self, worker_id: str, timeout: float) -> Tuple[str, Optional[int]]:
        """Next pending index for *worker_id*, waiting up to *timeout*.

        Returns ``("task", index)``, ``("wait", None)`` when nothing is
        pending within the window, or ``("shutdown", None)`` once the
        campaign is finished or aborted.
        """
        deadline = time.monotonic() + timeout
        with self.cond:
            while True:
                if self._finished_locked():
                    return ("shutdown", None)
                while self.pending and self.pending[0] in self.done:
                    self.pending.popleft()  # stale requeue of a completed point
                if self.pending:
                    index = self.pending.popleft()
                    self.leases[index] = (worker_id, time.monotonic() + self.lease_timeout)
                    return ("task", index)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return ("wait", None)
                self.cond.wait(remaining)

    def complete(self, worker_id: str, index: int, payload: Dict[str, Any]) -> None:
        hook = None
        with self.cond:
            if not 0 <= index < len(self.payloads):
                return
            self._touch_locked(worker_id)
            self.leases.pop(index, None)
            if index in self.done:
                self.duplicates += 1  # a resurrected worker's late copy
                return
            self.done[index] = payload
            hook = self.on_result
            self.cond.notify_all()
        if hook is not None:
            try:
                hook(index, payload)
            except Exception:
                # The in-order consumer persists the same payload again
                # and surfaces any real cache failure loudly; the hook
                # is purely the crash-tolerance fast path.
                pass

    def fail(self, worker_id: str, index: int, message: str) -> None:
        from .cache import spec_key

        with self.cond:
            if not 0 <= index < len(self.payloads) or index in self.done:
                return
            self._touch_locked(worker_id)
            self.leases.pop(index, None)
            count = self.attempts.get(index, 0) + 1
            self.attempts[index] = count
            if count <= self.max_retries:
                self.retried += 1
                self.pending.append(index)
            elif self.fatal is None:
                self.fatal = (
                    f"campaign point {index} (cache key {spec_key(self.payloads[index])}) "
                    f"failed on worker {worker_id!r} after {count} attempt(s): {message}"
                )
            self.cond.notify_all()

    def expire_leases(self, now: float) -> None:
        with self.cond:
            expired = [i for i, (_, deadline) in self.leases.items() if deadline < now]
            for index in expired:
                del self.leases[index]
                if index not in self.done:
                    self.pending.append(index)
                    self.requeued += 1
            if expired:
                self.cond.notify_all()

    def abort(self, message: str) -> None:
        with self.cond:
            if self.fatal is None and len(self.done) < len(self.payloads):
                self.fatal = message
            self.cond.notify_all()

    # -- in-order consumption -----------------------------------------
    def wait_for(self, index: int, startup_deadline: Optional[float], address) -> Dict[str, Any]:
        with self.cond:
            while True:
                if self.fatal is not None:
                    raise ExperimentError(self.fatal)
                if index in self.done:
                    return self.done[index]
                if (
                    startup_deadline is not None
                    and self.workers_seen == 0
                    and time.monotonic() >= startup_deadline
                ):
                    self.fatal = (
                        f"no worker connected to {address[0]}:{address[1]} within the "
                        f"startup timeout; start one with "
                        f"'python -m repro worker --connect {address[0]}:{address[1]}'"
                    )
                    self.cond.notify_all()
                    raise ExperimentError(self.fatal)
                self.cond.wait(0.2)

    def stats(self) -> Dict[str, int]:
        with self.cond:
            return {
                "workers_seen": self.workers_seen,
                "completed": len(self.done),
                "requeued": self.requeued,
                "retried": self.retried,
                "duplicates": self.duplicates,
            }


def _serve_connection(state: _CampaignState, conn: socket.socket, poll: float) -> None:
    """Handle one worker connection (its own thread) until it drops."""
    worker_id = None
    try:
        hello = recv_frame(conn)
        if hello is None or hello.get("type") != "hello":
            return
        worker_id = str(hello.get("worker") or f"anon-{id(conn):x}")
        state.register(worker_id)
        send_frame(
            conn,
            {
                "type": "welcome",
                "heartbeat": max(state.lease_timeout / 4.0, 0.05),
                "lease_timeout": state.lease_timeout,
            },
        )
        while True:
            message = recv_frame(conn)
            if message is None:
                return
            kind = message["type"]
            if kind == "heartbeat":
                state.touch(worker_id)
            elif kind == "result":
                state.complete(worker_id, int(message["task"]), message["payload"])
            elif kind == "error":
                state.fail(worker_id, int(message["task"]), str(message.get("message", "")))
            elif kind == "next":
                verdict, index = state.acquire(worker_id, timeout=poll)
                if verdict == "task":
                    send_frame(
                        conn, {"type": "task", "task": index, "payload": state.payloads[index]}
                    )
                elif verdict == "wait":
                    send_frame(conn, {"type": "wait", "delay": min(poll, 0.05)})
                else:
                    send_frame(conn, {"type": "shutdown"})
                    return
            # unknown frame types are ignored (forward compatibility)
    except (OSError, ValueError, KeyError, TypeError, ExperimentError):
        pass  # a misbehaving worker must never take the coordinator down
    finally:
        if worker_id is not None:
            state.unregister(worker_id)
        try:
            conn.close()
        except OSError:
            pass


def _accept_loop(listener: socket.socket, state: _CampaignState, stop: threading.Event, poll: float) -> None:
    while not stop.is_set():
        try:
            conn, _ = listener.accept()
        except socket.timeout:
            continue
        except OSError:
            return  # listener closed under us (executor.close())
        threading.Thread(
            target=_serve_connection, args=(state, conn, poll), daemon=True
        ).start()


def _lease_monitor(state: _CampaignState, stop: threading.Event, interval: float) -> None:
    while not stop.wait(interval):
        state.expire_leases(time.monotonic())


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------
class DistributedExecutor:
    """Coordinator for socket-connected ``repro worker`` processes.

    Binds ``(host, port)`` at construction (``port=0`` picks an
    ephemeral port; read it back from :attr:`address`).  Each
    ``map_payloads`` call runs one coordinator session over the shared
    listener: workers pull points, stream results back, and are told to
    shut down when the batch is complete.  See the module docstring for
    the wire protocol and the fault-tolerance contract.

    Parameters
    ----------
    host / port:
        Bind address for the coordinator socket.
    lease_timeout:
        Seconds a dispatched point may go without a result or heartbeat
        before it is requeued for another worker.
    max_retries:
        Worker-*reported* failures tolerated per point before the
        campaign aborts (the same transient-retry knob as
        :class:`~repro.api.executors.ProcessExecutor`).  Lost-worker
        requeues are not counted — crash tolerance is unconditional.
    poll:
        Upper bound on how long a worker's ``next`` request blocks
        server-side before a ``wait`` response; also bounds how quickly
        idle handlers notice campaign completion.
    startup_timeout:
        If set, abort when work is pending and no worker has *ever*
        connected after this many seconds (guards hangs in scripted
        runs); ``None`` waits indefinitely.
    """

    name = "distributed"

    #: Set by ``run_campaign`` to a ``(position, payload)`` callback that
    #: persists each completed point as it lands (see module docstring).
    progress_hook = None

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        max_retries: int = 1,
        poll: float = 0.25,
        startup_timeout: Optional[float] = None,
    ):
        if lease_timeout <= 0:
            raise ConfigurationError(f"lease_timeout must be > 0, got {lease_timeout}")
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        if poll <= 0:
            raise ConfigurationError(f"poll must be > 0, got {poll}")
        self.lease_timeout = float(lease_timeout)
        self.max_retries = int(max_retries)
        self.poll = float(poll)
        self.startup_timeout = startup_timeout
        self._listener = socket.create_server((host, port), backlog=64)
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._closed = False
        self.last_stats: Dict[str, int] = {}

    @classmethod
    def from_string(cls, arg: Optional[str], workers=None, chunksize=None) -> "DistributedExecutor":
        """Build from the ``"distributed[:HOST:PORT]"`` executor string.

        ``workers`` / ``chunksize`` are accepted for signature parity
        with the other executors and ignored: parallelism is however
        many worker processes connect, and dispatch is always one point
        per pull (work-stealing needs no chunking).
        """
        host, port = parse_address(arg)
        return cls(host=host, port=port)

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    def close(self) -> None:
        """Release the coordinator socket (idempotent)."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def map_payloads(self, payloads: Sequence[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        if self._closed:
            raise ExperimentError("distributed executor is closed")
        payloads = [dict(p) for p in payloads]
        for payload in payloads:
            _refuse_uncacheable_payload(payload)
        return self._stream(payloads)

    def _stream(self, payloads: List[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        if not payloads:
            return
        state = _CampaignState(payloads, self.lease_timeout, self.max_retries)
        state.on_result = self._notify_progress
        stop = threading.Event()
        accepter = threading.Thread(
            target=_accept_loop, args=(self._listener, state, stop, self.poll), daemon=True
        )
        monitor = threading.Thread(
            target=_lease_monitor,
            args=(state, stop, min(0.5, self.lease_timeout / 4.0)),
            daemon=True,
        )
        accepter.start()
        monitor.start()
        startup_deadline = (
            None if self.startup_timeout is None else time.monotonic() + self.startup_timeout
        )
        try:
            for index in range(len(payloads)):
                yield state.wait_for(index, startup_deadline, self.address)
        finally:
            stop.set()
            # Wake blocked handlers so idle workers get their shutdown
            # frame instead of waiting out the poll window.
            state.abort("coordinator shut down")
            accepter.join(timeout=2.0)
            monitor.join(timeout=2.0)
            self.last_stats = state.stats()

    def _notify_progress(self, index: int, payload: Dict[str, Any]) -> None:
        hook = self.progress_hook
        if hook is not None:
            hook(index, payload)


EXECUTORS["distributed"] = DistributedExecutor


# ---------------------------------------------------------------------------
# the worker loop (``python -m repro worker``)
# ---------------------------------------------------------------------------
def _connect_with_retry(
    host: str, port: int, window: float, drain: Optional[threading.Event] = None
) -> Optional[socket.socket]:
    deadline = time.monotonic() + window
    delay = 0.05
    while True:
        if drain is not None and drain.is_set():
            return None
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() >= deadline:
                return None
            time.sleep(delay)
            delay = min(delay * 2.0, 1.0)


def _serve_session(
    sock: socket.socket,
    execute=execute_spec_payload,
    drain: Optional[threading.Event] = None,
) -> Tuple[str, int]:
    """Pull-run-report until shutdown, disconnect, or drain.

    Returns ``(outcome, points_served)`` with outcome ``"shutdown"``
    (clean campaign end), ``"lost"`` (connection dropped — the caller
    may reconnect; a restarted coordinator resumes from its cache), or
    ``"drained"`` (*drain* was set — e.g. SIGTERM: the in-flight point
    was finished and its result sent before disconnecting, so the
    coordinator never has to wait out the lease and requeue it).
    """
    sock.settimeout(None)
    write_lock = threading.Lock()
    worker_id = f"{socket.gethostname()}-{os.getpid()}"
    send_frame(sock, {"type": "hello", "worker": worker_id, "pid": os.getpid()})
    welcome = recv_frame(sock)
    if welcome is None or welcome.get("type") != "welcome":
        return ("lost", 0)
    interval = float(welcome.get("heartbeat", 1.0))
    stop = threading.Event()

    def beat():
        # Keeps the lease alive while a long point runs in the main
        # thread; writes share the socket lock with result frames.
        while not stop.wait(interval):
            try:
                with write_lock:
                    send_frame(sock, {"type": "heartbeat"})
            except OSError:
                return

    threading.Thread(target=beat, daemon=True).start()
    served = 0
    try:
        while True:
            # Drain checkpoint: only between points, never mid-compute —
            # a SIGTERM'd worker finishes what it holds and reports it.
            if drain is not None and drain.is_set():
                return ("drained", served)
            with write_lock:
                send_frame(sock, {"type": "next"})
            message = recv_frame(sock)
            if message is None:
                return ("lost", served)
            kind = message.get("type")
            if kind == "shutdown":
                return ("shutdown", served)
            if kind == "wait":
                time.sleep(float(message.get("delay", 0.05)))
                continue
            if kind != "task":
                continue
            index = int(message["task"])
            try:
                payload = execute(message["payload"])
            except Exception as exc:
                reply = {
                    "type": "error",
                    "task": index,
                    "message": f"{type(exc).__name__}: {exc}",
                }
            else:
                served += 1
                reply = {"type": "result", "task": index, "payload": payload}
            with write_lock:
                send_frame(sock, reply)
    except OSError:
        return ("lost", served)
    finally:
        stop.set()


def run_worker(
    address: str,
    connect_retry: float = 30.0,
    stream: Optional[TextIO] = None,
    execute=execute_spec_payload,
    drain: Optional[threading.Event] = None,
) -> int:
    """``python -m repro worker --connect HOST:PORT`` entry point.

    Connects (retrying for *connect_retry* seconds — the coordinator may
    start after the workers, and a crashed coordinator may restart and
    resume from its cache), serves campaign points until told to shut
    down, and reconnects after a lost connection with a fresh retry
    window.  Returns 0 on a clean shutdown or an exhausted retry window.

    ``SIGTERM`` drains gracefully instead of dying mid-lease: the
    in-flight point is finished and its result sent before the worker
    disconnects and exits 0, so the coordinator books the point instead
    of waiting out the lease and requeueing it onto another worker.
    (The handler is only installed when running in the main thread;
    embedded callers can pass their own *drain* event.)
    """
    stream = sys.stderr if stream is None else stream
    host, port = parse_address(address, default_port=-1)
    if port < 0:
        raise ConfigurationError(f"worker address {address!r} needs an explicit port")
    if drain is None:
        drain = threading.Event()
    if threading.current_thread() is threading.main_thread():
        import signal

        signal.signal(signal.SIGTERM, lambda signum, frame: drain.set())
    total = 0
    while True:
        if drain.is_set():
            print(
                f"repro worker: SIGTERM ({total} point(s) served); exiting",
                file=stream,
            )
            return 0
        sock = _connect_with_retry(host, port, connect_retry, drain=drain)
        if sock is None:
            if drain.is_set():
                continue  # loop top prints the SIGTERM message and exits 0
            print(
                f"repro worker: no coordinator at {host}:{port} within "
                f"{connect_retry:.0f}s ({total} point(s) served); exiting",
                file=stream,
            )
            return 0
        with sock:
            outcome, served = _serve_session(sock, execute=execute, drain=drain)
        total += served
        if outcome == "shutdown":
            print(
                f"repro worker: campaign complete ({total} point(s) served); exiting",
                file=stream,
            )
            return 0
        if outcome == "drained":
            print(
                f"repro worker: SIGTERM — finished the in-flight point and sent the "
                f"result ({total} point(s) served); exiting",
                file=stream,
            )
            return 0
        print(
            f"repro worker: lost coordinator at {host}:{port} after {served} point(s); "
            f"retrying for {connect_retry:.0f}s",
            file=stream,
        )

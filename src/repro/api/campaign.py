"""The campaign layer: declarative sweeps over :func:`repro.api.simulate`.

Every experiment in the paper's T-series is a *grid* of the one shape
:class:`~repro.api.spec.SimulationSpec` made declarative — protocol × n
× model × initial split, replicated.  This module lifts the grid itself
into the API:

>>> from repro.api import CampaignSpec, SimulationSpec, SweepSpec, run_campaign
>>> campaign = CampaignSpec(
...     base=SimulationSpec(protocol="two-choices", n=1000, reps=4),
...     sweep=SweepSpec(axes={"n": [1000, 2000, 4000]}),
...     seed=7,
... )
>>> result = run_campaign(campaign)          # doctest: +SKIP
>>> result.column("mean_parallel_time")      # doctest: +SKIP

A :class:`SweepSpec` names parameter axes and expands them (cartesian
``product`` or aligned ``zip``) into override dicts; a
:class:`CampaignSpec` applies each override to a base spec and pins a
per-point seed; :func:`run_campaign` pushes the points through a
pluggable executor (:mod:`repro.api.executors`) behind a
content-addressed :class:`~repro.api.cache.ResultCache`, and aggregates
the per-point summaries into the tidy rows/columns table
:func:`repro.bench.tables.format_table` and :mod:`repro.viz` consume.

Seed-derivation rule
--------------------
Unless a point's overrides pin ``seed`` explicitly (via a ``"seed"``
axis), point *i* receives ::

    int(SeedSequence(entropy=campaign.seed,
                     spawn_key=(CAMPAIGN_SPAWN_KEY, i)).generate_state(1, uint64)[0] >> 1)

a pure function of the campaign master seed and the point's position in
the expansion order — never of the executor, worker count, chunking, or
which points were served from cache.  Serial and process executors
therefore produce identical campaign results, replication for
replication.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import ConfigurationError
from .cache import ResultCache, spec_key
from .executors import resolve_executor
from .results import SimulationResult
from .spec import SimulationSpec

__all__ = [
    "SweepSpec",
    "CampaignSpec",
    "CampaignPoint",
    "CampaignResult",
    "point_seed",
    "run_campaign",
]

#: Spawn-key namespace for campaign point seeds ("CAMP" in ASCII); keeps
#: campaign streams disjoint from every other SeedSequence consumer.
CAMPAIGN_SPAWN_KEY = 0x43414D50

_STREAM_END = object()

#: Summary statistics every campaign table carries, in column order.
STAT_COLUMNS = (
    "reps",
    "converged",
    "converged_rate",
    "plurality_rate",
    "mean_rounds",
    "mean_parallel_time",
    "std_parallel_time",
)


def point_seed(master_seed: int, index: int) -> int:
    """Deterministic per-point seed (see the module docstring's rule)."""
    sequence = np.random.SeedSequence(
        entropy=int(master_seed), spawn_key=(CAMPAIGN_SPAWN_KEY, int(index))
    )
    return int(sequence.generate_state(1, np.uint64)[0] >> np.uint64(1))


def _spec_field_names() -> set:
    import dataclasses

    return {f.name for f in dataclasses.fields(SimulationSpec)}


@dataclass(frozen=True)
class SweepSpec:
    """Named parameter axes plus an expansion mode.

    Axis names address :class:`SimulationSpec` fields directly
    (``"n"``, ``"protocol"``, ``"reps"``, ``"seed"``, ...) or reach one
    level into a parameter dict with a dot
    (``"initial_params.k"`` merges ``k`` into the base spec's
    ``initial_params``).  ``mode="product"`` expands the cartesian grid
    in row-major axis-insertion order; ``mode="zip"`` aligns equal-length
    axes element-wise (the shape of "these cells, with these seeds").
    An empty ``axes`` dict expands to a single point — the base spec
    itself.

    Axis values must survive JSON (ints, floats, strings, lists/dicts
    thereof) so the sweep round-trips through :meth:`to_dict`.
    """

    axes: Dict[str, Tuple[Any, ...]] = field(default_factory=dict)
    mode: str = "product"

    def __post_init__(self):
        normalized = {str(name): tuple(values) for name, values in dict(self.axes).items()}
        object.__setattr__(self, "axes", normalized)
        if self.mode not in ("product", "zip"):
            raise ConfigurationError(
                f"unknown sweep mode {self.mode!r}; expected 'product' or 'zip'"
            )
        valid = _spec_field_names()
        for name, values in normalized.items():
            if not values:
                raise ConfigurationError(f"sweep axis {name!r} has no values")
            head = name.split(".", 1)[0]
            if head not in valid:
                raise ConfigurationError(
                    f"unknown sweep axis {name!r}; axes address SimulationSpec fields "
                    f"({', '.join(sorted(valid))}) or '<field>_params.<key>' paths"
                )
            if "." in name and not head.endswith("_params"):
                raise ConfigurationError(
                    f"dotted axis {name!r} must reach into a *_params dict"
                )
        if self.mode == "zip" and normalized:
            lengths = {name: len(values) for name, values in normalized.items()}
            if len(set(lengths.values())) > 1:
                raise ConfigurationError(f"zip-mode axes must have equal lengths, got {lengths}")

    @property
    def size(self) -> int:
        """Number of points the sweep expands to."""
        if not self.axes:
            return 1
        if self.mode == "zip":
            return len(next(iter(self.axes.values())))
        out = 1
        for values in self.axes.values():
            out *= len(values)
        return out

    def expand(self) -> List[Dict[str, Any]]:
        """Override dicts in deterministic expansion order."""
        if not self.axes:
            return [{}]
        names = list(self.axes)
        if self.mode == "zip":
            rows = zip(*self.axes.values())
        else:
            rows = itertools.product(*self.axes.values())
        return [dict(zip(names, row)) for row in rows]

    def to_dict(self) -> Dict[str, Any]:
        """Loss-free JSON-ready form; inverse of :meth:`from_dict`."""
        return {"axes": {name: list(values) for name, values in self.axes.items()},
                "mode": self.mode}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        unknown = sorted(set(payload) - {"axes", "mode"})
        if unknown:
            raise ConfigurationError(f"unknown SweepSpec field(s): {unknown}")
        return cls(axes=dict(payload.get("axes", {})), mode=payload.get("mode", "product"))


def _apply_overrides(base: SimulationSpec, overrides: Mapping[str, Any]) -> SimulationSpec:
    """One grid point: *base* with *overrides* applied (dots merge)."""
    changes: Dict[str, Any] = {}
    for name, value in overrides.items():
        if "." in name:
            head, _, key = name.partition(".")
            merged = dict(changes.get(head, getattr(base, head)))
            merged[key] = value
            changes[head] = merged
        else:
            changes[name] = value
    return base.replace(**changes)


@dataclass(frozen=True)
class CampaignSpec:
    """A base spec, a sweep over it, and one master seed.

    The campaign owns seeding: ``base.seed`` must be ``None`` and each
    expanded point receives :func:`point_seed` of (``seed``, position)
    unless a ``"seed"`` axis pins it explicitly.  ``sweep`` may be given
    as a plain ``{axis: values}`` dict (wrapped into a product-mode
    :class:`SweepSpec`).
    """

    base: SimulationSpec
    sweep: SweepSpec = field(default_factory=SweepSpec)
    seed: int = 20170725
    name: str = ""

    def __post_init__(self):
        if isinstance(self.sweep, Mapping):
            object.__setattr__(self, "sweep", SweepSpec(axes=dict(self.sweep)))
        if not isinstance(self.base, SimulationSpec):
            raise ConfigurationError(
                f"base must be a SimulationSpec, got {type(self.base).__name__}"
            )
        if not isinstance(self.sweep, SweepSpec):
            raise ConfigurationError(
                f"sweep must be a SweepSpec or an axes mapping, got {type(self.sweep).__name__}"
            )
        if self.base.seed is not None:
            raise ConfigurationError(
                "the campaign owns seeding: leave base.seed None (add an explicit "
                "'seed' axis to pin per-point seeds)"
            )
        if not isinstance(self.seed, int):
            raise ConfigurationError(f"campaign seed must be an int, got {type(self.seed).__name__}")

    @property
    def size(self) -> int:
        return self.sweep.size

    def points(self) -> List[SimulationSpec]:
        """The concrete specs, seeds pinned, in expansion order."""
        out = []
        for index, overrides in enumerate(self.sweep.expand()):
            spec = _apply_overrides(self.base, overrides)
            if spec.seed is None:
                spec = spec.replace(seed=point_seed(self.seed, index))
            out.append(spec)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Loss-free JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "base": self.base.to_dict(),
            "sweep": self.sweep.to_dict(),
            "seed": self.seed,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        unknown = sorted(set(payload) - {"base", "sweep", "seed", "name"})
        if unknown:
            raise ConfigurationError(f"unknown CampaignSpec field(s): {unknown}")
        return cls(
            base=SimulationSpec.from_dict(payload["base"]),
            sweep=SweepSpec.from_dict(payload.get("sweep", {"axes": {}, "mode": "product"})),
            seed=payload.get("seed", 20170725),
            name=payload.get("name", ""),
        )

    def replace(self, **changes) -> "CampaignSpec":
        import dataclasses

        return dataclasses.replace(self, **changes)


@dataclass
class CampaignPoint:
    """One grid point of a finished campaign."""

    index: int
    overrides: Dict[str, Any]
    spec: SimulationSpec
    result: SimulationResult
    cached: bool
    key: Optional[str]


@dataclass
class CampaignResult:
    """Aggregate of one campaign run.

    ``points`` are in expansion order regardless of executor or cache
    state.  The tidy table (:meth:`table` / :meth:`columns` /
    :meth:`rows`) has one row per point: the axis coordinates followed
    by :data:`STAT_COLUMNS` from each point's
    :meth:`~repro.api.results.SimulationResult.summary`.
    """

    campaign: CampaignSpec
    points: List[CampaignPoint] = field(default_factory=list)
    executor: str = "serial"
    elapsed_seconds: float = 0.0
    engine_runs: int = 0

    @property
    def size(self) -> int:
        return len(self.points)

    @property
    def cache_hits(self) -> int:
        return sum(1 for p in self.points if p.cached)

    def axis_names(self) -> List[str]:
        return list(self.campaign.sweep.axes)

    def columns(self) -> List[str]:
        return self.axis_names() + list(STAT_COLUMNS)

    def rows(self) -> List[List[Any]]:
        axes = self.axis_names()
        out = []
        for p in self.points:
            summary = p.result.summary()
            out.append([p.overrides.get(a) for a in axes] + [summary[s] for s in STAT_COLUMNS])
        return out

    def table(self) -> Tuple[List[str], List[List[Any]]]:
        """``(columns, rows)`` — the shape ``format_table`` consumes."""
        return self.columns(), self.rows()

    def column(self, name: str) -> List[Any]:
        """One tidy column by name (axis coordinate or summary stat)."""
        columns = self.columns()
        try:
            position = columns.index(name)
        except ValueError:
            raise ConfigurationError(
                f"unknown column {name!r}; available: {', '.join(columns)}"
            ) from None
        return [row[position] for row in self.rows()]

    def results(self) -> List[SimulationResult]:
        return [p.result for p in self.points]

    def format(self) -> str:
        """Status line + aligned table, for terminals."""
        from ..bench.tables import format_table

        header = (
            f"campaign {self.campaign.name or '(unnamed)'}: {self.size} point(s), "
            f"executor={self.executor}, engine runs={self.engine_runs}, "
            f"cache hits={self.cache_hits}, wall-clock={self.elapsed_seconds:.2f}s"
        )
        columns, rows = self.table()
        return header + "\n" + format_table(columns, rows)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload.

        Everything outside the ``"execution"`` block is a pure function
        of the campaign spec and the simulation values — byte-identical
        between a cold run, a warm cache replay and any executor.
        Wall-clock, executor identity and cache accounting live under
        ``"execution"`` only.
        """
        return {
            "campaign": self.campaign.to_dict(),
            "columns": self.columns(),
            "rows": self.rows(),
            "points": [
                {
                    "index": p.index,
                    "overrides": dict(p.overrides),
                    "key": p.key,
                    "engine": p.result.engine,
                    "summary": p.result.summary(),
                }
                for p in self.points
            ],
            "execution": {
                "executor": self.executor,
                "elapsed_seconds": self.elapsed_seconds,
                "engine_runs": self.engine_runs,
                "cache_hits": self.cache_hits,
                "points": self.size,
                "cached": [p.cached for p in self.points],
            },
        }


def run_campaign(
    campaign: CampaignSpec,
    executor: Union[str, Any] = "serial",
    cache: Union[None, str, ResultCache] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> CampaignResult:
    """Run every point of *campaign* and aggregate the summaries.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"process"``,
        ``"distributed[:HOST:PORT]"``, or any object with a
        ``map_payloads`` method (see :mod:`repro.api.executors`).
        Executors resolved here from a string are owned by this call:
        their ``close()`` (when they define one) runs on the way out.
        If the executor exposes a ``progress_hook`` attribute and a
        cache is configured, the hook is pointed at the cache for the
        duration of the run so every completed point is persisted the
        moment it lands — even out of arrival order, which is what
        bounds a coordinator crash to the in-flight points.
    cache:
        ``None`` (always run), a directory path, or a
        :class:`~repro.api.cache.ResultCache`.  Points already present
        are served from disk without touching an engine; fresh results
        are persisted as they arrive, so an interrupted campaign resumes
        where it stopped.
    workers / chunksize:
        Forwarded to the process executor when *executor* is a string.

    Traced points (``record_trace=True``) are pinned to the driver
    process and bypass the cache: traces do not survive the payload
    round trip, and losing them silently would be worse than running
    in-process.  Everything else — serial or process, cold or warm —
    flows through the same ``to_dict``/``from_dict`` normalization, so
    the returned values are identical whichever path ran.
    """
    from .runner import simulate

    if not isinstance(campaign, CampaignSpec):
        raise ConfigurationError(
            f"run_campaign() takes a CampaignSpec, got {type(campaign).__name__}"
        )
    executor_obj = resolve_executor(executor, workers=workers, chunksize=chunksize)
    cache_obj = ResultCache(cache) if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__") else cache
    if cache_obj is not None and not isinstance(cache_obj, ResultCache):
        raise ConfigurationError(
            f"cache must be None, a directory path, or a ResultCache, got {type(cache).__name__}"
        )

    overrides = campaign.sweep.expand()
    specs = campaign.points()
    start = time.perf_counter()
    results: List[Optional[SimulationResult]] = [None] * len(specs)
    cached = [False] * len(specs)
    keys: List[Optional[str]] = [None if s.record_trace else spec_key(s) for s in specs]

    pending: List[int] = []
    for index, spec in enumerate(specs):
        if cache_obj is not None and not spec.record_trace:
            hit = cache_obj.get(spec)
            if hit is not None:
                results[index] = hit
                cached[index] = True
                continue
        pending.append(index)

    batch = [i for i in pending if not specs[i].record_trace]
    executor_name = getattr(executor_obj, "name", type(executor_obj).__name__)
    hook_installed = False
    if cache_obj is not None and hasattr(executor_obj, "progress_hook"):
        # Executors that complete points out of order (distributed
        # work-stealing) persist each one the moment it lands, not when
        # the in-order stream below reaches it — a dead coordinator
        # then loses only in-flight points.  The in-order put below
        # still runs (identical bytes, atomic) so cache failures stay
        # loud even if a hook write was swallowed.
        def _persist_landed(position: int, payload: Dict[str, Any]) -> None:
            cache_obj.put(specs[batch[position]], payload)

        executor_obj.progress_hook = _persist_landed
        hook_installed = True
    stream = None
    try:
        stream = iter(executor_obj.map_payloads([specs[i].to_dict() for i in batch]))
        # Consume lazily and persist each payload the moment it arrives,
        # so an interrupted campaign keeps its completed prefix in the
        # cache and resumes from there.
        for position, index in enumerate(batch):
            try:
                payload = next(stream)
            except StopIteration:
                raise ConfigurationError(
                    f"executor {executor_name!r} returned {position} payload(s) "
                    f"for {len(batch)} spec(s)"
                ) from None
            if cache_obj is not None:
                cache_obj.put(specs[index], payload)
            results[index] = SimulationResult.from_dict(payload)
        if next(stream, _STREAM_END) is not _STREAM_END:
            raise ConfigurationError(
                f"executor {executor_name!r} returned more than {len(batch)} payload(s)"
            )
        for index in pending:
            if specs[index].record_trace:
                results[index] = simulate(specs[index])
    finally:
        if hook_installed:
            executor_obj.progress_hook = None
        closer = getattr(stream, "close", None)
        if callable(closer):
            closer()  # unwinds a generator executor's coordinator threads
        if isinstance(executor, str):
            # run_campaign created this executor, so it owns the teardown
            # (a caller-supplied object may be reused across campaigns).
            teardown = getattr(executor_obj, "close", None)
            if callable(teardown):
                teardown()

    elapsed = time.perf_counter() - start
    points = [
        CampaignPoint(
            index=index,
            overrides=overrides[index],
            spec=specs[index],
            result=results[index],
            cached=cached[index],
            key=keys[index],
        )
        for index in range(len(specs))
    ]
    return CampaignResult(
        campaign=campaign,
        points=points,
        executor=getattr(executor_obj, "name", type(executor_obj).__name__),
        elapsed_seconds=elapsed,
        engine_runs=len(pending),
    )

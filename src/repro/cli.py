"""Command-line interface.

Examples::

    python -m repro list
    python -m repro simulate two-choices --n 100000 --reps 8
    python -m repro simulate voter --n 10000 --model synchronous --initial balanced --initial-param k=4
    python -m repro sweep two-choices --axis n=10000,20000,40000 --reps 8 --seed 7
    python -m repro sweep two-choices --axis n=10000,20000 --workers 4 --cache-dir .repro-cache --json
    python -m repro sweep two-choices --axis n=10000,20000 --executor distributed:7654 --cache-dir cache
    python -m repro worker --connect 127.0.0.1:7654
    python -m repro serve --port 7680 --cache-dir .repro-cache --workers 4
    python -m repro run T6
    python -m repro run all --scale full --store results
    python -m repro show T6 --store results
    python -m repro schedule 100000
    python -m repro engines --quick --out BENCH_engines.json
    python -m repro sparse --quick --out BENCH_sparse.json
    python -m repro kernels --quick --out BENCH_kernels.json
    python -m repro robustness --quick --cache-dir .repro-cache --out BENCH_robustness.json
    python -m repro lint src/repro
    python -m repro lint src/repro --select REPRO-R002,REPRO-H003 --json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
from typing import Dict, List, Optional

from .api import (
    DELAYS,
    EXECUTORS,
    FAULTS,
    INITIALS,
    PROTOCOLS,
    STOPS,
    TOPOLOGIES,
    CampaignSpec,
    SimulationSpec,
    SweepSpec,
    run_campaign,
    simulate,
)
from .bench import FULL, QUICK, ExperimentScale, ResultStore, experiment_ids, run_experiment
from .bench.tables import format_table
from .core.exceptions import ConfigurationError
from .protocols.schedule import PhaseSchedule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-consensus",
        description="Rapid asynchronous plurality consensus (PODC 2017) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list", help="list registered experiments, protocols, topologies and initial conditions"
    )

    sim_cmd = sub.add_parser(
        "simulate",
        help="run one declarative simulation spec (protocol x topology x model x reps)",
    )
    sim_cmd.add_argument("protocol", help="registered protocol name (see 'repro list')")
    sim_cmd.add_argument("--n", type=int, required=True, help="number of nodes")
    sim_cmd.add_argument("--reps", type=int, default=1, help="independent replications")
    sim_cmd.add_argument(
        "--model",
        choices=["sequential", "continuous", "synchronous"],
        default="sequential",
        help="execution model (default: sequential ticks)",
    )
    sim_cmd.add_argument("--topology", default="complete", help="registered topology name")
    sim_cmd.add_argument("--initial", default="benchmark-split", help="registered initial condition")
    sim_cmd.add_argument("--delay", default=None, help="response-delay model (continuous only)")
    sim_cmd.add_argument("--stop", default="consensus", help="stop criterion")
    _add_param_flags(sim_cmd)
    sim_cmd.add_argument("--seed", type=int, default=None, help="master seed (default: OS entropy)")
    sim_cmd.add_argument("--max-steps", type=int, default=None, help="round/tick budget")
    sim_cmd.add_argument("--max-time", type=float, default=None, help="continuous-time budget")
    sim_cmd.add_argument(
        "--quick",
        action="store_true",
        help=f"smoke-run scale: shrink n by the quick-scale factor ({QUICK.size_factor})",
    )
    sim_cmd.add_argument("--json", action="store_true", help="emit the full result payload as JSON")
    sim_cmd.add_argument(
        "--spec-only", action="store_true", help="print the resolved spec as JSON without running"
    )

    sweep_cmd = sub.add_parser(
        "sweep",
        help="run a campaign: a declarative grid of simulate() specs with executors and a result cache",
    )
    sweep_cmd.add_argument("protocol", help="registered protocol name (see 'repro list')")
    sweep_cmd.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="sweep axis over a SimulationSpec field ('n=1000,2000') or a params key "
        "('initial_params.k=2,4,8'); repeatable — axes combine as a cartesian grid "
        "unless --zip is given",
    )
    sweep_cmd.add_argument(
        "--zip",
        action="store_true",
        dest="zip_axes",
        help="align equal-length axes element-wise instead of taking their product",
    )
    sweep_cmd.add_argument("--n", type=int, default=None, help="number of nodes (or sweep an 'n' axis)")
    sweep_cmd.add_argument("--reps", type=int, default=1, help="independent replications per point")
    sweep_cmd.add_argument(
        "--model",
        choices=["sequential", "continuous", "synchronous"],
        default="sequential",
        help="execution model (default: sequential ticks)",
    )
    sweep_cmd.add_argument("--topology", default="complete", help="registered topology name")
    sweep_cmd.add_argument("--initial", default="benchmark-split", help="registered initial condition")
    sweep_cmd.add_argument("--delay", default=None, help="response-delay model (continuous only)")
    sweep_cmd.add_argument("--stop", default="consensus", help="stop criterion")
    _add_param_flags(sweep_cmd)
    sweep_cmd.add_argument(
        "--seed", type=int, default=20170725, help="campaign master seed (per-point seeds derive from it)"
    )
    sweep_cmd.add_argument("--max-steps", type=int, default=None, help="round/tick budget per point")
    sweep_cmd.add_argument("--max-time", type=float, default=None, help="continuous-time budget per point")
    sweep_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (>1 selects the process executor; default: in-process serial)",
    )
    sweep_cmd.add_argument("--chunksize", type=int, default=None, help="points per process dispatch")
    sweep_cmd.add_argument(
        "--executor",
        default=None,
        metavar="NAME[:HOST:PORT]",
        help="executor backend by name (see 'repro list'): serial, process, or "
        "distributed[:HOST:PORT] — the latter binds a coordinator socket and serves "
        "points to 'repro worker' processes; default: process when --workers > 1, "
        "else serial",
    )
    sweep_cmd.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (skip-completed resume, warm replays)",
    )
    sweep_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic campaign payload as JSON on stdout (execution "
        "stats go to stderr, so equal campaigns emit byte-identical JSON)",
    )
    sweep_cmd.add_argument(
        "--spec-only", action="store_true", help="print the campaign spec as JSON without running"
    )

    worker_cmd = sub.add_parser(
        "worker",
        help="serve campaign points to a distributed sweep coordinator (pull, run, stream back)",
    )
    worker_cmd.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (the 'repro sweep --executor distributed:...' side)",
    )
    worker_cmd.add_argument(
        "--connect-retry",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="keep retrying the connection this long (the coordinator may start late, "
        "or restart after a crash and resume from its cache; default: 30)",
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="run the persistent simulation service: HTTP front door with a shared "
        "result cache, request coalescing, and a bounded worker pool",
    )
    serve_cmd.add_argument("--port", type=int, default=7680, help="listen port (default: 7680)")
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="content-addressed result cache shared by all requests (default: .repro-cache)",
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=2,
        help="cold-run worker threads draining the job queue (default: 2)",
    )
    serve_cmd.add_argument(
        "--executor",
        default="serial",
        metavar="NAME[:HOST:PORT]",
        help="executor backend each worker dispatches through: serial, process, or "
        "distributed:HOST:PORT (default: serial)",
    )
    serve_cmd.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="max queued cold jobs before new work is refused with 503 (default: 256)",
    )
    serve_cmd.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request to stderr"
    )

    run_cmd = sub.add_parser("run", help="run one experiment (or 'all')")
    run_cmd.add_argument("experiment", help="experiment id (T1..T12) or 'all'")
    run_cmd.add_argument("--scale", choices=["quick", "full"], default="quick")
    run_cmd.add_argument("--trials", type=int, default=None, help="override trial count")
    run_cmd.add_argument("--seed", type=int, default=None, help="override master seed")
    run_cmd.add_argument("--store", default=None, help="directory to persist JSON results")

    show_cmd = sub.add_parser("show", help="re-print a stored experiment result")
    show_cmd.add_argument("experiment", help="experiment id")
    show_cmd.add_argument("--store", default="results")

    report_cmd = sub.add_parser("report", help="render all stored results as one markdown report")
    report_cmd.add_argument("--store", default="results")
    report_cmd.add_argument("--title", default="Experiment report")

    sched_cmd = sub.add_parser("schedule", help="print the compiled phase schedule for n nodes")
    sched_cmd.add_argument("n", type=int)
    sched_cmd.add_argument("--no-sync", action="store_true", help="disable the Sync Gadget")

    engines_cmd = sub.add_parser(
        "engines",
        help="benchmark the engine family (incl. the K_n counts fast path) on async Two-Choices",
    )
    # single source of truth for the options: the perf module itself
    from .bench.perf_engines import add_cli_arguments

    add_cli_arguments(engines_cmd)

    sparse_cmd = sub.add_parser(
        "sparse",
        help="benchmark the sparse-topology hazard-batched engines on torus and random-regular",
    )
    from .bench.perf_sparse import add_cli_arguments as add_sparse_cli_arguments

    add_sparse_cli_arguments(sparse_cmd)

    kernels_cmd = sub.add_parser(
        "kernels",
        help="benchmark the compiled tick kernels (REPRO_KERNEL) against the numpy hazard path",
    )
    from .bench.perf_kernels import add_cli_arguments as add_kernels_cli_arguments

    add_kernels_cli_arguments(kernels_cmd)

    robustness_cmd = sub.add_parser(
        "robustness",
        help="run the fault-injection robustness suite: phase-transition maps under "
        "loss/stubborn/byzantine faults",
    )
    from .bench.perf_robustness import add_cli_arguments as add_robustness_cli_arguments

    add_robustness_cli_arguments(robustness_cmd)

    lint_cmd = sub.add_parser(
        "lint",
        help="run the contract-aware static analysis (RNG/hash/clock/lock/purity rules) "
        "over source paths",
    )
    from .devtools.lint import add_cli_arguments as add_lint_cli_arguments

    add_lint_cli_arguments(lint_cmd)
    return parser


def _add_param_flags(cmd) -> None:
    """The five repeatable KEY=VALUE override flags, shared by simulate/sweep."""
    for flag, target in (
        ("--param", "protocol"),
        ("--topology-param", "topology"),
        ("--initial-param", "initial condition"),
        ("--delay-param", "delay model"),
        ("--stop-param", "stop criterion"),
    ):
        cmd.add_argument(
            flag,
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help=f"{target} parameter override (repeatable)",
        )
    cmd.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="NAME[:KEY=VALUE,...]",
        help="fault wrapper around the protocol, e.g. 'stubborn:fraction=0.05' "
        "(repeatable; applied first-flag-innermost)",
    )


def _resolve_scale(args) -> ExperimentScale:
    scale = FULL if args.scale == "full" else QUICK
    overrides = {}
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.seed is not None:
        overrides["seed"] = args.seed
    # dataclasses.replace keeps every field not overridden, so new
    # ExperimentScale fields are never silently dropped here.
    return dataclasses.replace(scale, **overrides) if overrides else scale


def _parse_params(pairs: List[str], flag: str) -> Dict[str, str]:
    """Parse repeated ``KEY=VALUE`` flags; registry metadata coerces types."""
    out: Dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ConfigurationError(f"{flag} expects KEY=VALUE, got {pair!r}")
        out[key] = value
    return out


def _parse_faults(pairs: List[str]) -> List[Dict[str, object]]:
    """Parse repeated ``--fault NAME[:KEY=VALUE,...]`` flags in order."""
    out: List[Dict[str, object]] = []
    for pair in pairs:
        name, sep, params = pair.partition(":")
        if not name:
            raise ConfigurationError(f"--fault expects NAME[:KEY=VALUE,...], got {pair!r}")
        overrides = _parse_params(params.split(",") if sep and params else [], "--fault")
        out.append({"name": name, "params": overrides})
    return out


def _spec_from_args(args) -> SimulationSpec:
    """Build the :class:`SimulationSpec` the ``simulate`` flags describe."""
    n = args.n
    if args.quick:
        n = max(2, int(round(n * QUICK.size_factor)))
    return SimulationSpec(
        protocol=args.protocol,
        n=n,
        protocol_params=_parse_params(args.param, "--param"),
        topology=args.topology,
        topology_params=_parse_params(args.topology_param, "--topology-param"),
        model=args.model,
        delay=args.delay,
        delay_params=_parse_params(args.delay_param, "--delay-param"),
        initial=args.initial,
        initial_params=_parse_params(args.initial_param, "--initial-param"),
        stop=args.stop,
        stop_params=_parse_params(args.stop_param, "--stop-param"),
        faults=_parse_faults(args.fault),
        reps=args.reps,
        seed=args.seed,
        max_steps=args.max_steps,
        max_time=args.max_time,
    )


def _run_simulate(args) -> int:
    spec = _spec_from_args(args)
    if args.spec_only:
        print(json.dumps(spec.to_dict(), indent=2))
        return 0
    result = simulate(spec)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    summary = result.summary()
    print(f"=== simulate {spec.protocol} on {spec.topology} (n={spec.n}, model={spec.model}) ===")
    print(f"engine: {result.engine}   reps: {summary['reps']}   wall-clock: {result.elapsed_seconds:.2f}s")
    rows = [
        ["converged", f"{summary['converged']}/{summary['reps']}"],
        ["plurality preserved", f"{summary['plurality_rate']:.2f}"],
        ["mean rounds", f"{summary['mean_rounds']:.1f}"],
        ["mean parallel time", f"{summary['mean_parallel_time']:.3f}"],
        ["std parallel time", f"{summary['std_parallel_time']:.3f}"],
        ["min / max parallel time", f"{summary['min_parallel_time']:.3f} / {summary['max_parallel_time']:.3f}"],
    ]
    print(format_table(["statistic", "value"], rows))
    return 0


def _axis_value(text: str):
    """Coerce one CLI axis value: int, then float, else string.

    Registry ``ParamSpec`` metadata re-coerces param-dict values at
    build time, so string passthrough is safe for protocol parameters;
    numeric spec fields (``n``, ``reps``, seeds, budgets) need the
    numeric form here.
    """
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text


def _parse_axes(pairs: List[str]) -> Dict[str, list]:
    """Parse repeated ``--axis FIELD=V1,V2,...`` flags in order."""
    axes: Dict[str, list] = {}
    for pair in pairs:
        field, sep, values = pair.partition("=")
        if not sep or not field:
            raise ConfigurationError(f"--axis expects FIELD=V1,V2,..., got {pair!r}")
        if field in axes:
            raise ConfigurationError(f"duplicate --axis {field!r}")
        axes[field] = [_axis_value(v) for v in values.split(",") if v != ""]
        if not axes[field]:
            raise ConfigurationError(f"--axis {field!r} has no values")
    return axes


def _campaign_from_args(args) -> CampaignSpec:
    """Build the :class:`CampaignSpec` the ``sweep`` flags describe."""
    axes = _parse_axes(args.axis)
    n = args.n
    if n is None:
        n_axis = axes.get("n")
        if not n_axis:
            raise ConfigurationError("pass --n or sweep an 'n' axis (--axis n=...)")
        n = int(n_axis[0])
    base = SimulationSpec(
        protocol=args.protocol,
        n=n,
        protocol_params=_parse_params(args.param, "--param"),
        topology=args.topology,
        topology_params=_parse_params(args.topology_param, "--topology-param"),
        model=args.model,
        delay=args.delay,
        delay_params=_parse_params(args.delay_param, "--delay-param"),
        initial=args.initial,
        initial_params=_parse_params(args.initial_param, "--initial-param"),
        stop=args.stop,
        stop_params=_parse_params(args.stop_param, "--stop-param"),
        faults=_parse_faults(args.fault),
        reps=args.reps,
        max_steps=args.max_steps,
        max_time=args.max_time,
    )
    return CampaignSpec(
        base=base,
        sweep=SweepSpec(axes=axes, mode="zip" if args.zip_axes else "product"),
        seed=args.seed,
        name=f"sweep/{args.protocol}",
    )


def _json_safe(value):
    """Strict-JSON form: NaN/±inf (unconverged-point statistics) -> null."""
    if isinstance(value, dict):
        return {key: _json_safe(v) for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _run_sweep(args) -> int:
    campaign = _campaign_from_args(args)
    if args.spec_only:
        print(json.dumps(campaign.to_dict(), indent=2, sort_keys=True))
        return 0
    executor = args.executor or ("process" if args.workers > 1 else "serial")
    executor_obj = None
    if isinstance(executor, str) and executor.partition(":")[0] == "distributed":
        # Resolve eagerly so the bound address (port 0 = ephemeral) can
        # be announced before the campaign blocks waiting for workers.
        from .api.executors import resolve_executor

        executor_obj = resolve_executor(executor, workers=args.workers, chunksize=args.chunksize)
        host, port = executor_obj.address
        print(
            f"coordinator listening on {host}:{port} — start workers with: "
            f"python -m repro worker --connect {host}:{port}",
            file=sys.stderr,
        )
    try:
        result = run_campaign(
            campaign,
            executor=executor_obj if executor_obj is not None else executor,
            cache=args.cache_dir,
            workers=args.workers,
            chunksize=args.chunksize,
        )
    finally:
        if executor_obj is not None:
            executor_obj.close()
    if args.json:
        # stdout carries only the deterministic payload (a pure function
        # of the campaign spec and the simulation values, RFC-8259
        # strict); execution stats go to stderr so warm replays are
        # byte-identical.
        payload = result.to_dict()
        del payload["execution"]
        print(json.dumps(_json_safe(payload), indent=2, sort_keys=True))
        print(
            f"campaign: {result.size} point(s), executor={result.executor}, "
            f"engine_runs={result.engine_runs}, cache_hits={result.cache_hits}, "
            f"elapsed={result.elapsed_seconds:.2f}s",
            file=sys.stderr,
        )
        return 0
    print(result.format())
    return 0


def _print_registries() -> None:
    print()
    print("protocols (simulate <protocol>):")
    rows = []
    for name in PROTOCOLS.names():
        entry = PROTOCOLS.get(name)
        params = ", ".join(p.name for p in entry.params) or "-"
        rows.append([name, "/".join(entry.models()), params, entry.description])
    print(format_table(["protocol", "models", "params", "description"], rows))
    for label, registry in (
        ("topologies (--topology)", TOPOLOGIES),
        ("initial conditions (--initial)", INITIALS),
        ("delay models (--delay)", DELAYS),
        ("stop criteria (--stop)", STOPS),
        ("fault wrappers (--fault)", FAULTS),
    ):
        print()
        print(f"{label}:")
        rows = []
        for name in registry.names():
            entry = registry.get(name)
            params = ", ".join(
                f"{p.name}*" if p.required else p.name for p in entry.params
            ) or "-"
            rows.append([name, params, entry.description])
        print(format_table(["name", "params (* = required)", "description"], rows))
    print()
    print("executors (repro sweep --executor):")
    rows = []
    for name in sorted(EXECUTORS):
        doc = (EXECUTORS[name].__doc__ or "").strip()
        rows.append([name, doc.splitlines()[0] if doc else "-"])
    print(format_table(["executor", "description"], rows))
    print()
    print("lint rules (repro lint --select):")
    from .devtools.lint import iter_rules

    rows = []
    for rule in iter_rules():
        rows.append([rule.rule_id, "on" if rule.default else "off", rule.description])
    print(format_table(["rule", "default", "description"], rows))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        rows = [[eid] for eid in experiment_ids()]
        print(format_table(["experiment"], rows))
        _print_registries()
        return 0

    if args.command == "simulate":
        return _run_simulate(args)

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command == "worker":
        from .api.distributed import run_worker

        return run_worker(args.connect, connect_retry=args.connect_retry)

    if args.command == "serve":
        from .api.serve import run_server

        return run_server(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            workers=args.workers,
            executor=args.executor,
            queue_limit=args.queue_limit,
            verbose=args.verbose,
        )

    if args.command == "run":
        scale = _resolve_scale(args)
        store = ResultStore(args.store) if args.store else None
        ids = experiment_ids() if args.experiment.lower() == "all" else [args.experiment]
        failures = 0
        for eid in ids:
            report = run_experiment(eid, scale=scale, store=store)
            print(report.format())
            print()
            if not report.all_checks_pass():
                failures += 1
        if failures:
            print(f"{failures} experiment(s) had failing shape checks", file=sys.stderr)
        return 1 if failures else 0

    if args.command == "show":
        store = ResultStore(args.store)
        payload = store.load(args.experiment)
        print(f"=== {payload['experiment_id']}: {payload['title']} ===")
        print(f"claim: {payload['claim']}")
        print()
        print(format_table(payload["headers"], payload["rows"]))
        for name, passed in payload.get("checks", {}).items():
            print(f"check {name}: {'PASS' if passed else 'FAIL'}")
        return 0

    if args.command == "report":
        from .bench.report import render_report

        print(render_report(ResultStore(args.store), title=args.title))
        return 0

    if args.command == "engines":
        from .bench.perf_engines import run_cli

        return run_cli(args, parser.error)

    if args.command == "sparse":
        from .bench.perf_sparse import run_cli as run_sparse_cli

        return run_sparse_cli(args, parser.error)

    if args.command == "kernels":
        from .bench.perf_kernels import run_cli as run_kernels_cli

        return run_kernels_cli(args, parser.error)

    if args.command == "robustness":
        from .bench.perf_robustness import run_cli as run_robustness_cli

        return run_robustness_cli(args, parser.error)

    if args.command == "lint":
        from .devtools.lint import run_cli as run_lint_cli

        return run_lint_cli(args, parser.error)

    if args.command == "schedule":
        schedule = PhaseSchedule.compile(args.n, sync_enabled=not args.no_sync)
        print(schedule.describe())
        landmarks = [
            ["phase starts", ", ".join(str(s) for s in schedule.phase_starts)],
            ["sync starts", ", ".join(str(s) for s in schedule.sync_starts)],
            ["jump slots", ", ".join(str(s) for s in schedule.jump_slots)],
            ["part one length", str(schedule.part_one_length)],
            ["endgame ticks", str(schedule.endgame_ticks)],
            ["total length", str(schedule.total_length)],
        ]
        print(format_table(["landmark", "working-time slots"], landmarks))
        return 0

    return 2  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

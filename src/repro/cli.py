"""Command-line interface.

Examples::

    python -m repro list
    python -m repro run T6
    python -m repro run all --scale full --store results
    python -m repro show T6 --store results
    python -m repro schedule 100000
    python -m repro engines --quick --out BENCH_engines.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import FULL, QUICK, ExperimentScale, ResultStore, experiment_ids, run_experiment
from .bench.tables import format_table
from .protocols.schedule import PhaseSchedule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-consensus",
        description="Rapid asynchronous plurality consensus (PODC 2017) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered experiments")

    run_cmd = sub.add_parser("run", help="run one experiment (or 'all')")
    run_cmd.add_argument("experiment", help="experiment id (T1..T12) or 'all'")
    run_cmd.add_argument("--scale", choices=["quick", "full"], default="quick")
    run_cmd.add_argument("--trials", type=int, default=None, help="override trial count")
    run_cmd.add_argument("--seed", type=int, default=None, help="override master seed")
    run_cmd.add_argument("--store", default=None, help="directory to persist JSON results")

    show_cmd = sub.add_parser("show", help="re-print a stored experiment result")
    show_cmd.add_argument("experiment", help="experiment id")
    show_cmd.add_argument("--store", default="results")

    report_cmd = sub.add_parser("report", help="render all stored results as one markdown report")
    report_cmd.add_argument("--store", default="results")
    report_cmd.add_argument("--title", default="Experiment report")

    sched_cmd = sub.add_parser("schedule", help="print the compiled phase schedule for n nodes")
    sched_cmd.add_argument("n", type=int)
    sched_cmd.add_argument("--no-sync", action="store_true", help="disable the Sync Gadget")

    engines_cmd = sub.add_parser(
        "engines",
        help="benchmark the engine family (incl. the K_n counts fast path) on async Two-Choices",
    )
    # single source of truth for the options: the perf module itself
    from .bench.perf_engines import add_cli_arguments

    add_cli_arguments(engines_cmd)
    return parser


def _resolve_scale(args) -> ExperimentScale:
    scale = FULL if args.scale == "full" else QUICK
    if args.trials is not None or args.seed is not None:
        scale = ExperimentScale(
            name=scale.name,
            trials=args.trials if args.trials is not None else scale.trials,
            size_factor=scale.size_factor,
            seed=args.seed if args.seed is not None else scale.seed,
        )
    return scale


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        rows = [[eid] for eid in experiment_ids()]
        print(format_table(["experiment"], rows))
        return 0

    if args.command == "run":
        scale = _resolve_scale(args)
        store = ResultStore(args.store) if args.store else None
        ids = experiment_ids() if args.experiment.lower() == "all" else [args.experiment]
        failures = 0
        for eid in ids:
            report = run_experiment(eid, scale=scale, store=store)
            print(report.format())
            print()
            if not report.all_checks_pass():
                failures += 1
        if failures:
            print(f"{failures} experiment(s) had failing shape checks", file=sys.stderr)
        return 1 if failures else 0

    if args.command == "show":
        store = ResultStore(args.store)
        payload = store.load(args.experiment)
        print(f"=== {payload['experiment_id']}: {payload['title']} ===")
        print(f"claim: {payload['claim']}")
        print()
        print(format_table(payload["headers"], payload["rows"]))
        for name, passed in payload.get("checks", {}).items():
            print(f"check {name}: {'PASS' if passed else 'FAIL'}")
        return 0

    if args.command == "report":
        from .bench.report import render_report

        print(render_report(ResultStore(args.store), title=args.title))
        return 0

    if args.command == "engines":
        from .bench.perf_engines import run_cli

        return run_cli(args, parser.error)

    if args.command == "schedule":
        schedule = PhaseSchedule.compile(args.n, sync_enabled=not args.no_sync)
        print(schedule.describe())
        landmarks = [
            ["phase starts", ", ".join(str(s) for s in schedule.phase_starts)],
            ["sync starts", ", ".join(str(s) for s in schedule.sync_starts)],
            ["jump slots", ", ".join(str(s) for s in schedule.jump_slots)],
            ["part one length", str(schedule.part_one_length)],
            ["endgame ticks", str(schedule.endgame_ticks)],
            ["total length", str(schedule.total_length)],
        ]
        print(format_table(["landmark", "working-time slots"], landmarks))
        return 0

    return 2  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

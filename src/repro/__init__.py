"""repro — Rapid Asynchronous Plurality Consensus (PODC 2017).

A full reproduction library for Elsässer, Friedetzky, Kaaser,
Mallmann-Trenn & Trinker, *Brief Announcement: Rapid Asynchronous
Plurality Consensus* (PODC '17).

Quickstart
----------
>>> from repro import SimulationSpec, simulate
>>> spec = SimulationSpec(protocol="two-choices", n=10_000, reps=4, seed=7)
>>> result = simulate(spec)
>>> result.converged_rate
1.0

The spec names registered protocols / topologies / initial conditions
(``repro.api.PROTOCOLS.names()`` etc.); :func:`simulate` routes it
through the fastest exact engine.  Protocol objects remain usable
directly:

>>> from repro import AsyncPluralityConsensus, multiplicative_bias
>>> config = multiplicative_bias(n=2000, k=8, ratio=1.5)
>>> result = AsyncPluralityConsensus().run(config, seed=7)
>>> result.converged and result.winner == 0
True

Layout
------
``repro.api``
    The declarative front door: ``SimulationSpec`` → ``simulate()``.
``repro.core``
    Colour configurations, state arrays, results, RNG policy.
``repro.graphs``
    ``K_n`` with O(1) sampling plus sparse topologies.
``repro.engine``
    Synchronous / counts-exact / sequential / continuous engines.
``repro.protocols``
    Two-Choices, OneExtraBit, the asynchronous phased protocol with its
    Sync Gadget, and the Voter / 3-Majority / USD baselines.
``repro.analysis``
    Pólya urn, martingale diagnostics, statistics, theorem predictions.
``repro.workloads``
    Initial-configuration generators and sweep grids.
``repro.bench``
    The experiment harness regenerating every claim-derived table.
"""

from .api import (
    CampaignResult,
    CampaignSpec,
    ResultCache,
    SimulationResult,
    SimulationSpec,
    SweepSpec,
    resolve,
    run_campaign,
    simulate,
)
from .core import (
    AsyncNodeState,
    ColorConfiguration,
    ConfigurationError,
    NodeArrayState,
    ReproError,
    RunResult,
    Trace,
    assignment_from_counts,
    counts_from_assignment,
)
from .engine import (
    ContinuousEngine,
    CountsEngine,
    ExponentialDelay,
    NoDelay,
    SequentialEngine,
    SynchronousEngine,
    consensus_reached,
    fastest_engine,
    near_consensus,
    run_replicated,
)
from .graphs import CompleteGraph, erdos_renyi, ring, torus
from .protocols import (
    AsyncPluralityConsensus,
    AsyncPluralityProtocol,
    ClockSkew,
    OneExtraBitCounts,
    OneExtraBitSynchronous,
    PhaseSchedule,
    ThreeMajorityCounts,
    TwoChoicesCounts,
    TwoChoicesSequential,
    TwoChoicesSynchronous,
    UndecidedStateCounts,
    VoterCounts,
    near_consensus_start,
    run_endgame,
)
from .workloads import (
    additive_gap,
    balanced,
    convergence_time_sweep,
    multiplicative_bias,
    power_law,
    theorem_1_1_gap,
    two_colors,
)

__version__ = "1.0.0"

__all__ = [
    "SimulationSpec",
    "SimulationResult",
    "simulate",
    "resolve",
    "SweepSpec",
    "CampaignSpec",
    "CampaignResult",
    "run_campaign",
    "ResultCache",
    "AsyncNodeState",
    "ColorConfiguration",
    "ConfigurationError",
    "NodeArrayState",
    "ReproError",
    "RunResult",
    "Trace",
    "assignment_from_counts",
    "counts_from_assignment",
    "ContinuousEngine",
    "CountsEngine",
    "ExponentialDelay",
    "NoDelay",
    "SequentialEngine",
    "SynchronousEngine",
    "consensus_reached",
    "fastest_engine",
    "near_consensus",
    "run_replicated",
    "CompleteGraph",
    "erdos_renyi",
    "ring",
    "torus",
    "AsyncPluralityConsensus",
    "AsyncPluralityProtocol",
    "ClockSkew",
    "OneExtraBitCounts",
    "OneExtraBitSynchronous",
    "PhaseSchedule",
    "ThreeMajorityCounts",
    "TwoChoicesCounts",
    "TwoChoicesSequential",
    "TwoChoicesSynchronous",
    "UndecidedStateCounts",
    "VoterCounts",
    "near_consensus_start",
    "run_endgame",
    "additive_gap",
    "balanced",
    "multiplicative_bias",
    "power_law",
    "theorem_1_1_gap",
    "two_colors",
    "convergence_time_sweep",
    "__version__",
]

"""Continuous-time asynchronous engine (Poisson clocks).

Implements the paper's primary model: every node has a rate-1 Poisson
clock and acts when it ticks.  Two execution paths:

* **Instantaneous responses** (the base model) — simulated through the
  superposition property: the next tick in the whole system arrives
  after ``Exp(n)`` time at a uniformly random node.  This is *equal in
  law* to maintaining ``n`` independent clocks and needs no heap.
* **Delayed responses** (the Discussion-section extension) — a real
  event queue interleaves clock ticks with read/apply events.  When a
  node ticks it issues read requests to its sampled targets; each
  response arrives after a delay drawn from the
  :class:`~repro.engine.delays.DelayModel`, observing the target's
  colour *at response time*; once the last response is in, the node
  applies its update.  While a request is in flight the node's clock
  keeps ticking but the node performs no new protocol action (it is
  busy waiting) — the modelling choice is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.results import RunResult, Trace
from ..core.rng import SeedLike, as_generator
from ..graphs.topology import Topology
from ..protocols.base import SequentialProtocol
from .base import StopCondition, build_result, consensus_reached, materialize_initial
from .delays import DelayModel, NoDelay
from .events import EventQueue

__all__ = ["ContinuousEngine"]


@dataclass
class _PendingRequest:
    """A tick whose responses have not all arrived yet."""

    node: int
    observed: List[int] = field(default_factory=list)
    outstanding: int = 0


class ContinuousEngine:
    """Event-driven driver for the Poisson-clock model."""

    def __init__(self, protocol: SequentialProtocol, topology: Topology, delay_model: Optional[DelayModel] = None):
        self.protocol = protocol
        self.topology = topology
        self.delay_model = delay_model if delay_model is not None else NoDelay()

    def run(
        self,
        initial: Union[ColorConfiguration, np.ndarray],
        max_time: Optional[float] = None,
        stop: StopCondition = consensus_reached,
        record_trace: bool = False,
        trace_every: float = 1.0,
        check_every: Optional[int] = None,
        seed: SeedLike = None,
    ) -> RunResult:
        """Run until *stop* holds or continuous time *max_time* passes.

        ``parallel_time`` in the result is the continuous clock time at
        which the stop condition was first observed; ``rounds`` counts
        processed tick events.
        """
        rng = as_generator(seed)
        colors, k = materialize_initial(initial, rng)
        n = colors.size
        if n != self.topology.n:
            raise ConfigurationError(
                f"initial configuration has {n} nodes but topology has {self.topology.n}"
            )
        if max_time is None:
            max_time = 50.0 * max(np.log(n), 1.0)
        if check_every is None:
            check_every = n
        check_every = max(1, int(check_every))

        state = self.protocol.make_state(colors, k)
        initial_counts = state.counts()
        if self.delay_model.is_zero():
            return self._run_instantaneous(
                state, initial_counts, max_time, stop, record_trace, trace_every, check_every, rng
            )
        return self._run_delayed(
            state, initial_counts, max_time, stop, record_trace, trace_every, check_every, rng
        )

    # ------------------------------------------------------------------
    # base model: superposed Poisson process, no heap needed
    # ------------------------------------------------------------------
    def _run_instantaneous(self, state, initial_counts, max_time, stop, record_trace, trace_every, check_every, rng):
        n = state.n
        protocol = self.protocol
        topology = self.topology
        trace = Trace() if record_trace else None
        counts = state.counts()
        if trace is not None:
            trace.record(0.0, counts)
        time = 0.0
        next_trace = trace_every
        ticks = 0
        converged = stop(counts)
        batch = 4096
        while not converged and time < max_time:
            # Blocks end on stop-check boundaries (same cadence as the
            # historical per-tick loop); the clock gaps for the whole
            # block come from one exponential draw, the protocol work
            # from one seq_tick_batch call.
            to_check = check_every - ticks % check_every
            block = min(batch, to_check)
            if trace is not None and time < next_trace:
                # End the block near the next trace boundary (expected
                # tick count to reach it) so trace_every is honoured
                # even when check_every is large.
                expected = int((next_trace - time) * n) + 1
                block = min(block, max(1, expected))
            gaps = rng.exponential(1.0 / n, size=block)
            nodes = rng.integers(0, n, size=block)
            tick_times = time + np.cumsum(gaps)
            if tick_times[-1] >= max_time:
                # A tick happening at or after max_time is not applied.
                fits = int(np.searchsorted(tick_times, max_time, side="right"))
                nodes = nodes[:fits]
                time = max_time
            else:
                time = float(tick_times[-1])
            protocol.seq_tick_batch(state, nodes, topology, rng)
            ticks += len(nodes)
            # Trace cadence is independent of the stop-check cadence:
            # trace_every is honoured (to block granularity) even when
            # check_every is large.
            if trace is not None and time >= next_trace:
                trace.record(time, state.counts())
                while next_trace <= time:
                    next_trace += trace_every
            if len(nodes) == block and ticks % check_every == 0:
                counts = state.counts()
                if stop(counts):
                    converged = True
                elif protocol.is_absorbed(state):
                    break
            if time >= max_time:
                break
        counts = state.counts()
        converged = converged or stop(counts)
        if trace is not None:
            trace.record(time, counts)
        return build_result(
            converged=converged,
            initial_counts=initial_counts,
            final_counts=counts,
            rounds=ticks,
            parallel_time=time,
            trace=trace,
            metadata={"engine": "continuous", "protocol": protocol.name, "delay": repr(self.delay_model)},
        )

    # ------------------------------------------------------------------
    # extension model: event queue with read/apply events
    # ------------------------------------------------------------------
    def _run_delayed(self, state, initial_counts, max_time, stop, record_trace, trace_every, check_every, rng):
        n = state.n
        protocol = self.protocol
        topology = self.topology
        trace = Trace() if record_trace else None
        counts = state.counts()
        if trace is not None:
            trace.record(0.0, counts)

        queue = EventQueue()
        for node in range(n):
            queue.push(rng.exponential(1.0), ("tick", node))
        pending: Dict[int, _PendingRequest] = {}
        busy = np.zeros(n, dtype=bool)
        next_request_id = 0

        time = 0.0
        ticks = 0
        events = 0
        next_trace = trace_every
        converged = stop(counts)
        while queue and not converged:
            event_time, payload = queue.pop()
            if event_time >= max_time:
                time = max_time
                break
            time = event_time
            kind = payload[0]
            if kind == "tick":
                node = payload[1]
                queue.push(time + rng.exponential(1.0), ("tick", node))
                ticks += 1
                if not busy[node]:
                    targets = protocol.tick_targets(state, node, topology, rng)
                    if len(targets) == 0:
                        protocol.tick_apply(state, node, np.empty(0, dtype=np.int64))
                    else:
                        request = _PendingRequest(node=node, outstanding=len(targets))
                        request_id = next_request_id
                        next_request_id += 1
                        pending[request_id] = request
                        busy[node] = True
                        for target in targets:
                            delay = self.delay_model.sample(rng)
                            queue.push(time + delay, ("read", request_id, int(target)))
            elif kind == "read":
                request_id, target = payload[1], payload[2]
                request = pending.get(request_id)
                if request is None:
                    continue
                request.observed.append(int(state.colors[target]))
                request.outstanding -= 1
                if request.outstanding == 0:
                    del pending[request_id]
                    busy[request.node] = False
                    protocol.tick_apply(state, request.node, np.asarray(request.observed, dtype=np.int64))
            events += 1
            if events % check_every == 0:
                counts = state.counts()
                if trace is not None and time >= next_trace:
                    trace.record(time, counts)
                    next_trace += trace_every
                if stop(counts):
                    converged = True
        counts = state.counts()
        converged = converged or stop(counts)
        if trace is not None:
            trace.record(time, counts)
        return build_result(
            converged=converged,
            initial_counts=initial_counts,
            final_counts=counts,
            rounds=ticks,
            parallel_time=time,
            trace=trace,
            metadata={"engine": "continuous", "protocol": protocol.name, "delay": repr(self.delay_model)},
        )

"""Exact counts-based synchronous engine for ``K_n``.

On the complete graph with uniform sampling (with replacement), every
node's round behaviour depends on the *colour histogram* only, and the
joint transition of the histogram is a sum of independent per-group
multinomials.  Sampling those multinomials reproduces the agent-based
round law **exactly** — not a mean-field approximation — while costing
O(k) per round instead of O(n).  That is what makes the paper-scale
sweeps (``n`` up to ``10^9``) feasible in Python.

The one modelling difference from the agent engine is self-sampling: the
agent engine excludes the caller from its own sample (neighbours of
``u`` on ``K_n``), so sample probabilities are ``c_j - [own colour]``
over ``n - 1``.  The counts engine accounts for that exactly by using
per-group sampling distributions.
"""

from __future__ import annotations

from typing import Any, Optional, Union

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.results import RunResult, Trace
from ..core.rng import SeedLike, as_generator
from ..protocols.base import CountsProtocol
from .base import StopCondition, build_result, consensus_reached

__all__ = ["CountsEngine"]


class CountsEngine:
    """Round-based driver for exact counts-level protocols on ``K_n``."""

    def __init__(self, protocol: CountsProtocol):
        self.protocol = protocol

    def run(
        self,
        initial: ColorConfiguration,
        max_rounds: int = 1_000_000,
        stop: StopCondition = consensus_reached,
        record_trace: bool = False,
        trace_every: int = 1,
        seed: SeedLike = None,
    ) -> RunResult:
        """Execute rounds until *stop* holds or *max_rounds* is hit."""
        if not isinstance(initial, ColorConfiguration):
            raise ConfigurationError("CountsEngine requires a ColorConfiguration initial state")
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be non-negative, got {max_rounds}")
        rng = as_generator(seed)
        counts_state = self.protocol.init_counts(initial)
        counts = np.asarray(self.protocol.color_counts(counts_state), dtype=np.int64)
        initial_counts = counts.copy()
        trace = Trace() if record_trace else None
        if trace is not None:
            trace.record(0, counts)

        rounds = 0
        converged = stop(counts)
        while not converged and rounds < max_rounds:
            counts_state = self.protocol.step(counts_state, rng)
            rounds += 1
            counts = np.asarray(self.protocol.color_counts(counts_state), dtype=np.int64)
            if trace is not None and rounds % trace_every == 0:
                trace.record(rounds, counts)
            converged = stop(counts)
            if not converged and self.protocol.is_absorbed(counts_state):
                break
        if trace is not None and rounds % trace_every != 0:
            trace.record(rounds, counts)

        return build_result(
            converged=converged,
            initial_counts=initial_counts,
            final_counts=counts,
            rounds=rounds,
            parallel_time=float(rounds),
            trace=trace,
            metadata={"engine": "counts", "protocol": self.protocol.name},
        )

"""Execution engines: synchronous, counts-exact, sequential, continuous."""

from .base import (
    StopCondition,
    build_result,
    consensus_reached,
    near_consensus,
    plurality_fraction_at_least,
)
from .continuous import ContinuousEngine
from .counts import CountsEngine
from .delays import DelayModel, ExponentialDelay, FixedDelay, NoDelay
from .events import EventQueue
from .sequential import SequentialEngine
from .synchronous import SynchronousEngine

__all__ = [
    "StopCondition",
    "build_result",
    "consensus_reached",
    "near_consensus",
    "plurality_fraction_at_least",
    "ContinuousEngine",
    "CountsEngine",
    "DelayModel",
    "ExponentialDelay",
    "FixedDelay",
    "NoDelay",
    "EventQueue",
    "SequentialEngine",
    "SynchronousEngine",
]

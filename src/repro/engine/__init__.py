"""Execution engines: synchronous, counts-exact, sequential, continuous."""

from .base import (
    StopCondition,
    build_result,
    consensus_reached,
    near_consensus,
    plurality_fraction_at_least,
)
from .continuous import ContinuousEngine
from .counts import CountsEngine
from .counts_async import CountsContinuousEngine, CountsSequentialEngine
from .delays import DelayModel, ExponentialDelay, FixedDelay, NoDelay
from .dispatch import fastest_engine
from .ensemble import (
    EnsembleCountsContinuousEngine,
    EnsembleCountsEngine,
    EnsembleCountsSequentialEngine,
    run_replicated,
)
from .events import EventQueue
from .sequential import SequentialEngine
from .sparse_async import SparseContinuousEngine, SparseSequentialEngine
from .synchronous import SynchronousEngine

__all__ = [
    "StopCondition",
    "build_result",
    "consensus_reached",
    "near_consensus",
    "plurality_fraction_at_least",
    "ContinuousEngine",
    "CountsContinuousEngine",
    "CountsEngine",
    "CountsSequentialEngine",
    "DelayModel",
    "ExponentialDelay",
    "FixedDelay",
    "NoDelay",
    "EnsembleCountsContinuousEngine",
    "EnsembleCountsEngine",
    "EnsembleCountsSequentialEngine",
    "run_replicated",
    "EventQueue",
    "SequentialEngine",
    "SparseContinuousEngine",
    "SparseSequentialEngine",
    "SynchronousEngine",
    "fastest_engine",
]

"""Batched counts-level engines for the *asynchronous* models on ``K_n``.

The paper's headline theorems live in the sequential / Poisson-clock
model, yet simulating that model one tick at a time costs O(1) Python
work per tick — ``Theta(n log n)`` ticks per run — which caps agent-level
sweeps around ``n ~ 10^5``.  On the complete graph, however, a tick's
conditional law given the colour histogram ``c`` factors exactly:

1. the acting node carries label ``i`` with probability ``c_i / n``;
2. given ``i``, it ends the tick with label ``j`` with probability
   ``P[i, j](c)`` (the protocol's
   :meth:`~repro.protocols.base.SequentialCountsProtocol.tick_transition_matrix`).

:class:`CountsSequentialEngine` advances that histogram chain in
*batches* of ``B`` ticks: the batch's acting-node labels come from one
multinomial over ``c / n``, and each label class's outcomes from one
multinomial over its transition row — O(k^2) numpy work per batch
instead of O(B) Python work.

Batch exactness
---------------
With ``B = 1`` the batch *is* the exact single-tick chain: the actor
label is drawn from ``c / n`` and its outcome from ``P[i]``, which is
the factorisation above.  For ``B > 1`` the batch freezes the rates at
the batch-start histogram, while the true chain lets every tick see the
updates of the ticks before it.  Within a batch the histogram moves by
at most ``B`` units, so each per-tick probability drifts by ``O(B / n)``
and the batch law agrees with the tick chain up to a relative error of
order ``B / n`` — the engine's default ``B = n * batch_fraction`` with
``batch_fraction = 1/256`` keeps that error around 0.4%, far below the
run-to-run noise of any convergence-time statistic (the cross-engine KS
tests in ``tests/test_counts_async.py`` verify the agreement
distributionally, and exactly at ``B = 1``).  Two guard rails keep the
frozen-rate draw lawful:

* a batch that would overdraw a small label class (``c_i - out_i +
  in_i < 0`` for some ``i``) is discarded and re-drawn as two half
  batches with refreshed rates, recursing down to the always-valid
  ``B = 1``;
* stop conditions are still checked on the same ``check_every`` tick
  cadence as :class:`~repro.engine.sequential.SequentialEngine`, so
  recorded convergence times are quantised identically across engines.

Because the number of batches per run is ``~ 256 * parallel_time``
*independent of n*, asynchronous Two-Choices at ``n = 10^8`` converges
in seconds (see ``benchmarks/bench_perf_engines.py``).

:class:`CountsContinuousEngine` is the Poisson-clock twin: the wall
clock advanced by ``B`` ticks is ``Gamma(B) / n`` — the sum of ``B``
i.i.d. ``Exp(n)`` superposition gaps — drawn exactly per batch, so its
``parallel_time`` is continuous like
:class:`~repro.engine.continuous.ContinuousEngine`'s.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.results import RunResult, Trace
from ..core.rng import SeedLike, as_generator
from ..protocols.base import SequentialCountsProtocol
from .base import StopCondition, build_result, consensus_reached

__all__ = ["CountsSequentialEngine", "CountsContinuousEngine"]

#: default batch size as a fraction of n (see the exactness note above).
_DEFAULT_BATCH_FRACTION = 1.0 / 256.0


def _draw_batch(
    protocol: SequentialCountsProtocol,
    counts: np.ndarray,
    b: int,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Advance the histogram by *b* ticks (frozen-rate batch draw).

    Exact for ``b == 1``; for larger *b* the rates are frozen at the
    batch start (error ``O(b / n)``, see the module docstring).  A draw
    that would leave a label class negative is re-drawn as two half
    batches with refreshed rates — ``b == 1`` can never overdraw, so
    the recursion terminates.
    """
    transition = np.asarray(protocol.tick_transition_matrix(counts), dtype=float)
    empty = np.flatnonzero(counts == 0)
    if empty.size:
        # Empty classes never act, but every row must still be a valid
        # probability vector for the batched multinomial call.
        transition[empty] = 0.0
        transition[empty, empty] = 1.0
    actors = rng.multinomial(b, counts / n)
    moved = rng.multinomial(actors, transition)
    new_counts = counts - actors + moved.sum(axis=0)
    if new_counts.min() >= 0:
        return new_counts
    half = b // 2
    new_counts = _draw_batch(protocol, counts, half, n, rng)
    return _draw_batch(protocol, new_counts, b - half, n, rng)


class _CountsTickEngine:
    """Shared run loop of the batched tick engines.

    Subclasses define how wall-clock ``parallel_time`` relates to the
    tick count (deterministic ``ticks / n`` for the sequential model,
    ``Gamma(ticks) / n`` for the Poisson-clock model).
    """

    _engine_name = "counts-tick"

    def __init__(
        self,
        protocol: SequentialCountsProtocol,
        batch_ticks: Optional[int] = None,
        batch_fraction: float = _DEFAULT_BATCH_FRACTION,
    ):
        if batch_ticks is not None and batch_ticks < 1:
            raise ConfigurationError(f"batch_ticks must be positive, got {batch_ticks}")
        if not 0.0 < batch_fraction <= 1.0:
            raise ConfigurationError(f"batch_fraction must be in (0, 1], got {batch_fraction}")
        self.protocol = protocol
        self.batch_ticks = batch_ticks
        self.batch_fraction = batch_fraction

    def _resolve_batch(self, n: int) -> int:
        if self.batch_ticks is not None:
            return self.batch_ticks
        return max(1, int(round(n * self.batch_fraction)))

    def _advance_clock(self, time: float, total_ticks: int, b: int, rng: np.random.Generator, n: int) -> float:
        """New wall-clock time after a batch of *b* ticks.

        *total_ticks* is the tick count including the batch; the
        sequential clock derives from it exactly so recorded parallel
        times land on the same float grid as the agent engines'
        (``ticks / n``), keeping cross-engine samples comparable
        value-for-value.
        """
        raise NotImplementedError

    def _run(
        self,
        initial: ColorConfiguration,
        max_ticks: Optional[int],
        max_time: Optional[float],
        stop: StopCondition,
        record_trace: bool,
        trace_every_parallel: float,
        check_every: Optional[int],
        seed: SeedLike,
    ) -> RunResult:
        """Run batched ticks until *stop* holds or a budget runs out.

        The initial state must be a :class:`ColorConfiguration` — the
        engine never materialises per-node colours.  ``rounds`` in the
        result is the tick count.
        """
        if not isinstance(initial, ColorConfiguration):
            raise ConfigurationError(f"{type(self).__name__} requires a ColorConfiguration initial state")
        rng = as_generator(seed)
        n = initial.n
        if n < 2:
            raise ConfigurationError("counts tick engines need at least 2 nodes")
        if max_ticks is None:
            max_ticks = int(50 * n * max(np.log(n), 1.0))
        if max_time is None:
            max_time = float("inf")
        if check_every is None:
            check_every = n
        check_every = max(1, int(check_every))
        batch = self._resolve_batch(n)

        protocol = self.protocol
        counts_state = np.asarray(protocol.init_counts(initial), dtype=np.int64)
        counts = np.asarray(protocol.color_counts(counts_state), dtype=np.int64)
        initial_counts = counts.copy()
        trace = Trace() if record_trace else None
        trace_interval = max(1, int(trace_every_parallel * n))

        time = 0.0
        ticks = 0
        next_check = check_every
        next_trace = trace_interval
        if trace is not None:
            trace.record(0.0, counts)
        converged = stop(counts)
        while not converged and ticks < max_ticks and time < max_time:
            b = min(batch, max_ticks - ticks, next_check - ticks)
            counts_state = _draw_batch(protocol, counts_state, b, n, rng)
            ticks += b
            time = self._advance_clock(time, ticks, b, rng, n)
            if trace is not None and ticks >= next_trace:
                counts = np.asarray(protocol.color_counts(counts_state), dtype=np.int64)
                trace.record(time, counts)
                while next_trace <= ticks:
                    next_trace += trace_interval
            if ticks >= next_check:
                next_check += check_every
                counts = np.asarray(protocol.color_counts(counts_state), dtype=np.int64)
                converged = stop(counts)
                if not converged and protocol.is_absorbed(counts_state):
                    break
        counts = np.asarray(protocol.color_counts(counts_state), dtype=np.int64)
        converged = converged or stop(counts)
        if trace is not None:
            trace.record(time, counts)

        return build_result(
            converged=converged,
            initial_counts=initial_counts,
            final_counts=counts,
            rounds=ticks,
            parallel_time=time,
            trace=trace,
            metadata={
                "engine": self._engine_name,
                "protocol": protocol.name,
                "batch_ticks": batch,
            },
        )


class CountsSequentialEngine(_CountsTickEngine):
    """Batched counts-level driver for the sequential model on ``K_n``.

    Parallel time is ``ticks / n``, exactly as in
    :class:`~repro.engine.sequential.SequentialEngine`, whose ``run``
    signature this mirrors so the dispatcher can swap one for the
    other.
    """

    _engine_name = "counts-sequential"

    def _advance_clock(self, time: float, total_ticks: int, b: int, rng: np.random.Generator, n: int) -> float:
        return total_ticks / n

    def run(
        self,
        initial: ColorConfiguration,
        max_ticks: Optional[int] = None,
        stop: StopCondition = consensus_reached,
        record_trace: bool = False,
        trace_every_parallel: float = 1.0,
        check_every: Optional[int] = None,
        seed: SeedLike = None,
    ) -> RunResult:
        """Run until *stop* holds or *max_ticks* is exhausted
        (parameters mirror :class:`~repro.engine.sequential.SequentialEngine`)."""
        return self._run(
            initial, max_ticks, None, stop, record_trace, trace_every_parallel, check_every, seed
        )


class CountsContinuousEngine(_CountsTickEngine):
    """Batched counts-level driver for the Poisson-clock model on ``K_n``.

    By the superposition property, consecutive system ticks are
    ``Exp(n)`` apart, so the clock advance over a batch of ``B`` ticks
    is exactly ``Gamma(B) / n`` — drawn in one RNG call per batch.  The
    tick *sequence* itself has the same law as the sequential model's,
    so this engine shares its batch machinery and differs only in the
    reported ``parallel_time``.
    """

    _engine_name = "counts-continuous"

    def _advance_clock(self, time: float, total_ticks: int, b: int, rng: np.random.Generator, n: int) -> float:
        return time + float(rng.gamma(b)) / n

    def run(
        self,
        initial: ColorConfiguration,
        max_time: Optional[float] = None,
        stop: StopCondition = consensus_reached,
        record_trace: bool = False,
        trace_every: float = 1.0,
        check_every: Optional[int] = None,
        seed: SeedLike = None,
    ) -> RunResult:
        """Run until *stop* holds or continuous time *max_time* passes
        (parameters mirror :class:`~repro.engine.continuous.ContinuousEngine`,
        so the dispatcher can swap one for the other).  The default
        time budget is ``50 ln n`` like the reference engine's; trace
        points land on tick-grid crossings of *trace_every*.
        """
        if max_time is None:
            n = initial.n if isinstance(initial, ColorConfiguration) else 2
            max_time = 50.0 * max(np.log(n), 1.0)
        return self._run(initial, None, max_time, stop, record_trace, trace_every, check_every, seed)

"""A tiny stable event queue for the continuous-time engine.

Wraps :mod:`heapq` with a monotone sequence number so that events with
equal timestamps pop in insertion order (stability matters for
reproducibility across platforms) and payloads never participate in
comparisons.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Optional, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of ``(time, payload)`` events with stable ordering."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()

    def push(self, time: float, payload: Any) -> None:
        """Schedule *payload* at *time* (must be finite and >= 0)."""
        heapq.heappush(self._heap, (float(time), next(self._counter), payload))

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)`` pair."""
        time, _seq, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

"""Engine selection: route a (protocol, topology, model) onto the
fastest engine that simulates it *exactly*.

The repo grew one engine per execution model (synchronous rounds,
sequential ticks, Poisson clocks) plus counts-level fast paths that are
only valid on ``K_n``.  :func:`fastest_engine` encodes the routing
table so benchmarks, the CLI and library users pick up new fast paths
automatically instead of hard-coding engine classes:

==================  =======================  ===============================
model               on ``K_n``               elsewhere / with delays
==================  =======================  ===============================
``"synchronous"``   CountsEngine (counts     SynchronousEngine
                    protocols) else
                    SynchronousEngine
``"sequential"``    CountsSequentialEngine   SequentialEngine
                    when the protocol has a
                    counts-level tick law
``"continuous"``    CountsContinuousEngine   ContinuousEngine (always used
                    when zero-delay and a    when a delay model is given)
                    counts-level tick law
==================  =======================  ===============================

Every returned engine draws from the *same law* as the engine it
replaces (see the exactness notes in :mod:`repro.engine.counts_async`),
so swapping in :func:`fastest_engine` changes wall-clock time only.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.exceptions import ConfigurationError
from ..graphs.topology import Topology
from ..protocols.base import (
    CountsProtocol,
    SequentialCountsProtocol,
    SequentialProtocol,
    SynchronousProtocol,
)
from .continuous import ContinuousEngine
from .counts import CountsEngine
from .counts_async import CountsContinuousEngine, CountsSequentialEngine
from .delays import DelayModel
from .sequential import SequentialEngine
from .synchronous import SynchronousEngine

__all__ = ["fastest_engine"]

AnyProtocol = Union[SynchronousProtocol, CountsProtocol, SequentialProtocol, SequentialCountsProtocol]


def fastest_engine(
    protocol: AnyProtocol,
    topology: Topology,
    model: str = "sequential",
    delay_model: Optional[DelayModel] = None,
):
    """Build the fastest exact engine for *protocol* on *topology*.

    Parameters
    ----------
    protocol:
        Any protocol object of the four interface families.
    topology:
        Where the protocol runs; counts-level fast paths require
        ``topology.is_complete()``.
    model:
        ``"sequential"`` (tick-based asynchronous, the default),
        ``"continuous"`` (Poisson clocks) or ``"synchronous"``
        (round-based).
    delay_model:
        Response delays for the continuous model; a non-zero delay
        model forces the event-queue engine.

    Returns
    -------
    An engine instance whose ``run(initial, ..., seed=...)`` draws from
    the same law as the reference engine for *model*.  Counts-level
    engines require a :class:`~repro.core.colors.ColorConfiguration`
    initial state.
    """
    on_complete = topology.is_complete()

    if model == "synchronous":
        if delay_model is not None and not delay_model.is_zero():
            raise ConfigurationError("delay models only apply to the continuous model")
        if isinstance(protocol, CountsProtocol):
            if not on_complete:
                raise ConfigurationError(f"{protocol.name} is counts-level and needs K_n")
            return CountsEngine(protocol)
        if isinstance(protocol, SynchronousProtocol):
            return SynchronousEngine(protocol, topology)
        raise ConfigurationError(f"{protocol.name} does not implement the synchronous model")

    if model not in ("sequential", "continuous"):
        raise ConfigurationError(
            f"unknown model {model!r}; expected 'sequential', 'continuous' or 'synchronous'"
        )

    zero_delay = delay_model is None or delay_model.is_zero()
    if model == "sequential" and not zero_delay:
        raise ConfigurationError("response delays require the continuous model")
    counts_engine_cls = CountsSequentialEngine if model == "sequential" else CountsContinuousEngine

    if isinstance(protocol, SequentialCountsProtocol):
        if not on_complete:
            raise ConfigurationError(f"{protocol.name} is counts-level and needs K_n")
        if not zero_delay:
            raise ConfigurationError("counts-level tick protocols cannot simulate response delays")
        return counts_engine_cls(protocol)

    if not isinstance(protocol, SequentialProtocol):
        raise ConfigurationError(f"{protocol.name} does not implement the {model} model")

    if zero_delay and on_complete:
        companion = protocol.as_sequential_counts()
        if companion is not None:
            return counts_engine_cls(companion)

    if model == "continuous":
        return ContinuousEngine(protocol, topology, delay_model=delay_model)
    return SequentialEngine(protocol, topology)

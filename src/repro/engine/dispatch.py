"""Engine selection: route a (protocol, topology, model) onto the
fastest engine that simulates it *exactly*.

The repo grew one engine per execution model (synchronous rounds,
sequential ticks, Poisson clocks) plus counts-level fast paths that are
only valid on ``K_n``.  :func:`fastest_engine` encodes the routing
table so benchmarks, the CLI and library users pick up new fast paths
automatically instead of hard-coding engine classes:

==================  =======================  ===============================
model               on ``K_n``               elsewhere / with delays
==================  =======================  ===============================
``"synchronous"``   CountsEngine (counts     SynchronousEngine
                    protocols) else
                    SynchronousEngine
``"sequential"``    CountsSequentialEngine   footprint protocols: Sparse-
                    when the protocol has a  SequentialEngine from
                    counts-level tick law    ``n >= 30_000``, the zip-apply
                                             SequentialEngine below (see the
                                             crossover note); else
                                             SequentialEngine
``"continuous"``    CountsContinuousEngine   zero-delay: SparseContinuous-
                    when zero-delay and a    Engine when a tick footprint is
                    counts-level tick law    declared, else ContinuousEngine;
                                             a real delay model always forces
                                             ContinuousEngine
==================  =======================  ===============================

Crossover note (sequential model, off ``K_n``)
    The hazard-batched sparse engine amortises its per-block scan work
    over ``~sqrt(n)``-wide chunks, so it wins for large ``n`` (1.4x at
    ``n = 10^5`` on a torus) but *loses* to the fixed-batch zip-apply
    hooks path in the mixed phase at ``n ~ 10^4`` (0.77x, BENCH_sparse)
    — blocks are too short to amortise.  ``fastest_engine`` therefore
    routes by size: :data:`SPARSE_SEQUENTIAL_CROSSOVER` (30k nodes) and
    up go to the sparse engine, below stays on
    :class:`~repro.engine.sequential.SequentialEngine`.  A compiled
    tick kernel (``REPRO_KERNEL`` — :mod:`repro.core.hazard_kernel`)
    accelerates *both* routes through the shared
    :func:`~repro.core.hazard.apply_hazard_free` entry point, and both
    engines remain law-exact, so the crossover only tunes the numpy
    fallback's constant factors.  The continuous model keeps the sparse
    engine at every ``n``: its alternative is the per-event queue of
    :class:`~repro.engine.continuous.ContinuousEngine`, which is slower
    at any size.

The ensemble rows accept a ``backend=`` parameter (forwarded to the
:mod:`repro.engine.ensemble` constructors) selecting the count-array
backend of :mod:`repro.core.backend`; the default follows
``REPRO_BACKEND`` (numpy unless overridden).

When *n_reps* asks for more than one replication, the counts-level
rows of the table are additionally lifted to their ensemble twins
(:mod:`repro.engine.ensemble`), which advance all replications per
numpy batch and expose ``run_ensemble`` instead of ``run``; rows with
no exact ensemble form return the single-run engine and the caller
loops (see :func:`repro.engine.ensemble.run_replicated`).

Every returned engine draws from the *same law* as the engine it
replaces (see the exactness notes in :mod:`repro.engine.counts_async`
and :mod:`repro.engine.ensemble`), so swapping in
:func:`fastest_engine` changes wall-clock time only.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.backend import ArrayBackend
from ..core.exceptions import ConfigurationError
from ..graphs.topology import DynamicTopology, Topology
from ..protocols.base import (
    CountsProtocol,
    EnsembleCountsProtocol,
    SequentialCountsProtocol,
    SequentialProtocol,
    SynchronousProtocol,
)
from .continuous import ContinuousEngine
from .counts import CountsEngine
from .counts_async import CountsContinuousEngine, CountsSequentialEngine
from .delays import DelayModel
from .ensemble import (
    EnsembleCountsContinuousEngine,
    EnsembleCountsEngine,
    EnsembleCountsSequentialEngine,
)
from .sequential import SequentialEngine
from .sparse_async import SparseContinuousEngine, SparseSequentialEngine
from .synchronous import SynchronousEngine

__all__ = ["fastest_engine", "SPARSE_SEQUENTIAL_CROSSOVER"]

AnyProtocol = Union[SynchronousProtocol, CountsProtocol, SequentialProtocol, SequentialCountsProtocol]

#: node count from which the hazard-batched sparse engine beats the
#: zip-apply hooks path in the sequential model (see the crossover note
#: above; calibrated by benchmarks/bench_sparse.py's mixed-phase rows).
SPARSE_SEQUENTIAL_CROSSOVER = 30_000


def fastest_engine(
    protocol: AnyProtocol,
    topology: Topology,
    model: str = "sequential",
    delay_model: Optional[DelayModel] = None,
    n_reps: int = 1,
    backend: Union[None, str, ArrayBackend] = None,
):
    """Build the fastest exact engine for *protocol* on *topology*.

    Parameters
    ----------
    protocol:
        Any protocol object of the four interface families.
    topology:
        Where the protocol runs; counts-level fast paths require
        ``topology.is_complete()``.
    model:
        ``"sequential"`` (tick-based asynchronous, the default),
        ``"continuous"`` (Poisson clocks) or ``"synchronous"``
        (round-based).
    delay_model:
        Response delays for the continuous model; a non-zero delay
        model forces the event-queue engine.
    n_reps:
        How many independent replications the caller wants.  With
        ``n_reps > 1`` the counts-level routes return the
        ensemble-vectorised engines (``run_ensemble`` instead of
        ``run``) when an exact ensemble form exists; otherwise the
        single-run engine is returned and the caller loops — use
        :func:`repro.engine.ensemble.run_replicated` to not care which.
    backend:
        Count-array backend for the ensemble engines (a name, an
        :class:`~repro.core.backend.ArrayBackend`, or ``None`` for the
        ``REPRO_BACKEND`` selection).  Ignored by non-ensemble routes,
        which have no ``(R, k)`` count matrices.

    Returns
    -------
    An engine instance whose ``run(initial, ..., seed=...)`` (or
    ``run_ensemble(initial, n_reps, ..., seed=...)``) draws each
    replication from the same law as the reference engine for *model*.
    Counts-level engines require a
    :class:`~repro.core.colors.ColorConfiguration` initial state.
    """
    if n_reps < 1:
        raise ConfigurationError(f"n_reps must be positive, got {n_reps}")
    if isinstance(topology, DynamicTopology) and model != "sequential":
        # The epoch clock is defined in sequential ticks; neither the
        # round-based nor the Poisson-clock engines cut their work at
        # epoch boundaries, so routing them would silently break the
        # constant-graph-per-block exactness contract.
        raise ConfigurationError(
            f"dynamic topologies advance on a tick-epoch clock; the {model!r} "
            "model is not supported (use model='sequential')"
        )
    ensemble = n_reps > 1
    on_complete = topology.is_complete()

    if model == "synchronous":
        if delay_model is not None and not delay_model.is_zero():
            raise ConfigurationError("delay models only apply to the continuous model")
        if isinstance(protocol, CountsProtocol):
            if not on_complete:
                raise ConfigurationError(f"{protocol.name} is counts-level and needs K_n")
            if ensemble and isinstance(protocol, EnsembleCountsProtocol):
                return EnsembleCountsEngine(protocol, backend=backend)
            return CountsEngine(protocol)
        if isinstance(protocol, SynchronousProtocol):
            return SynchronousEngine(protocol, topology)
        raise ConfigurationError(f"{protocol.name} does not implement the synchronous model")

    if model not in ("sequential", "continuous"):
        raise ConfigurationError(
            f"unknown model {model!r}; expected 'sequential', 'continuous' or 'synchronous'"
        )

    zero_delay = delay_model is None or delay_model.is_zero()
    if model == "sequential" and not zero_delay:
        raise ConfigurationError("response delays require the continuous model")
    if ensemble:
        ensemble_cls = (
            EnsembleCountsSequentialEngine if model == "sequential" else EnsembleCountsContinuousEngine
        )

        def counts_engine(p):
            return ensemble_cls(p, backend=backend)

    else:
        single_cls = CountsSequentialEngine if model == "sequential" else CountsContinuousEngine

        def counts_engine(p):
            return single_cls(p)

    if isinstance(protocol, SequentialCountsProtocol):
        if not on_complete:
            raise ConfigurationError(f"{protocol.name} is counts-level and needs K_n")
        if not zero_delay:
            raise ConfigurationError("counts-level tick protocols cannot simulate response delays")
        return counts_engine(protocol)

    if not isinstance(protocol, SequentialProtocol):
        raise ConfigurationError(f"{protocol.name} does not implement the {model} model")

    if zero_delay and on_complete:
        companion = protocol.as_sequential_counts()
        if companion is not None:
            return counts_engine(companion)

    footprint = protocol.tick_footprint
    if zero_delay and not on_complete and footprint is not None and footprint.writes_self_only:
        # Off K_n with presampleable self-writing ticks: the hazard-
        # batched engines (law-exact, see repro.engine.sparse_async).
        # They have no ensemble form; run_replicated reuses their
        # scratch buffers across replications.
        if model == "continuous":
            return SparseContinuousEngine(protocol, topology)
        if topology.n >= SPARSE_SEQUENTIAL_CROSSOVER:
            return SparseSequentialEngine(protocol, topology)
        # Below the crossover the zip-apply hooks path is faster in the
        # mixed phase (see the crossover note above); it shares the
        # hazard/kernel core, so exactness is unaffected.

    if model == "continuous":
        return ContinuousEngine(protocol, topology, delay_model=delay_model)
    return SequentialEngine(protocol, topology)

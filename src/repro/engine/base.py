"""Shared engine plumbing: stop conditions and run assembly.

Engines advance a protocol until a *stop condition* holds or a step
budget runs out.  The default condition is consensus (the event all the
paper's run-time theorems are about); :func:`near_consensus` expresses
the part-one goal of the asynchronous protocol (``c1 >= (1-eps) n``).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..api.registry import ParamSpec, register_stop
from ..core.colors import ColorConfiguration, assignment_from_counts
from ..core.exceptions import ConfigurationError
from ..core.results import RunResult, Trace

__all__ = [
    "materialize_initial",
    "StopCondition",
    "consensus_reached",
    "near_consensus",
    "plurality_fraction_at_least",
    "build_result",
]

#: A stop condition maps a colour-counts vector to "stop now?".
StopCondition = Callable[[np.ndarray], bool]


def materialize_initial(initial, rng: np.random.Generator):
    """Colour array + colour count for an engine's *initial* argument.

    A :class:`~repro.core.colors.ColorConfiguration` becomes a uniformly
    random node assignment with its counts (one RNG shuffle); an
    explicit colour array is validated and passed through with ``k``
    inferred from its largest label.  Shared by every agent-level
    engine so the two accepted initial-state forms cannot drift apart.
    """
    if isinstance(initial, ColorConfiguration):
        colors = assignment_from_counts(initial, rng=rng)
        return colors, initial.k
    colors = np.asarray(initial, dtype=np.int64)
    if colors.ndim != 1 or colors.size == 0:
        raise ConfigurationError("explicit colour arrays must be non-empty and 1-D")
    return colors, int(colors.max()) + 1


def consensus_reached(counts: np.ndarray) -> bool:
    """Stop when one colour holds every node."""
    return int(counts.max()) == int(counts.sum())


def near_consensus(epsilon: float) -> StopCondition:
    """Stop once the largest colour reaches ``(1 - epsilon) * n``.

    This is the paper's part-one goal for the asynchronous protocol
    (Section 3.1): grow ``c1`` to at least ``(1 - eps) n`` and hand over
    to the endgame.
    """
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")

    def condition(counts: np.ndarray) -> bool:
        return int(counts.max()) >= (1.0 - epsilon) * int(counts.sum())

    return condition


def plurality_fraction_at_least(fraction: float) -> StopCondition:
    """Stop once the plurality colour's share reaches *fraction*."""
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")

    def condition(counts: np.ndarray) -> bool:
        return int(counts.max()) >= fraction * int(counts.sum())

    return condition


register_stop(
    "consensus",
    lambda: consensus_reached,
    description="Stop when one colour holds every node (the theorems' event)",
)
register_stop(
    "near-consensus",
    near_consensus,
    params=[ParamSpec("epsilon", kind="float", required=True, doc="stop at c1 >= (1 - epsilon) n")],
    description="Stop once the largest colour reaches (1 - epsilon) n (part-one goal)",
)
register_stop(
    "plurality-fraction",
    plurality_fraction_at_least,
    params=[ParamSpec("fraction", kind="float", required=True, doc="stop at c1 >= fraction * n")],
    description="Stop once the plurality colour's share reaches the given fraction",
)


def build_result(
    converged: bool,
    initial_counts: np.ndarray,
    final_counts: np.ndarray,
    rounds: int,
    parallel_time: float,
    trace: Optional[Trace] = None,
    metadata: Optional[dict] = None,
) -> RunResult:
    """Assemble a :class:`RunResult`, deriving the winner from the counts.

    ``winner`` is reported whenever the run stopped with a *unique*
    plurality colour, even if the stop condition was weaker than full
    consensus; callers that require strict consensus should check
    ``result.final.is_consensus()``.
    """
    final = ColorConfiguration(np.asarray(final_counts, dtype=np.int64).tolist())
    initial = ColorConfiguration(np.asarray(initial_counts, dtype=np.int64).tolist())
    winner = final.plurality if converged and final.has_unique_plurality() else None
    return RunResult(
        converged=converged,
        winner=winner,
        rounds=int(rounds),
        parallel_time=float(parallel_time),
        initial=initial,
        final=final,
        trace=trace,
        metadata=metadata or {},
    )

"""Ensemble-vectorised counts engines: R replications per numpy batch.

Every paper experiment estimates a *distribution* of convergence times,
so the unit of work is not one run but R independent replications of
one run.  PR 1 made a single counts-level run fast; the replication
loop around it then dominates every sweep, because each of its ~256
batches per unit parallel time is a handful of numpy calls on O(k)
data — pure Python overhead.  The engines here amortise that overhead
across the whole ensemble: the state is an ``(R, m)`` matrix of label
histograms, one batch advances *every still-running replication* with
the same number of numpy calls a single run would spend, and the numpy
calls are stacked multinomials whose rows are drawn independently.

Exactness contract
------------------
Each replication's marginal law is *identical* to the corresponding
single-run engine — not merely close:

* row ``r`` of every stacked ``Generator.multinomial`` /
  ``binomial`` / ``gamma`` call is an independent draw from exactly the
  distribution the single-run engine would use for that replication's
  state, and
* with ``R == 1`` the whole call sequence collapses to the single-run
  engine's call sequence (numpy draws stacked arguments row by row, so
  a one-row call is bit-identical to the scalar call), making a
  one-replication ensemble reproduce ``CountsEngine`` /
  ``CountsSequentialEngine`` / ``CountsContinuousEngine`` results
  value-for-value from a shared seed.  ``tests/test_ensemble.py``
  enforces both clauses.

The grid invariants of the single-run tick engines carry over
unchanged: sequential parallel time is exactly ``ticks / n`` (the same
float grid as :class:`~repro.engine.sequential.SequentialEngine`), and
stop conditions are evaluated on the ``check_every = n`` tick grid.

Array backends
--------------
The ``(R, m)`` count-matrix operations run through a pluggable
:class:`~repro.core.backend.ArrayBackend` (constructor parameter
``backend=``, default the ``REPRO_BACKEND`` environment selection).
The numpy backend is a pass-through — every method aliases the exact
numpy call these engines always made, so the exactness contract above
is untouched.  The CuPy backend keeps the matrices device-resident
while drawing variates from the same host generator stream, preserving
each replication's law but not bitwise equality (float reductions
reorder on device); ``tests/test_backend.py`` pins both claims.

Masking and compaction
----------------------
Replications finish at different times.  A replication is *retired* —
its :class:`~repro.core.results.RunResult` is recorded and its row is
compacted out of the state matrix — as soon as its stop condition
holds at a grid check, it reaches an absorbing non-stop state, or its
tick/time/round budget runs out.  The active set therefore shrinks as
the ensemble drains, and the per-batch cost falls with it; the engine
returns when the last replication retires.  All replications advance
in lockstep on the shared tick grid (they run the same protocol on the
same ``n``), which is what makes one stacked draw per batch possible.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..core.backend import ArrayBackend, resolve_backend
from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.results import RunResult
from ..core.rng import SeedLike, as_generator, spawn_seed_sequences, split
from ..protocols.base import EnsembleCountsProtocol, SequentialCountsProtocol
from .base import StopCondition, build_result, consensus_reached
from .counts_async import _DEFAULT_BATCH_FRACTION

__all__ = [
    "EnsembleCountsEngine",
    "EnsembleCountsSequentialEngine",
    "EnsembleCountsContinuousEngine",
    "run_replicated",
]


def _stop_flags(stop: StopCondition, counts: np.ndarray) -> np.ndarray:
    """Evaluate a (scalar) stop condition on every row of *counts*."""
    return np.fromiter((bool(stop(row)) for row in counts), dtype=bool, count=len(counts))


def _draw_batch_ensemble(
    protocol: SequentialCountsProtocol,
    states,
    b: int,
    n: int,
    rng: np.random.Generator,
    backend: ArrayBackend,
) -> np.ndarray:
    """Advance every row of *states* by *b* ticks (frozen-rate batches).

    The ensemble twin of :func:`repro.engine.counts_async._draw_batch`:
    actor labels come from one stacked multinomial over the rows'
    ``c / n`` distributions, outcomes from one stacked multinomial over
    the rows' transition matrices.  Rows that would overdraw a small
    label class are re-drawn as two half batches with refreshed rates
    (recursing on the offending subset only, down to the always-valid
    ``b == 1``); with one row the call sequence is exactly the
    single-run helper's.

    *states* lives in *backend* arrays; the transition matrices come
    from the host-side protocol hook and the variates from the host
    generator either way (see :mod:`repro.core.backend`), so the numpy
    backend reproduces the historical call sequence verbatim.
    """
    host_states = backend.to_host(states)
    transition = np.asarray(protocol.tick_transition_matrices(host_states), dtype=float)
    empty = host_states == 0
    if empty.any():
        # Empty classes never act, but every row of every slice must
        # still be a valid probability vector for the stacked draw.
        transition[empty] = 0.0
        rows, labels = np.nonzero(empty)
        transition[rows, labels, labels] = 1.0
    actors = backend.multinomial(rng, b, host_states / n)
    moved = backend.multinomial(rng, actors, backend.asarray(transition))
    new_states = states - actors + moved.sum(axis=1)
    bad = backend.to_host(new_states.min(axis=1) < 0)
    if not bad.any():
        return new_states
    half = b // 2
    keep_bad = backend.asarray(bad)
    redo = _draw_batch_ensemble(protocol, states[keep_bad], half, n, rng, backend)
    new_states[keep_bad] = _draw_batch_ensemble(protocol, redo, b - half, n, rng, backend)
    return new_states


class EnsembleCountsEngine:
    """Round-based ensemble driver for ``K_n`` counts protocols.

    Advances R independent replications of
    :class:`~repro.engine.counts.CountsEngine`'s chain in lockstep, one
    synchronous round per step for every active replication, through
    the protocol's :meth:`~repro.protocols.base.EnsembleCountsProtocol.step_ensemble`
    hook.
    """

    def __init__(
        self,
        protocol: EnsembleCountsProtocol,
        backend: Union[None, str, ArrayBackend] = None,
    ):
        if not isinstance(protocol, EnsembleCountsProtocol):
            raise ConfigurationError(
                f"{getattr(protocol, 'name', protocol)!r} has no ensemble round hooks"
            )
        self.protocol = protocol
        self.backend = resolve_backend(backend)

    def run_ensemble(
        self,
        initial: ColorConfiguration,
        n_reps: int,
        max_rounds: int = 1_000_000,
        stop: StopCondition = consensus_reached,
        seed: SeedLike = None,
    ) -> List[RunResult]:
        """Run *n_reps* replications to completion; results in rep order."""
        if not isinstance(initial, ColorConfiguration):
            raise ConfigurationError("EnsembleCountsEngine requires a ColorConfiguration initial state")
        if n_reps < 1:
            raise ConfigurationError(f"n_reps must be positive, got {n_reps}")
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be non-negative, got {max_rounds}")
        rng = as_generator(seed)
        protocol = self.protocol
        backend = self.backend
        states = backend.asarray(protocol.init_ensemble(initial, n_reps), dtype=np.int64)
        counts = np.asarray(protocol.color_counts_ensemble(backend.to_host(states)), dtype=np.int64)
        initial_counts = counts[0].copy()
        results: List[Optional[RunResult]] = [None] * n_reps
        rep_ids = np.arange(n_reps)

        def retire(local_indices: np.ndarray, counts_now: np.ndarray, flags, rounds: int) -> None:
            for local, flag in zip(local_indices, flags):
                rep = int(rep_ids[local])
                results[rep] = build_result(
                    converged=bool(flag),
                    initial_counts=initial_counts,
                    final_counts=counts_now[local],
                    rounds=rounds,
                    parallel_time=float(rounds),
                    metadata={
                        "engine": "ensemble-counts",
                        "protocol": protocol.name,
                        "n_reps": n_reps,
                        "replication": rep,
                    },
                )

        stops = _stop_flags(stop, counts)
        if stops.any():
            done = np.flatnonzero(stops)
            retire(done, counts, stops[done], 0)
            keep = ~stops
            states, rep_ids = states[backend.asarray(keep)], rep_ids[keep]
        rounds = 0
        while rep_ids.size and rounds < max_rounds:
            states = backend.asarray(
                protocol.step_ensemble(backend.to_host(states), rng), dtype=np.int64
            )
            rounds += 1
            host_states = backend.to_host(states)
            counts = np.asarray(protocol.color_counts_ensemble(host_states), dtype=np.int64)
            stops = _stop_flags(stop, counts)
            absorbed = np.asarray(protocol.is_absorbed_ensemble(host_states), dtype=bool) & ~stops
            done = stops | absorbed
            if done.any():
                finished = np.flatnonzero(done)
                retire(finished, counts, stops[finished], rounds)
                keep = ~done
                states, rep_ids = states[backend.asarray(keep)], rep_ids[keep]
        if rep_ids.size:
            counts = np.asarray(protocol.color_counts_ensemble(backend.to_host(states)), dtype=np.int64)
            remaining = np.arange(rep_ids.size)
            retire(remaining, counts, np.zeros(rep_ids.size, dtype=bool), rounds)
        return results  # type: ignore[return-value]


class _EnsembleTickEngine:
    """Shared run loop of the ensemble tick engines.

    The batched-tick machinery of
    :class:`~repro.engine.counts_async._CountsTickEngine` lifted to an
    ``(A, m)`` active-state matrix; subclasses define how the per-rep
    wall clocks relate to the shared tick counter.
    """

    _engine_name = "ensemble-counts-tick"

    def __init__(
        self,
        protocol: SequentialCountsProtocol,
        batch_ticks: Optional[int] = None,
        batch_fraction: float = _DEFAULT_BATCH_FRACTION,
        backend: Union[None, str, ArrayBackend] = None,
    ):
        if batch_ticks is not None and batch_ticks < 1:
            raise ConfigurationError(f"batch_ticks must be positive, got {batch_ticks}")
        if not 0.0 < batch_fraction <= 1.0:
            raise ConfigurationError(f"batch_fraction must be in (0, 1], got {batch_fraction}")
        self.protocol = protocol
        self.batch_ticks = batch_ticks
        self.batch_fraction = batch_fraction
        self.backend = resolve_backend(backend)

    def _resolve_batch(self, n: int) -> int:
        if self.batch_ticks is not None:
            return self.batch_ticks
        return max(1, int(round(n * self.batch_fraction)))

    def _advance_clocks(
        self, times: np.ndarray, total_ticks: int, b: int, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """Per-rep wall clocks after a batch of *b* ticks (see the
        single-run engines for the grid/clock semantics)."""
        raise NotImplementedError

    def _run_ensemble(
        self,
        initial: ColorConfiguration,
        n_reps: int,
        max_ticks: Optional[int],
        max_time: Optional[float],
        stop: StopCondition,
        check_every: Optional[int],
        seed: SeedLike,
    ) -> List[RunResult]:
        if not isinstance(initial, ColorConfiguration):
            raise ConfigurationError(f"{type(self).__name__} requires a ColorConfiguration initial state")
        if n_reps < 1:
            raise ConfigurationError(f"n_reps must be positive, got {n_reps}")
        rng = as_generator(seed)
        n = initial.n
        if n < 2:
            raise ConfigurationError("counts tick engines need at least 2 nodes")
        if max_ticks is None:
            max_ticks = int(50 * n * max(np.log(n), 1.0))
        if max_time is None:
            max_time = float("inf")
        if check_every is None:
            check_every = n
        check_every = max(1, int(check_every))
        batch = self._resolve_batch(n)

        protocol = self.protocol
        backend = self.backend
        states = backend.asarray(protocol.init_ensemble(initial, n_reps), dtype=np.int64)
        counts = np.asarray(protocol.color_counts_ensemble(backend.to_host(states)), dtype=np.int64)
        initial_counts = counts[0].copy()
        results: List[Optional[RunResult]] = [None] * n_reps
        rep_ids = np.arange(n_reps)
        times = np.zeros(n_reps)
        ticks = 0
        next_check = check_every

        def retire(local_indices: np.ndarray, counts_now: np.ndarray, flags) -> None:
            for local, flag in zip(local_indices, flags):
                rep = int(rep_ids[local])
                results[rep] = build_result(
                    converged=bool(flag),
                    initial_counts=initial_counts,
                    final_counts=counts_now[local],
                    rounds=ticks,
                    parallel_time=float(times[local]),
                    metadata={
                        "engine": self._engine_name,
                        "protocol": protocol.name,
                        "batch_ticks": batch,
                        "n_reps": n_reps,
                        "replication": rep,
                    },
                )

        def compact(keep: np.ndarray) -> None:
            nonlocal states, rep_ids, times
            states = states[backend.asarray(keep)]
            rep_ids, times = rep_ids[keep], times[keep]

        stops = _stop_flags(stop, counts)
        if stops.any():
            done = np.flatnonzero(stops)
            retire(done, counts, stops[done])
            compact(~stops)
        while rep_ids.size and ticks < max_ticks:
            if np.isfinite(max_time):
                # Mirror the single-run loop condition: a replication
                # whose clock passed the budget stops *before* the next
                # batch, with one final stop evaluation on its counts.
                expired = times >= max_time
                if expired.any():
                    counts = np.asarray(protocol.color_counts_ensemble(backend.to_host(states)), dtype=np.int64)
                    done = np.flatnonzero(expired)
                    retire(done, counts, _stop_flags(stop, counts[done]))
                    compact(~expired)
                    if not rep_ids.size:
                        break
            b = min(batch, max_ticks - ticks, next_check - ticks)
            states = _draw_batch_ensemble(protocol, states, b, n, rng, backend)
            ticks += b
            times = self._advance_clocks(times, ticks, b, rng, n)
            if ticks >= next_check:
                next_check += check_every
                host_states = backend.to_host(states)
                counts = np.asarray(protocol.color_counts_ensemble(host_states), dtype=np.int64)
                stops = _stop_flags(stop, counts)
                absorbed = np.asarray(protocol.is_absorbed_ensemble(host_states), dtype=bool) & ~stops
                done = stops | absorbed
                if done.any():
                    finished = np.flatnonzero(done)
                    retire(finished, counts, stops[finished])
                    compact(~done)
        if rep_ids.size:
            # Budget ran out between grid checks: one final stop
            # evaluation, exactly like the single-run engines' epilogue.
            counts = np.asarray(protocol.color_counts_ensemble(backend.to_host(states)), dtype=np.int64)
            remaining = np.arange(rep_ids.size)
            retire(remaining, counts, _stop_flags(stop, counts))
        return results  # type: ignore[return-value]


class EnsembleCountsSequentialEngine(_EnsembleTickEngine):
    """Ensemble twin of :class:`~repro.engine.counts_async.CountsSequentialEngine`.

    All replications share the deterministic sequential clock, so every
    reported ``parallel_time`` lies exactly on the ``ticks / n`` float
    grid of the agent engine.
    """

    _engine_name = "ensemble-counts-sequential"

    def _advance_clocks(
        self, times: np.ndarray, total_ticks: int, b: int, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        return np.full(times.shape, total_ticks / n)

    def run_ensemble(
        self,
        initial: ColorConfiguration,
        n_reps: int,
        max_ticks: Optional[int] = None,
        stop: StopCondition = consensus_reached,
        check_every: Optional[int] = None,
        seed: SeedLike = None,
    ) -> List[RunResult]:
        """Run *n_reps* replications until each stops or exhausts
        *max_ticks* (parameters mirror
        :meth:`CountsSequentialEngine.run <repro.engine.counts_async.CountsSequentialEngine.run>`,
        minus tracing)."""
        return self._run_ensemble(initial, n_reps, max_ticks, None, stop, check_every, seed)


class EnsembleCountsContinuousEngine(_EnsembleTickEngine):
    """Ensemble twin of :class:`~repro.engine.counts_async.CountsContinuousEngine`.

    Each replication carries its own Poisson wall clock: one stacked
    ``Gamma(B) / n`` draw per batch advances every active clock by its
    own exact superposition gap sum.
    """

    _engine_name = "ensemble-counts-continuous"

    def _advance_clocks(
        self, times: np.ndarray, total_ticks: int, b: int, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        return times + rng.gamma(np.full(times.shape, float(b))) / n

    def run_ensemble(
        self,
        initial: ColorConfiguration,
        n_reps: int,
        max_time: Optional[float] = None,
        stop: StopCondition = consensus_reached,
        check_every: Optional[int] = None,
        seed: SeedLike = None,
    ) -> List[RunResult]:
        """Run *n_reps* replications until each stops or its clock
        passes *max_time* (default ``50 ln n``, like the single-run
        engine)."""
        if max_time is None:
            n = initial.n if isinstance(initial, ColorConfiguration) else 2
            max_time = 50.0 * max(np.log(n), 1.0)
        return self._run_ensemble(initial, n_reps, None, max_time, stop, check_every, seed)


def run_replicated(
    engine,
    initial: ColorConfiguration,
    n_reps: int,
    seed: SeedLike = None,
    **run_kwargs,
) -> List[RunResult]:
    """Collect *n_reps* independent :class:`RunResult`\\ s from *engine*.

    The transparent replication front door: ensemble engines run all
    replications in one vectorised pass on the stream
    ``split(seed, "ensemble")``; plain engines fall back to the looped
    path, trial *i* on child *i* of ``SeedSequence(master).spawn``.
    Both paths draw every replication from the same law (the ensemble
    exactness contract above), so callers may treat the routing as a
    pure wall-clock optimisation.  The two paths consume different —
    mutually independent — streams, so only the *distribution* of
    results is shared, not the values; see DESIGN.md for the seeding
    contract.

    Engines that expose their own ``run_replicated`` (the sparse hazard
    engines, which reuse scratch and presample buffers across
    replications) take precedence over the generic loop; they follow
    the same spawn-child seeding, so the values are identical to the
    generic loop too.
    """
    if hasattr(engine, "run_ensemble"):
        return engine.run_ensemble(initial, n_reps=n_reps, seed=split(seed, "ensemble"), **run_kwargs)
    if hasattr(engine, "run_replicated"):
        return engine.run_replicated(initial, n_reps, seed=seed, **run_kwargs)
    return [
        engine.run(initial, seed=child, **run_kwargs)
        for child in spawn_seed_sequences(seed, n_reps)
    ]

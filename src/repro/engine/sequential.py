"""Sequential asynchronous engine.

The paper analyses the asynchronous Poisson-clock process in the
*sequential model*: discrete time is given by the sequence of clock
ticks, and at each tick a node chosen uniformly at random performs its
update.  The two views have the same run time (the paper cites
Mosk-Aoyama & Shah); :mod:`repro.engine.continuous` implements the
continuous view so the equivalence can be measured (experiment T10).

Parallel time is ``ticks / n``: in one unit of continuous time each
Poisson clock ticks once in expectation, so ``n`` sequential ticks are
one unit of parallel time.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.results import RunResult, Trace
from ..core.rng import SeedLike, as_generator
from ..graphs.topology import DynamicTopology, Topology
from ..protocols.base import SequentialProtocol
from .base import StopCondition, build_result, consensus_reached, materialize_initial

__all__ = ["SequentialEngine"]

#: how many node choices to draw per batch (amortises RNG call cost).
_BATCH = 8192


class SequentialEngine:
    """Tick-based driver: one uniformly random node acts per tick."""

    def __init__(self, protocol: SequentialProtocol, topology: Topology):
        self.protocol = protocol
        self.topology = topology

    def run(
        self,
        initial: Union[ColorConfiguration, np.ndarray],
        max_ticks: Optional[int] = None,
        stop: StopCondition = consensus_reached,
        record_trace: bool = False,
        trace_every_parallel: float = 1.0,
        check_every: Optional[int] = None,
        seed: SeedLike = None,
    ) -> RunResult:
        """Run ticks until *stop* holds or *max_ticks* is exhausted.

        Parameters
        ----------
        initial:
            Counts vector (random node assignment) or explicit colours.
        max_ticks:
            Tick budget; default ``50 * n * ln(n)`` which generously
            covers every `Theta(log n)`-parallel-time protocol here.
        stop:
            Counts-level predicate, evaluated every *check_every* ticks.
        record_trace / trace_every_parallel:
            Record counts every ``trace_every_parallel`` units of
            parallel time (i.e. every ``trace_every_parallel * n``
            ticks).
        check_every:
            Stop-condition cadence in ticks (default ``n``); counts are
            maintained incrementally so checks are O(k).
        """
        rng = as_generator(seed)
        colors, k = materialize_initial(initial, rng)
        n = colors.size
        if n != self.topology.n:
            raise ConfigurationError(
                f"initial configuration has {n} nodes but topology has {self.topology.n}"
            )
        if max_ticks is None:
            max_ticks = int(50 * n * max(np.log(n), 1.0))
        if check_every is None:
            check_every = n
        check_every = max(1, int(check_every))

        state = self.protocol.make_state(colors, k)
        counts = state.counts()
        initial_counts = counts.copy()
        trace = Trace() if record_trace else None
        trace_interval = max(1, int(trace_every_parallel * n))
        if trace is not None:
            trace.record(0.0, counts)

        protocol = self.protocol
        topology = self.topology
        # Dynamic topologies change their edge set on a fixed epoch
        # clock; blocks additionally end on epoch boundaries so every
        # tick of a block presamples from the graph of its own epoch
        # (tick t reads epoch t // epoch_ticks), and the run starts
        # from a deterministic epoch-0 reset so replications sharing
        # one topology object stay independent.
        dynamic = isinstance(topology, DynamicTopology)
        if dynamic:
            epoch_ticks = topology.epoch_ticks
            topology.advance_to(0)
        ticks = 0
        next_trace = trace_interval
        converged = stop(counts)
        while not converged and ticks < max_ticks:
            # Blocks end on stop-check boundaries so the check cadence
            # is identical to the historical per-tick loop; within a
            # block the protocol batches its neighbour sampling.  When
            # tracing, blocks also end on trace boundaries so the trace
            # cadence is honoured regardless of check_every.
            to_check = check_every - ticks % check_every
            block = min(_BATCH, max_ticks - ticks, to_check)
            if trace is not None:
                block = min(block, next_trace - ticks)
            if dynamic:
                topology.advance_to(ticks // epoch_ticks)
                block = min(block, epoch_ticks - ticks % epoch_ticks)
            nodes = rng.integers(0, n, size=block)
            protocol.seq_tick_batch(state, nodes, topology, rng)
            ticks += block
            if trace is not None and ticks >= next_trace:
                trace.record(ticks / n, state.counts())
                while next_trace <= ticks:
                    next_trace += trace_interval
            if ticks % check_every == 0:
                counts = state.counts()
                if stop(counts):
                    converged = True
                elif protocol.is_absorbed(state):
                    break
        counts = state.counts()
        converged = converged or stop(counts)
        if trace is not None:
            trace.record(ticks / n, counts)

        return build_result(
            converged=converged,
            initial_counts=initial_counts,
            final_counts=counts,
            rounds=ticks,
            parallel_time=ticks / n,
            trace=trace,
            metadata={"engine": "sequential", "protocol": protocol.name},
        )

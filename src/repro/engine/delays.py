"""Response-delay models for the continuous-time engine.

The paper's base model assumes that "once a node contacts another node,
it receives that node's response without any delay"; the Discussion
section proposes extending the model with exponentially distributed
response delays of constant parameter.  These classes implement both,
plus a deterministic delay useful in tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..api.registry import ParamSpec, register_delay
from ..core.exceptions import ConfigurationError

__all__ = ["DelayModel", "NoDelay", "ExponentialDelay", "FixedDelay"]


class DelayModel(ABC):
    """Distribution of the response latency of a sampled node."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one response delay (in continuous-time units)."""

    def is_zero(self) -> bool:
        """True when responses are instantaneous (enables fast paths)."""
        return False


class NoDelay(DelayModel):
    """The paper's base model: instantaneous responses."""

    def sample(self, rng: np.random.Generator) -> float:
        return 0.0

    def is_zero(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "NoDelay()"


class ExponentialDelay(DelayModel):
    """Exponential delays with constant rate (independent of ``n``).

    This is exactly the Discussion-section extension: "response delays
    following some exponential distribution with constant parameter
    (which need not be 1, but must be independent of n)".
    """

    def __init__(self, rate: float = 1.0):
        if rate <= 0:
            raise ConfigurationError(f"delay rate must be positive, got {rate}")
        self.rate = float(rate)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def __repr__(self) -> str:
        return f"ExponentialDelay(rate={self.rate})"


class FixedDelay(DelayModel):
    """Deterministic delay — handy for deterministic unit tests."""

    def __init__(self, delay: float):
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self.delay = float(delay)

    def sample(self, rng: np.random.Generator) -> float:
        return self.delay

    def is_zero(self) -> bool:
        return self.delay == 0.0

    def __repr__(self) -> str:
        return f"FixedDelay(delay={self.delay})"


register_delay(
    "none",
    NoDelay,
    description="Instantaneous responses (the paper's base model)",
)
register_delay(
    "exponential",
    ExponentialDelay,
    params=[ParamSpec("rate", kind="float", default=1.0, doc="exponential rate (mean delay 1/rate)")],
    description="Exponential response delays with constant rate (Discussion extension)",
)
register_delay(
    "fixed",
    FixedDelay,
    params=[ParamSpec("delay", kind="float", required=True, doc="deterministic delay length")],
    description="Deterministic response delay",
)

"""Hazard-checked batched tick engines for **arbitrary** topologies.

:mod:`repro.engine.counts_async` made the asynchronous models
essentially free on ``K_n`` by collapsing the state to a histogram —
a move that is only exact on the complete graph.  Off ``K_n`` the
sequential model ran through :class:`~repro.engine.sequential.
SequentialEngine` with per-tick Python applies: ``O(n log n)``
interpreter iterations per run, which capped sparse-topology sweeps
(ring, torus, random-regular, hypercube, Watts-Strogatz,
Barabasi-Albert, imported networkx graphs) around ``n ~ 10^5``.

These engines keep the full per-node state but apply ticks in
*vectorised hazard-free chunks*:

1. draw a block of ``B`` tick initiators in one RNG call;
2. presample every tick's target identities in one vectorised CSR
   gather (:meth:`~repro.graphs.topology.Topology.
   sample_neighbors_block`) — identities are state-independent for
   every protocol that declares a
   :class:`~repro.protocols.base.TickFootprint`;
3. evaluate the whole block optimistically through the protocol's pure
   :meth:`~repro.protocols.base.SequentialProtocol.tick_values` rule,
   find the first tick that reads a node an earlier tick *actually
   changed*, scatter the hazard-free prefix's writes in one pass, and
   restart from the cut (:func:`repro.core.hazard.apply_hazard_free`).

Exactness
---------
Chunked application is **bit-identical** to applying the same
presampled draws one tick at a time (the hazard cut is exactly the
point up to which snapshot reads equal sequential reads — see
:mod:`repro.core.hazard`), so the engine is *law-exact* with respect to
:class:`~repro.engine.sequential.SequentialEngine`: both draw
initiators uniformly and target identities uniformly per tick, and
differ only in RNG stream layout (block-shaped draws here), like the
``counts_async`` engines differ from the per-tick loop.  Stop
conditions are checked on the same ``check_every`` tick cadence (default
``n``), so recorded convergence times are quantised identically across
engines and cross-engine KS tests compare like with like.

Cost model
----------
Hazards follow birthday statistics: a tick reads ``1 + s`` nodes and
*changes* its node with some probability ``w``, so the first collision
lands around tick ``sqrt(2 n / ((1 + s) w))``.  Counting only actual
writes is what makes the batch wide: in the mixed start-up phase
``w ~ 0.2-0.5`` and chunks run a small multiple of ``sqrt(n)``, while in
the coarsening and near-consensus phases that dominate runs to
consensus ``w`` is tiny and whole blocks apply in one numpy pass.  The
engines exploit that by *adapting* the block size: a block that applied
in one chunk doubles the next block, one that fragmented shrinks it —
so the amortised cost falls to a few numpy operations per thousands of
ticks exactly where the run spends its time.  Degenerate cases (a
star's hub is in almost every read set) degrade gracefully: chunks
shrink toward length 1 and the engine approaches the per-tick loop it
replaces, never worse than ``O(B)`` extra scan work per applied tick.

:class:`SparseContinuousEngine` is the Poisson-clock twin: identical
batch core, wall-clock time advanced by the superposition property
(``Exp(n)`` gaps summed per block, truncated at ``max_time``), mirroring
:class:`~repro.engine.continuous.ContinuousEngine`'s instantaneous path.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.hazard import HazardScratch, apply_hazard_free
from ..core.hazard_kernel import kernel_for
from ..core.results import RunResult, Trace
from ..core.rng import SeedLike, as_generator, spawn_seed_sequences
from ..graphs.topology import DynamicTopology, Topology
from ..protocols.base import SequentialProtocol
from .base import StopCondition, build_result, consensus_reached, materialize_initial

__all__ = ["SparseSequentialEngine", "SparseContinuousEngine"]

#: starting block size multiplier over sqrt(n) (see the cost model note).
_BLOCK_SQRT_FACTOR = 4
#: adaptive block-size clamp: keep numpy calls amortised but bounded.
_MIN_BLOCK = 64
_MAX_BLOCK = 1 << 18
#: grow the block after a cut-free apply, shrink it past this many cuts.
_SHRINK_CUTS = 8


def _default_block(n: int) -> int:
    return int(np.clip(_BLOCK_SQRT_FACTOR * np.sqrt(n), _MIN_BLOCK, _MAX_BLOCK))


def _adapt_block(block: int, cuts: int) -> int:
    """Next block size after a block that hit *cuts* hazard cuts.

    Cut-free blocks double (up to the clamp) so quiet phases amortise
    RNG and sampling ever wider; heavily fragmented blocks halve.  The
    windowed evaluation inside :func:`repro.core.hazard.
    apply_hazard_free` already bounds re-scan waste, so the block size
    only tunes per-block fixed costs, not correctness or asymptotics.
    """
    if cuts == 0:
        return min(block * 2, _MAX_BLOCK)
    if cuts > _SHRINK_CUTS:
        return max(block // 2, _MIN_BLOCK)
    return block


class _SparseTickEngine:
    """Shared plumbing of the hazard-batched tick engines."""

    def __init__(
        self,
        protocol: SequentialProtocol,
        topology: Topology,
        block_ticks: Optional[int] = None,
    ):
        footprint = getattr(protocol, "tick_footprint", None)
        if footprint is None:
            raise ConfigurationError(
                f"{protocol.name} declares no tick footprint; the hazard-batched "
                "engines need presampleable targets (use SequentialEngine)"
            )
        if not footprint.writes_self_only:
            raise ConfigurationError(
                f"{protocol.name} writes beyond the acting node; the hazard-batched "
                "engines only support self-writing ticks"
            )
        if block_ticks is not None and block_ticks < 1:
            raise ConfigurationError(f"block_ticks must be positive, got {block_ticks}")
        self.protocol = protocol
        self.topology = topology
        self.block_ticks = block_ticks
        # Scratch (first-writer stamps, reads matrix) is sized by the
        # state, which is fixed by the topology — cache it on the
        # engine so repeated runs (`run_replicated` in particular)
        # reuse the buffers instead of reallocating per replication.
        self._scratch: Optional[HazardScratch] = None

    def _setup(self, initial, rng):
        colors, k = materialize_initial(initial, rng)
        n = colors.size
        if n != self.topology.n:
            raise ConfigurationError(
                f"initial configuration has {n} nodes but topology has {self.topology.n}"
            )
        state = self.protocol.make_state(colors, k)
        block = self.block_ticks if self.block_ticks is not None else _default_block(n)
        scratch = self._scratch
        if scratch is None or scratch.n != state.n:
            scratch = HazardScratch(state.n)
            self._scratch = scratch
        # Resolve the compiled-kernel choice (REPRO_KERNEL) once per
        # run; ``None`` is the numpy hazard path.  Either way the block
        # application is bit-identical on the same draws — see
        # repro.core.hazard_kernel — so this trades wall-clock only.
        return state, n, block, scratch, kernel_for(self.protocol)

    def run_replicated(
        self,
        initial: Union[ColorConfiguration, np.ndarray],
        n_reps: int,
        seed: SeedLike = None,
        **run_kwargs,
    ) -> List[RunResult]:
        """Collect *n_reps* independent runs, reusing engine buffers.

        Seeding is identical to the looped fallback of
        :func:`repro.engine.ensemble.run_replicated` (trial *i* runs on
        child *i* of ``SeedSequence(master).spawn``), so results are
        value-for-value the same as looping ``run`` by hand; the only
        difference is that the hazard scratch and presample buffers are
        allocated once and reused across replications.
        """
        if n_reps < 1:
            raise ConfigurationError(f"n_reps must be positive, got {n_reps}")
        return [
            self.run(initial, seed=child, **run_kwargs)
            for child in spawn_seed_sequences(seed, n_reps)
        ]


class SparseSequentialEngine(_SparseTickEngine):
    """Sequential-model driver: hazard-batched ticks on any topology."""

    def run(
        self,
        initial: Union[ColorConfiguration, np.ndarray],
        max_ticks: Optional[int] = None,
        stop: StopCondition = consensus_reached,
        record_trace: bool = False,
        trace_every_parallel: float = 1.0,
        check_every: Optional[int] = None,
        seed: SeedLike = None,
    ) -> RunResult:
        """Run ticks until *stop* holds or *max_ticks* is exhausted.

        Mirrors :meth:`repro.engine.sequential.SequentialEngine.run`
        parameter for parameter (same defaults, same check and trace
        cadences); only wall-clock time differs.
        """
        rng = as_generator(seed)
        state, n, block_size, scratch, kernel = self._setup(initial, rng)
        if max_ticks is None:
            max_ticks = int(50 * n * max(np.log(n), 1.0))
        if check_every is None:
            check_every = n
        check_every = max(1, int(check_every))

        counts = state.counts()
        initial_counts = counts.copy()
        trace = Trace() if record_trace else None
        trace_interval = max(1, int(trace_every_parallel * n))
        if trace is not None:
            trace.record(0.0, counts)

        protocol = self.protocol
        topology = self.topology
        samples = protocol.tick_footprint.samples
        # Dynamic topologies: cut blocks at topology-change epochs so
        # every presampled target identity comes from the graph of its
        # tick's own epoch — the hazard-free-prefix exactness contract
        # only covers a constant graph per block.  Run-start epoch-0
        # reset keeps replications on a shared topology independent.
        dynamic = isinstance(topology, DynamicTopology)
        if dynamic:
            epoch_ticks = topology.epoch_ticks
            topology.advance_to(0)
        ticks = 0
        next_trace = trace_interval
        converged = stop(counts)
        while not converged and ticks < max_ticks:
            # Blocks end on stop-check boundaries (identical cadence to
            # SequentialEngine) and, when tracing, on trace boundaries.
            to_check = check_every - ticks % check_every
            block = min(block_size, max_ticks - ticks, to_check)
            if trace is not None:
                block = min(block, next_trace - ticks)
            if dynamic:
                topology.advance_to(ticks // epoch_ticks)
                block = min(block, epoch_ticks - ticks % epoch_ticks)
            nodes = rng.integers(0, n, size=block)
            targets = topology.sample_neighbors_block(nodes, samples, rng)
            cuts = apply_hazard_free(protocol, state, nodes, targets, scratch, kernel=kernel)
            if self.block_ticks is None:
                block_size = _adapt_block(block_size, cuts)
            ticks += block
            if trace is not None and ticks >= next_trace:
                trace.record(ticks / n, state.counts())
                while next_trace <= ticks:
                    next_trace += trace_interval
            if ticks % check_every == 0:
                counts = state.counts()
                if stop(counts):
                    converged = True
                elif protocol.is_absorbed(state):
                    break
        counts = state.counts()
        converged = converged or stop(counts)
        if trace is not None:
            trace.record(ticks / n, counts)

        return build_result(
            converged=converged,
            initial_counts=initial_counts,
            final_counts=counts,
            rounds=ticks,
            parallel_time=ticks / n,
            trace=trace,
            metadata={"engine": "sparse-sequential", "protocol": protocol.name},
        )


class SparseContinuousEngine(_SparseTickEngine):
    """Poisson-clock driver: hazard-batched ticks, superposed clocks.

    Zero-delay only — the event-queue
    :class:`~repro.engine.continuous.ContinuousEngine` remains the
    engine for response-delay models (a tick with in-flight reads is
    not expressible as a presampled self-write).
    """

    def run(
        self,
        initial: Union[ColorConfiguration, np.ndarray],
        max_time: Optional[float] = None,
        stop: StopCondition = consensus_reached,
        record_trace: bool = False,
        trace_every: float = 1.0,
        check_every: Optional[int] = None,
        seed: SeedLike = None,
    ) -> RunResult:
        """Run until *stop* holds or continuous time *max_time* passes.

        Mirrors :meth:`repro.engine.continuous.ContinuousEngine.run`
        (instantaneous path) parameter for parameter: ``parallel_time``
        is the continuous clock, ``rounds`` counts applied ticks, and a
        tick landing at or after *max_time* is not applied.
        """
        rng = as_generator(seed)
        state, n, block_size, scratch, kernel = self._setup(initial, rng)
        if max_time is None:
            max_time = 50.0 * max(np.log(n), 1.0)
        if check_every is None:
            check_every = n
        check_every = max(1, int(check_every))

        counts = state.counts()
        initial_counts = counts.copy()
        trace = Trace() if record_trace else None
        if trace is not None:
            trace.record(0.0, counts)

        protocol = self.protocol
        topology = self.topology
        samples = protocol.tick_footprint.samples
        time = 0.0
        ticks = 0
        next_trace = trace_every
        converged = stop(counts)
        while not converged and time < max_time:
            to_check = check_every - ticks % check_every
            block = min(block_size, to_check)
            if trace is not None and time < next_trace:
                # End the block near the next trace boundary (expected
                # tick count to reach it) so trace_every is honoured
                # even when check_every is large.
                expected = int((next_trace - time) * n) + 1
                block = min(block, max(1, expected))
            gaps = rng.exponential(1.0 / n, size=block)
            nodes = rng.integers(0, n, size=block)
            tick_times = time + np.cumsum(gaps)
            if tick_times[-1] >= max_time:
                # A tick happening at or after max_time is not applied.
                fits = int(np.searchsorted(tick_times, max_time, side="right"))
                nodes = nodes[:fits]
                time = max_time
            else:
                time = float(tick_times[-1])
            if len(nodes):
                targets = topology.sample_neighbors_block(nodes, samples, rng)
                cuts = apply_hazard_free(protocol, state, nodes, targets, scratch, kernel=kernel)
                if self.block_ticks is None:
                    block_size = _adapt_block(block_size, cuts)
            ticks += len(nodes)
            if trace is not None and time >= next_trace:
                trace.record(time, state.counts())
                while next_trace <= time:
                    next_trace += trace_every
            if len(nodes) == block and ticks % check_every == 0:
                counts = state.counts()
                if stop(counts):
                    converged = True
                elif protocol.is_absorbed(state):
                    break
            if time >= max_time:
                break
        counts = state.counts()
        converged = converged or stop(counts)
        if trace is not None:
            trace.record(time, counts)

        return build_result(
            converged=converged,
            initial_counts=initial_counts,
            final_counts=counts,
            rounds=ticks,
            parallel_time=time,
            trace=trace,
            metadata={"engine": "sparse-continuous", "protocol": protocol.name},
        )

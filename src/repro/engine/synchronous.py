"""Agent-based synchronous round engine.

Drives any :class:`~repro.protocols.base.SynchronousProtocol` on any
:class:`~repro.graphs.topology.Topology`.  This engine is the faithful
(one array slot per node) realisation of the paper's synchronous model;
for large-``n`` work on ``K_n`` prefer :class:`~repro.engine.counts.CountsEngine`,
which draws the identical round law from multinomials.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.results import RunResult, Trace
from ..core.rng import SeedLike, as_generator, split
from ..graphs.topology import Topology
from ..protocols.base import SynchronousProtocol
from .base import StopCondition, build_result, consensus_reached, materialize_initial

__all__ = ["SynchronousEngine"]


class SynchronousEngine:
    """Round-based driver for agent-level protocols.

    Parameters
    ----------
    protocol:
        The round-update policy.
    topology:
        The communication graph (defaults to nothing — pass it to
        :meth:`run` per call or here once).
    """

    def __init__(self, protocol: SynchronousProtocol, topology: Topology):
        self.protocol = protocol
        self.topology = topology

    def run(
        self,
        initial: Union[ColorConfiguration, np.ndarray],
        max_rounds: int = 1_000_000,
        stop: StopCondition = consensus_reached,
        record_trace: bool = False,
        trace_every: int = 1,
        seed: SeedLike = None,
    ) -> RunResult:
        """Execute rounds until *stop* holds or *max_rounds* is hit.

        Parameters
        ----------
        initial:
            Either a :class:`ColorConfiguration` (nodes are assigned
            colours in a uniformly random arrangement) or an explicit
            per-node colour array.
        max_rounds:
            Hard budget; exceeding it yields ``converged=False``.
        stop:
            Counts-level predicate checked after every round.
        record_trace / trace_every:
            Record a counts snapshot every *trace_every* rounds.
        seed:
            Seed or generator; assignment and round randomness use
            split child streams so traces are reproducible.
        """
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be non-negative, got {max_rounds}")
        rng = as_generator(seed)
        colors, k = materialize_initial(initial, rng)
        if colors.size != self.topology.n:
            raise ConfigurationError(
                f"initial configuration has {colors.size} nodes but topology has {self.topology.n}"
            )
        state = self.protocol.make_state(colors, k)
        trace = Trace() if record_trace else None
        counts = state.counts()
        initial_counts = counts.copy()
        if trace is not None:
            trace.record(0, counts)

        rounds = 0
        converged = stop(counts)
        while not converged and rounds < max_rounds:
            self.protocol.round_update(state, self.topology, rng)
            rounds += 1
            counts = state.counts()
            if trace is not None and rounds % trace_every == 0:
                trace.record(rounds, counts)
            converged = stop(counts)
            if not converged and self.protocol.is_absorbed(state):
                break
        if trace is not None and (rounds % trace_every != 0):
            trace.record(rounds, counts)

        return build_result(
            converged=converged,
            initial_counts=initial_counts,
            final_counts=counts,
            rounds=rounds,
            parallel_time=float(rounds),
            trace=trace,
            metadata={"engine": "synchronous", "protocol": self.protocol.name},
        )

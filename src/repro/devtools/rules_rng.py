"""RNG discipline rules (``REPRO-R00x``).

Contract (DESIGN.md §2.10): every stochastic component takes a
``seed``/``rng`` parameter and all coercion happens in
:mod:`repro.core.rng` — nothing seeds process-global state, constructs
an unseeded generator outside the seam, draws from the legacy
``numpy.random`` global stream, or keeps generator state at module
level.  This is what makes a run a pure function of its spec, which in
turn is what the result cache, the distributed executor, and the serve
layer all assume.
"""

from __future__ import annotations

import ast
from typing import List

from .lint import Finding, ModuleContext, register_rule

__all__ = ["RNG_SEAM"]

#: The one module allowed to construct unseeded generators.
RNG_SEAM = "repro.core.rng"

_GLOBAL_SEED = {"numpy.random.seed", "random.seed"}
_CONSTRUCTORS = {"numpy.random.default_rng", "numpy.random.RandomState"}

#: Draw methods of the legacy global ``numpy.random`` (and stdlib
#: ``random``) module-level API.  ``rng.random(...)`` on a Generator
#: never resolves into the ``numpy.random.*`` namespace, so only true
#: global-state draws match.
_LEGACY_DRAWS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "getrandbits", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial", "normal",
    "pareto", "permutation", "poisson", "power", "rand", "randint",
    "randn", "random", "random_integers", "random_sample", "randrange",
    "ranf", "rayleigh", "sample", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf",
}

#: Call suffixes whose result is generator state when bound at module
#: level (``_RNG = default_rng(0)`` and friends).
_STATE_BUILDERS = {"default_rng", "RandomState", "as_generator", "split"}


def _is_unseeded(call: ast.Call) -> bool:
    """True when the constructor call pins no entropy (literal-only check)."""
    if not call.args and not call.keywords:
        return True
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is None
    return False


@register_rule(
    "REPRO-R001",
    "no global RNG seeding (np.random.seed / random.seed)",
)
def no_global_seed(ctx: ModuleContext) -> List[Finding]:
    out = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = ctx.resolve(node.func)
            if name in _GLOBAL_SEED:
                out.append(
                    ctx.finding(
                        "REPRO-R001",
                        node,
                        f"{name}() seeds process-global state shared by every caller; "
                        "thread a Generator from repro.core.rng instead",
                    )
                )
    return out


@register_rule(
    "REPRO-R002",
    "no unseeded default_rng()/RandomState() outside repro.core.rng",
)
def no_unseeded_constructors(ctx: ModuleContext) -> List[Finding]:
    if ctx.module == RNG_SEAM:
        return []
    out = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = ctx.resolve(node.func)
            if name in _CONSTRUCTORS and _is_unseeded(node):
                out.append(
                    ctx.finding(
                        "REPRO-R002",
                        node,
                        f"unseeded {name}() outside {RNG_SEAM} draws fresh OS entropy "
                        "and breaks replay; accept a seed/Generator parameter and coerce "
                        "it with repro.core.rng.as_generator",
                    )
                )
    return out


@register_rule(
    "REPRO-R003",
    "no legacy global-state numpy.random / random draws",
)
def no_legacy_draws(ctx: ModuleContext) -> List[Finding]:
    out = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.resolve(node.func)
        if not name or "." not in name:
            continue
        head, _, last = name.rpartition(".")
        if last in _LEGACY_DRAWS and head in ("numpy.random", "random"):
            out.append(
                ctx.finding(
                    "REPRO-R003",
                    node,
                    f"{name}() draws from the process-global stream; draw from a "
                    "Generator passed in as a parameter",
                )
            )
    return out


@register_rule(
    "REPRO-R004",
    "no module-level RNG state",
)
def no_module_level_rng_state(ctx: ModuleContext) -> List[Finding]:
    out = []
    for stmt in ctx.tree.body:
        value = getattr(stmt, "value", None)
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)) or value is None:
            continue
        for node in ast.walk(value):
            if isinstance(node, ast.Call):
                name = ctx.resolve(node.func) or ""
                if name.rpartition(".")[2] in _STATE_BUILDERS:
                    out.append(
                        ctx.finding(
                            "REPRO-R004",
                            stmt,
                            "module-level RNG state makes import order part of the "
                            "seed path; build generators inside functions and pass "
                            "them as parameters",
                        )
                    )
                    break
    return out

"""Clock discipline rule (``REPRO-C001``).

Contract (DESIGN.md §2.10): deadlines, leases, and timeouts in the
serve and distributed layers are computed on :func:`time.monotonic`,
which NTP cannot step backwards.  :func:`time.time` is permitted only
for wall-clock *display* fields (created/started/finished timestamps in
API payloads), and every such use carries an explicit
``# repro: lint-ignore[REPRO-C001]`` with its reason — so the exception
list is visible in the diff, not folklore.
"""

from __future__ import annotations

import ast
from typing import List

from .lint import Finding, ModuleContext, register_rule

__all__ = []


def _in_scope(ctx: ModuleContext) -> bool:
    if ctx.module is None:
        return False
    return ctx.module == "repro.api.distributed" or ctx.module.startswith("repro.api.serve")


@register_rule(
    "REPRO-C001",
    "time.time() in serve/distributed: monotonic for deadlines, wall time display-only",
)
def no_wall_clock_deadlines(ctx: ModuleContext) -> List[Finding]:
    if not _in_scope(ctx):
        return []
    out = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and ctx.resolve(node.func) == "time.time":
            out.append(
                ctx.finding(
                    "REPRO-C001",
                    node,
                    "time.time() steps with NTP; use time.monotonic() for "
                    "deadlines/leases/timeouts, and suppress with a reason when the "
                    "value is a display-only wall-clock field",
                )
            )
    return out

"""Hash/cache hygiene rules (``REPRO-H00x``).

Contract (DESIGN.md §2.10): the cache key path — spec canonicalization
in :mod:`repro.api.spec` and the key/payload plumbing in
:mod:`repro.api.cache`, :mod:`repro.api.campaign`, and
:mod:`repro.api.results` — must be a pure function of the spec's
*value*.  Python's ``hash()`` is salted per process (``PYTHONHASHSEED``),
``id()`` is an address, set iteration order is hash order, and
``json.dumps`` without ``sort_keys=True`` leaks dict insertion order.
Any of these in the key path silently turns the warm-cache guarantee
into a per-process coin flip.
"""

from __future__ import annotations

import ast
from typing import List

from .lint import Finding, ModuleContext, register_rule

__all__ = ["KEY_PATH_MODULES"]

#: Modules that participate in cache-key construction.
KEY_PATH_MODULES = {
    "repro.api.spec",
    "repro.api.cache",
    "repro.api.campaign",
    "repro.api.results",
}


def _in_scope(ctx: ModuleContext) -> bool:
    return ctx.module in KEY_PATH_MODULES


def _has_sort_keys(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "sort_keys":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


@register_rule(
    "REPRO-H001",
    "no hash() in the cache-key path",
)
def no_builtin_hash(ctx: ModuleContext) -> List[Finding]:
    if not _in_scope(ctx):
        return []
    out = []
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            out.append(
                ctx.finding(
                    "REPRO-H001",
                    node,
                    "hash() is salted per process (PYTHONHASHSEED); derive keys from "
                    "hashlib over canonical JSON instead",
                )
            )
    return out


@register_rule(
    "REPRO-H002",
    "no id() in the cache-key path",
)
def no_builtin_id(ctx: ModuleContext) -> List[Finding]:
    if not _in_scope(ctx):
        return []
    out = []
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            out.append(
                ctx.finding(
                    "REPRO-H002",
                    node,
                    "id() is a memory address, unstable across runs; key on the "
                    "spec's canonical value instead",
                )
            )
    return out


@register_rule(
    "REPRO-H003",
    "json.dumps in the cache-key path must pass sort_keys=True",
)
def dumps_must_sort(ctx: ModuleContext) -> List[Finding]:
    if not _in_scope(ctx):
        return []
    out = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.resolve(node.func)
        if name in ("json.dumps", "json.dump") and not _has_sort_keys(node):
            out.append(
                ctx.finding(
                    "REPRO-H003",
                    node,
                    f"{name}() without sort_keys=True serializes dict insertion "
                    "order; cache keys must canonicalize",
                )
            )
    return out


def _is_set_expr(ctx: ModuleContext, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = ctx.resolve(node.func)
        return name in ("set", "frozenset")
    return False


@register_rule(
    "REPRO-H004",
    "no iteration over set literals/constructors in the cache-key path",
)
def no_set_iteration(ctx: ModuleContext) -> List[Finding]:
    if not _in_scope(ctx):
        return []
    out = []
    for node in ast.walk(ctx.tree):
        iters = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(ctx, it):
                out.append(
                    ctx.finding(
                        "REPRO-H004",
                        it,
                        "set iteration order is hash order; sort before iterating "
                        "in the cache-key path",
                    )
                )
    return out

"""Lock discipline rules (``REPRO-L00x``).

Contract (DESIGN.md §2.10): shared mutable state in the serve and
distributed layers carries a ``# guarded-by: <lockname>`` comment, and
the linter proves two properties over every method body:

* **REPRO-L001** — an annotated field is touched only inside
  ``with self.<lockname>:`` (or from a ``*_locked`` method, whose name
  is the repo convention for "caller already holds the lock").
* **REPRO-L002** — no blocking call (socket recv/accept, subprocess,
  ``time.sleep``, an engine run, a nested executor round-trip) happens
  while a ``self.*`` lock is held.  ``Condition.wait`` / ``wait_for``
  on the *held* condition is exempt — waiting releases it.

Only ``self.<attr>`` locks are tracked: a function-local lock (like the
per-connection ``write_lock`` in the distributed worker) serializes a
single resource by construction and stays out of scope.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set

from .lint import Finding, ModuleContext, register_rule

__all__ = []

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_SELF_ATTR_RE = re.compile(r"self\.([A-Za-z_][A-Za-z0-9_]*)")
_FIELD_DECL_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*[:=]")

#: Method/attribute names whose call can park the thread.
_BLOCKING_ATTRS = {
    "accept", "connect", "recv", "recv_into", "recvfrom", "sendall",
    "makefile", "recv_frame", "send_frame", "join", "wait", "wait_for",
    "sleep", "map_payloads", "run_campaign", "execute_spec_payload",
    "simulate", "run", "check_call", "check_output",
}

#: Resolved-name prefixes that are blocking regardless of attribute.
_BLOCKING_PREFIXES = ("subprocess.",)

#: Resolved names never considered blocking even though the attribute
#: matches (``os.path.join`` vs ``Thread.join``).
_SAFE_RESOLVED_PREFIXES = ("os.path.", "posixpath.", "ntpath.", "str.")

#: Specific enough to flag even when called as a bare name
#: (``run_campaign(...)`` imported via ``from ..campaign import ...``).
_BLOCKING_NAMES = {"run_campaign", "map_payloads", "execute_spec_payload", "sleep"}


def _class_guards(ctx: ModuleContext, cls: ast.ClassDef) -> Dict[str, str]:
    """``field → lockname`` from guarded-by comments in the class body."""
    guards: Dict[str, str] = {}
    end = getattr(cls, "end_lineno", None) or cls.lineno
    for lineno in range(cls.lineno, min(end, len(ctx.lines)) + 1):
        line = ctx.lines[lineno - 1]
        guard = _GUARD_RE.search(line)
        if not guard:
            continue
        field = _SELF_ATTR_RE.search(line)
        if field:
            guards[field.group(1)] = guard.group(1)
            continue
        decl = _FIELD_DECL_RE.match(line)
        if decl:
            guards[decl.group(1)] = guard.group(1)
    return guards


def _lock_attr(expr: ast.AST, locknames: Set[str]) -> Optional[str]:
    """The ``X`` of a ``with self.X:`` item when X plausibly is a lock."""
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id == "self":
            name = expr.attr
            if name in locknames or "lock" in name.lower() or name == "cond":
                return name
    return None


def _walk_method(nodes, held: Set[str], locknames: Set[str], visit) -> None:
    """Visit every node with the set of currently-held locks.

    Nested function/class definitions are skipped: closures may run
    after the lock is released, so charging them to the enclosing
    ``with`` would be wrong in both directions.
    """
    for node in nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                _walk_method([item.context_expr], held, locknames, visit)
                lock = _lock_attr(item.context_expr, locknames)
                if lock:
                    acquired.add(lock)
            _walk_method(node.body, held | acquired, locknames, visit)
            continue
        visit(node, held)
        _walk_method(list(ast.iter_child_nodes(node)), held, locknames, visit)


def _methods(cls: ast.ClassDef):
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _initial_held(method, guards: Dict[str, str]) -> Set[str]:
    if method.name.endswith("_locked"):
        return set(guards.values()) or {"_lock", "cond"}
    return set()


@register_rule(
    "REPRO-L001",
    "guarded-by fields accessed only under their lock",
)
def guarded_fields_need_lock(ctx: ModuleContext) -> List[Finding]:
    out: List[Finding] = []
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        guards = _class_guards(ctx, cls)
        if not guards:
            continue
        locknames = set(guards.values())
        for method in _methods(cls):
            if method.name == "__init__":
                continue  # construction precedes sharing

            def visit(node, held, _method=method):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guards
                    and guards[node.attr] not in held
                ):
                    out.append(
                        ctx.finding(
                            "REPRO-L001",
                            node,
                            f"self.{node.attr} is guarded-by {guards[node.attr]} but "
                            f"accessed outside 'with self.{guards[node.attr]}' in "
                            f"{_method.name}()",
                        )
                    )

            _walk_method(method.body, _initial_held(method, guards), locknames, visit)
    return out


def _in_scope(ctx: ModuleContext) -> bool:
    if ctx.module is None:
        return False
    return ctx.module == "repro.api.distributed" or ctx.module.startswith("repro.api.serve")


def _is_blocking(ctx: ModuleContext, call: ast.Call, held: Set[str]) -> Optional[str]:
    """A human-readable label when *call* can block, else ``None``."""
    resolved = ctx.resolve(call.func) or ""
    if resolved == "time.sleep" or resolved.startswith(_BLOCKING_PREFIXES):
        return resolved
    if resolved.startswith(_SAFE_RESOLVED_PREFIXES):
        return None
    if isinstance(call.func, ast.Name) and resolved.rpartition(".")[2] in _BLOCKING_NAMES:
        return f"{resolved}()"
    if isinstance(call.func, ast.Attribute) and call.func.attr in _BLOCKING_ATTRS:
        receiver = call.func.value
        if isinstance(receiver, ast.Constant):
            return None  # "sep".join(...) and friends
        if call.func.attr in ("wait", "wait_for"):
            lock = _lock_attr(receiver, held)
            if lock is not None and lock in held:
                return None  # Condition.wait releases the held lock
        return f".{call.func.attr}()"
    return None


@register_rule(
    "REPRO-L002",
    "no blocking call while holding a lock (serve/distributed)",
)
def no_blocking_under_lock(ctx: ModuleContext) -> List[Finding]:
    if not _in_scope(ctx):
        return []
    out: List[Finding] = []
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        guards = _class_guards(ctx, cls)
        locknames = set(guards.values())
        for method in _methods(cls):

            def visit(node, held, _method=method):
                if not held or not isinstance(node, ast.Call):
                    return
                label = _is_blocking(ctx, node, held)
                if label:
                    out.append(
                        ctx.finding(
                            "REPRO-L002",
                            node,
                            f"blocking call {label} in {_method.name}() while holding "
                            f"{sorted(held)}; release the lock first",
                        )
                    )

            _walk_method(method.body, _initial_held(method, guards), locknames, visit)
    return out

"""Developer tooling that ships with the library.

The only resident so far is :mod:`repro.devtools.lint` — the
contract-aware static analysis behind ``python -m repro lint``.  It is
deliberately stdlib-only (``ast`` + ``re``): the lint CI job must be
able to *parse* the whole tree without executing it, and the one rule
that does import the package (the registry-signature audit) degrades to
a no-op when the runtime dependencies are absent.
"""

from .lint import Finding, Rule, iter_rules, lint_paths, lint_source

__all__ = ["Finding", "Rule", "iter_rules", "lint_paths", "lint_source"]

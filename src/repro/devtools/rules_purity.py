"""Purity contract rules (``REPRO-P00x``).

Contract (DESIGN.md §2.10): a protocol that declares a
``tick_footprint`` (opting into hazard-batched execution) promises that
``tick_values`` is a pure function of ``(state, own, observed)`` — the
engine pre-draws every sample, may evaluate ticks speculatively, and
replays them across engines expecting identical values.  Mutating
``self`` or an argument (**REPRO-P001**) or drawing fresh randomness
(**REPRO-P002**) inside the hook silently de-synchronizes the engines.

**REPRO-P003** is the registry-signature audit: registered
``ParamSpec`` metadata must match what the factory actually accepts, so
``repro simulate --param k=3`` never dies inside ``__init__`` with a
``TypeError`` that the registry promised could not happen.  It is a
``scope="project"`` rule — it imports the package and inspects live
signatures, and degrades to a no-op when the runtime deps are missing.
"""

from __future__ import annotations

import ast
import inspect
from typing import List, Optional, Sequence, Set

from .lint import Finding, ModuleContext, register_rule

__all__ = []

#: Generator draw methods (numpy Generator + RandomState surface).
_DRAW_METHODS = {
    "binomial", "bytes", "choice", "exponential", "geometric", "integers",
    "multinomial", "normal", "permutation", "permuted", "poisson",
    "rand", "randint", "randn", "random", "shuffle", "standard_normal",
    "uniform",
}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "add", "append", "clear", "discard", "extend", "fill", "insert",
    "itemset", "pop", "popitem", "put", "remove", "reverse",
    "setdefault", "sort", "update",
}


def _footprint_classes(tree: ast.AST):
    """(class, tick_values def) pairs for classes declaring a footprint."""
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        declares = False
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
                value: Optional[ast.AST] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names = [stmt.target.id]
                value = stmt.value
            else:
                continue
            if "tick_footprint" in names and not (
                isinstance(value, ast.Constant) and value.value is None
            ):
                declares = True  # the base class's `= None` opt-out is fine
        if not declares:
            continue
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "tick_values":
                yield cls, stmt


def _root_name(node: ast.AST) -> Optional[str]:
    """The base Name of an Attribute/Subscript chain (``a`` in ``a.b[c].d``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _param_names(fn: ast.FunctionDef) -> Set[str]:
    args = fn.args
    names = {a.arg for a in args.args + args.kwonlyargs + args.posonlyargs}
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    return names


@register_rule(
    "REPRO-P001",
    "tick_values must not mutate self or its arguments",
)
def tick_values_no_mutation(ctx: ModuleContext) -> List[Finding]:
    out: List[Finding] = []
    for cls, fn in _footprint_classes(ctx.tree):
        frozen = _param_names(fn)
        for node in ast.walk(fn):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in frozen:
                        out.append(
                            ctx.finding(
                                "REPRO-P001",
                                target,
                                f"{cls.name}.tick_values mutates {root!r}; the hook "
                                "must be pure (engines replay it speculatively)",
                            )
                        )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                root = _root_name(node.func.value)
                if root in frozen:
                    out.append(
                        ctx.finding(
                            "REPRO-P001",
                            node,
                            f"{cls.name}.tick_values calls .{node.func.attr}() on "
                            f"{root!r}; the hook must be pure",
                        )
                    )
    return out


@register_rule(
    "REPRO-P002",
    "tick_values must not draw randomness",
)
def tick_values_no_draws(ctx: ModuleContext) -> List[Finding]:
    out: List[Finding] = []
    for cls, fn in _footprint_classes(ctx.tree):
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func) or ""
            draw = resolved.startswith("numpy.random.") or (
                isinstance(node.func, ast.Attribute) and node.func.attr in _DRAW_METHODS
            )
            if draw:
                out.append(
                    ctx.finding(
                        "REPRO-P002",
                        node,
                        f"{cls.name}.tick_values draws randomness; samples are "
                        "pre-drawn by the engine and arrive in 'observed'",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# REPRO-P003: registry-signature audit (project scope)
# ---------------------------------------------------------------------------
def _locate(factory) -> Optional[tuple]:
    try:
        target = inspect.unwrap(factory)
        path = inspect.getsourcefile(target)
        if path is None:
            return None
        _, lineno = inspect.getsourcelines(target)
        return path, lineno
    except (OSError, TypeError):
        return None


def _audit_factory(factory, params, n_positional: int, label: str) -> List[Finding]:
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):
        return []
    location = _locate(factory)
    if location is None:
        return []
    path, lineno = location

    def finding(message: str) -> Finding:
        return Finding("REPRO-P003", path, lineno, 0, message)

    out: List[Finding] = []
    sig_params = list(sig.parameters.values())
    # The first n_positional parameters are filled positionally by the
    # runner (topologies/initials take `n`); the rest must be
    # keyword-reachable.
    remainder = sig_params[n_positional:]
    keyword_ok = {
        p.name
        for p in remainder
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    has_var_kw = any(p.kind is inspect.Parameter.VAR_KEYWORD for p in sig_params)
    declared = {spec.name: spec for spec in params}
    for spec in params:
        if spec.name not in keyword_ok and not has_var_kw:
            out.append(
                finding(
                    f"{label} declares ParamSpec {spec.name!r} but the factory "
                    f"signature {sig} does not accept it"
                )
            )
    for p in remainder:
        if p.kind in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD):
            continue
        if p.default is not inspect.Parameter.empty:
            continue
        spec = declared.get(p.name)
        if spec is None:
            out.append(
                finding(
                    f"{label}: factory parameter {p.name!r} has no default but no "
                    "ParamSpec declares it; building from a spec would raise TypeError"
                )
            )
        elif not spec.required:
            out.append(
                finding(
                    f"{label}: factory parameter {p.name!r} has no default but its "
                    "ParamSpec is not marked required=True"
                )
            )
    return out


@register_rule(
    "REPRO-P003",
    "registered ParamSpec metadata matches factory signatures",
    scope="project",
)
def registry_signature_audit(files: Sequence) -> List[Finding]:
    try:
        import repro  # noqa: F401 - populates the registries
        from repro.api import registry
    except Exception:
        return []  # linting outside a working install: parse-only rules still ran
    out: List[Finding] = []
    plain = [
        (registry.TOPOLOGIES, 1, "topology"),
        (registry.INITIALS, 1, "initial"),
        (registry.DELAYS, 0, "delay"),
        (registry.STOPS, 0, "stop"),
        # fault wrappers take the protocol to wrap as their positional arg
        (registry.FAULTS, 1, "fault"),
    ]
    for reg, n_positional, kind in plain:
        for name in reg.names():
            entry = reg.get(name)
            out.extend(
                _audit_factory(entry.factory, entry.params, n_positional, f"{kind} {name!r}")
            )
    for name in registry.PROTOCOLS.names():
        entry = registry.PROTOCOLS.get(name)
        for realisation in ("counts", "synchronous", "sequential"):
            factory = getattr(entry, realisation)
            if factory is None:
                continue
            out.extend(
                _audit_factory(
                    factory, entry.params, 0, f"protocol '{name}/{realisation}'"
                )
            )
    return out

"""Contract-aware static analysis (``python -m repro lint``).

The repo's core guarantee — serial == process == distributed ==
warm-cache, value-for-value (DESIGN.md §2.5/§2.8) — rests on
conventions that used to live only in prose: all randomness flows
through :mod:`repro.core.rng`, cache keys hash canonical JSON only,
serve/distributed shared state is touched only under its lock, and the
hazard-batched ``tick_values`` hook is pure.  This module machine-checks
them with an AST-based rule set (DESIGN.md §2.10 maps every rule ID to
the contract it enforces):

=============  ==========================================================
rule family    contract
=============  ==========================================================
REPRO-R00x     RNG discipline: no global seeding, no unseeded generator
               construction outside the rng seam, no legacy global-state
               draws, no module-level RNG state
REPRO-H00x     hash/cache hygiene on the spec-canonicalization key path:
               no ``hash()``/``id()``, no un-``sort_keys`` ``json.dumps``,
               no set iteration
REPRO-C00x     clock discipline in serve/distributed: ``time.monotonic``
               for deadlines and leases, wall time for display only
REPRO-L00x     lock discipline: ``# guarded-by: <lock>`` fields accessed
               only under ``with self.<lock>``; no blocking call while a
               lock is held
REPRO-P00x     purity contracts: ``tick_values`` mutates nothing and
               draws nothing; registered ``ParamSpec`` metadata matches
               factory signatures (import-time introspection)
=============  ==========================================================

Suppress a finding on its line with ``# repro: lint-ignore[RULE-ID]``
(comma-separate several ids; anything after the bracket is a free-form
reason).  Suppressions are per-line and deliberate — the sweep that
introduced the linter fixed every finding it could and annotated the
rest with reasons, so a new finding is always news.

The framework is pluggable: a rule is a function registered with
:func:`register_rule`, either per-module (receives a
:class:`ModuleContext`) or per-invocation (``scope="project"``, receives
the linted file list).  ``repro list`` prints the registry.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Rule",
    "ModuleContext",
    "LintUsageError",
    "register_rule",
    "load_rules",
    "iter_rules",
    "lint_source",
    "lint_paths",
    "add_cli_arguments",
    "run_cli",
]

#: ``# repro: lint-ignore[REPRO-X000, REPRO-Y000] optional reason``
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_\-,\s\*]+)\]")

#: Pseudo-rule id for files the parser rejects (always reported).
PARSE_RULE = "REPRO-E000"


class LintUsageError(ValueError):
    """Bad invocation (unknown rule id, missing path) — exit code 2."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def format_github(self) -> str:
        """GitHub Actions ``::error`` annotation form."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.rule}::{self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Rule:
    """One registered checker.

    ``scope`` is ``"module"`` (``check(ctx: ModuleContext)``, run once
    per file) or ``"project"`` (``check(files: Sequence[Path])``, run
    once per invocation — used by checks that need to *import* the
    package, like the registry-signature audit).
    """

    rule_id: str
    description: str
    check: Callable
    scope: str = "module"
    default: bool = True


_RULES: Dict[str, Rule] = {}


def register_rule(rule_id: str, description: str, *, scope: str = "module", default: bool = True):
    """Decorator: register a checker under *rule_id*."""

    def _register(fn: Callable) -> Callable:
        if rule_id in _RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        _RULES[rule_id] = Rule(rule_id, description, fn, scope=scope, default=default)
        return fn

    return _register


def load_rules() -> Dict[str, Rule]:
    """Import the shipped rule modules (idempotent); return the registry."""
    from . import (  # noqa: F401 - imported for their registration side effect
        rules_clock,
        rules_hash,
        rules_locks,
        rules_purity,
        rules_rng,
    )

    return dict(_RULES)


def iter_rules() -> List[Rule]:
    """Every registered rule, sorted by id (the ``repro list`` section)."""
    rules = load_rules()
    return [rules[rule_id] for rule_id in sorted(rules)]


# ---------------------------------------------------------------------------
# module context: what a module-scope rule sees
# ---------------------------------------------------------------------------
def module_name(path) -> Optional[str]:
    """Derive the dotted module name by walking up ``__init__.py`` dirs.

    ``src/repro/api/cache.py`` → ``repro.api.cache``; returns ``None``
    for paths outside any package (rules then apply their broadest
    scope interpretation, which for path-scoped rules means *skip*).
    """
    p = Path(path)
    if p.suffix != ".py":
        return None
    parts = [] if p.name == "__init__.py" else [p.stem]
    directory = p.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else None


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number → suppressed rule ids on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            ids = {token.strip() for token in match.group(1).split(",") if token.strip()}
            if ids:
                out[lineno] = ids
    return out


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def collect_aliases(tree: ast.AST, module: Optional[str], is_package: bool = False) -> Dict[str, str]:
    """Local name → absolute dotted target, from the import statements.

    ``import numpy as np`` binds ``np → numpy``; ``from numpy.random
    import default_rng`` binds ``default_rng → numpy.random.default_rng``;
    relative imports resolve against *module* when it is known.
    """
    aliases: Dict[str, str] = {}
    parts = module.split(".") if module else []
    package = parts if is_package else parts[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                if not package or node.level - 1 > len(package):
                    continue
                prefix = package[: len(package) - (node.level - 1)]
                base = ".".join(prefix + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{base}.{alias.name}" if base else alias.name
    return aliases


class ModuleContext:
    """Parsed source plus everything module-scope rules share."""

    def __init__(self, source: str, path="<string>", module: Optional[str] = None):
        self.source = source
        self.path = str(path)
        self.module = module if module is not None else module_name(self.path)
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)
        self.suppressions = parse_suppressions(self.lines)
        is_package = self.path.endswith("__init__.py")
        self.aliases = collect_aliases(self.tree, self.module, is_package=is_package)

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id,
            self.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of *node* with import aliases expanded."""
        name = dotted_name(node)
        if name is None:
            return None
        head, sep, rest = name.partition(".")
        target = self.aliases.get(head, head)
        return f"{target}.{rest}" if sep else target


# ---------------------------------------------------------------------------
# running rules
# ---------------------------------------------------------------------------
def _select_rules(rules: Dict[str, Rule], select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        return [rules[rule_id] for rule_id in sorted(rules) if rules[rule_id].default]
    unknown = sorted(set(select) - set(rules))
    if unknown:
        raise LintUsageError(
            f"unknown lint rule(s) {unknown}; registered: {', '.join(sorted(rules))}"
        )
    return [rules[rule_id] for rule_id in sorted(set(select))]


def _suppressed(finding: Finding, table: Dict[str, Dict[int, Set[str]]]) -> bool:
    ids = table.get(finding.path, {}).get(finding.line)
    return bool(ids) and (finding.rule in ids or "*" in ids)


def lint_source(
    source: str,
    path="<string>",
    module: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the module-scope rules over one source string.

    The fixture-level entry point the linter's own tests use: *module*
    forces the dotted-module scope (e.g. ``"repro.api.cache"``) without
    needing a real file on disk.  Suppression comments in *source* are
    honoured.  Project-scope rules (which import the installed package)
    do not run here — use :func:`lint_paths`.
    """
    rules = load_rules()
    selected = _select_rules(rules, select)
    ctx = ModuleContext(source, path=path, module=module)
    findings: List[Finding] = []
    for rule in selected:
        if rule.scope != "module":
            continue
        findings.extend(rule.check(ctx))
    table = {ctx.path: ctx.suppressions}
    return sorted((f for f in findings if not _suppressed(f, table)), key=Finding.sort_key)


def iter_python_files(paths: Sequence) -> List[Path]:
    """Expand files/directories into the sorted ``.py`` file list."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                sorted(f for f in p.rglob("*.py") if "__pycache__" not in f.parts)
            )
        elif p.is_file():
            if p.suffix == ".py":
                out.append(p)
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return out


def lint_paths(
    paths: Sequence, select: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns ``(findings, files_checked)``.

    Module-scope rules run per file; project-scope rules run once and
    their findings are kept only when they land in a linted file (so
    linting a single module never surfaces repo-wide noise).  Files the
    parser rejects yield one ``REPRO-E000`` finding instead of aborting
    the run.
    """
    rules = load_rules()
    selected = _select_rules(rules, select)
    files = iter_python_files(paths)
    findings: List[Finding] = []
    table: Dict[str, Dict[int, Set[str]]] = {}
    real_to_given: Dict[str, str] = {}
    for path in files:
        given = str(path)
        real_to_given[str(path.resolve())] = given
        try:
            source = path.read_text(encoding="utf-8")
            ctx = ModuleContext(source, path=given)
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            findings.append(Finding(PARSE_RULE, given, int(lineno), 0, f"unparseable: {exc}"))
            continue
        table[given] = ctx.suppressions
        for rule in selected:
            if rule.scope == "module":
                findings.extend(rule.check(ctx))
    for rule in selected:
        if rule.scope != "project":
            continue
        for finding in rule.check(files):
            given = real_to_given.get(str(Path(finding.path).resolve()))
            if given is None:
                continue  # outside the linted set
            findings.append(
                Finding(finding.rule, given, finding.line, finding.col, finding.message)
            )
    kept = [f for f in findings if not _suppressed(f, table)]
    return sorted(kept, key=Finding.sort_key), len(files)


# ---------------------------------------------------------------------------
# CLI (`python -m repro lint`)
# ---------------------------------------------------------------------------
def add_cli_arguments(parser) -> None:
    """Options for the ``lint`` subcommand (single source of truth)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULE,...",
        help="comma-separated rule ids to run (default: every default-on rule; "
        "see 'repro list' for the registry)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit {version, files, count, findings} as JSON on stdout",
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="also emit findings as GitHub Actions ::error annotations",
    )


def run_cli(args, error) -> int:
    """Execute the parsed ``lint`` args; exit 0 clean, 1 findings, 2 usage."""
    select = None
    if args.select:
        select = [token.strip() for token in args.select.split(",") if token.strip()]
    try:
        findings, files_checked = lint_paths(args.paths, select=select)
    except LintUsageError as exc:
        error(str(exc))  # argparse error(): prints usage and exits 2
        return 2
    if args.json:
        payload = {
            "version": 1,
            "files": files_checked,
            "count": len(findings),
            "findings": [f.to_dict() for f in findings],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
    if args.github:
        for finding in findings:
            print(finding.format_github())
    print(
        f"repro lint: {len(findings)} finding(s) in {files_checked} file(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0

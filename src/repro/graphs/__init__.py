"""Topologies: the complete graph of the paper plus sparse companions."""

from .complete import CompleteGraph
from .dynamic import ChurnTopology
from .families import barabasi_albert, hypercube, random_regular, star, watts_strogatz
from .nx_adapter import from_networkx
from .sparse import AdjacencyTopology, erdos_renyi, ring, torus
from .topology import DynamicTopology, Topology

__all__ = [
    "Topology",
    "DynamicTopology",
    "ChurnTopology",
    "CompleteGraph",
    "AdjacencyTopology",
    "ring",
    "torus",
    "erdos_renyi",
    "barabasi_albert",
    "hypercube",
    "random_regular",
    "star",
    "watts_strogatz",
    "from_networkx",
]

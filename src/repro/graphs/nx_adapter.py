"""Adapter from :mod:`networkx` graphs to the :class:`Topology` API.

networkx is an optional dependency; importing this module without it
raises a clear error only when the adapter is actually used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.exceptions import TopologyError
from .sparse import AdjacencyTopology

__all__ = ["from_networkx"]


def from_networkx(graph) -> AdjacencyTopology:
    """Build an :class:`AdjacencyTopology` from an undirected nx graph.

    Node labels may be arbitrary hashables; they are relabelled to
    ``0..n-1`` in sorted-by-insertion order.  Directed graphs and graphs
    with isolated nodes are rejected.
    """
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise TopologyError("networkx is not installed; `pip install repro[graphs]`") from exc

    if graph.is_directed():
        raise TopologyError("only undirected graphs are supported")
    nodes = list(graph.nodes())
    index = {label: i for i, label in enumerate(nodes)}
    adjacency = [[index[v] for v in graph.neighbors(u)] for u in nodes]
    return AdjacencyTopology(adjacency)

"""Adapter from :mod:`networkx` graphs to the :class:`Topology` API.

networkx is an optional dependency; importing this module without it
raises a clear error only when the adapter is actually used.

Imported graphs are converted to CSR form
(:class:`~repro.graphs.sparse.AdjacencyTopology`) **once, at
construction**: the edge list is pulled out of networkx in one pass and
sorted into offset/flat arrays with numpy (no per-node Python loop), so
converted graphs inherit the vectorised ``sample_neighbors_many`` /
``sample_neighbors_block`` gathers — and with them the hazard-batched
tick engines — instead of the base-class per-node sampling fallback.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import TopologyError
from .sparse import AdjacencyTopology

__all__ = ["from_networkx"]


def from_networkx(graph) -> AdjacencyTopology:
    """Build an :class:`AdjacencyTopology` from an undirected nx graph.

    Node labels may be arbitrary hashables; they are relabelled to
    ``0..n-1`` in sorted-by-insertion order.  Directed graphs and graphs
    with isolated nodes are rejected.
    """
    try:
        import networkx as nx  # noqa: F401
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise TopologyError("networkx is not installed; `pip install repro[graphs]`") from exc

    if graph.is_directed():
        raise TopologyError("only undirected graphs are supported")
    index = {label: i for i, label in enumerate(graph.nodes())}
    n = len(index)
    if n < 2:
        raise TopologyError(f"need at least 2 nodes, got {n}")
    if graph.is_multigraph():
        # Parallel edges collapse under neighbour iteration; keep the
        # simple per-node path for this rare case.
        adjacency = [[index[v] for v in graph.neighbors(u)] for u in graph.nodes()]
        return AdjacencyTopology(adjacency)
    edges = np.array(
        [(index[u], index[v]) for u, v in graph.edges()], dtype=np.int64
    ).reshape(-1, 2)
    # Undirected: every edge contributes both directions; a self-loop
    # contributes a single adjacency entry (matching nx neighbour
    # iteration, which yields the node once).
    proper = edges[edges[:, 0] != edges[:, 1]]
    heads = np.concatenate([edges[:, 0], proper[:, 1]])
    tails = np.concatenate([edges[:, 1], proper[:, 0]])
    degrees = np.bincount(heads, minlength=n)
    if (degrees == 0).any():
        bad = int(np.argmax(degrees == 0))
        raise TopologyError(f"node {bad} is isolated; sampling protocols need degree >= 1")
    order = np.argsort(heads, kind="stable")
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return AdjacencyTopology.from_csr(offsets, tails[order])

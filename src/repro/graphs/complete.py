"""The complete graph ``K_n`` with O(1)-memory uniform sampling.

This is the topology every theorem in the paper is stated for.  A
neighbour of ``u`` is a uniform node different from ``u``; we sample by
drawing from ``0..n-2`` and shifting values ``>= u`` up by one, which is
exactly uniform over the ``n-1`` neighbours and vectorises cleanly.
"""

from __future__ import annotations

import numpy as np

from ..api.registry import register_topology
from ..core.exceptions import TopologyError
from .topology import Topology

__all__ = ["CompleteGraph"]


class CompleteGraph(Topology):
    """``K_n``: every pair of distinct nodes is connected."""

    def __init__(self, n: int):
        if n < 2:
            raise TopologyError(f"K_n needs at least 2 nodes, got {n}")
        self.n = int(n)

    def degree(self, node: int) -> int:
        self._check_node(node)
        return self.n - 1

    def sample_neighbor(self, node: int, rng: np.random.Generator) -> int:
        self._check_node(node)
        draw = int(rng.integers(0, self.n - 1))
        return draw + 1 if draw >= node else draw

    def sample_neighbors(self, node: int, count: int, rng: np.random.Generator) -> np.ndarray:
        self._check_node(node)
        draws = rng.integers(0, self.n - 1, size=count)
        return np.where(draws >= node, draws + 1, draws).astype(np.int64)

    def sample_neighbors_many(self, nodes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        draws = rng.integers(0, self.n - 1, size=nodes.shape)
        return np.where(draws >= nodes, draws + 1, draws).astype(np.int64)

    def sample_neighbors_block(self, nodes: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        draws = rng.integers(0, self.n - 1, size=(nodes.size, count))
        shifted = np.where(draws >= nodes[:, None], draws + 1, draws)
        return shifted.astype(np.int64)

    def is_complete(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"CompleteGraph(n={self.n})"


register_topology(
    "complete",
    CompleteGraph,
    description="The paper's K_n: every pair of distinct nodes connected, O(1) uniform sampling",
)

"""Topology abstraction.

The protocols in the paper live on the complete graph ``K_n`` and only
ever *sample neighbours uniformly at random* — they never enumerate
edges.  The :class:`Topology` interface therefore exposes exactly that
operation (scalar and vectorised), which lets the complete graph be
represented in O(1) memory and lets the same protocol code run on
sparse graphs for exploratory use.

All sampling is **with replacement** and, on ``K_n``, matches the
paper's model where a node may sample itself is *excluded*: the paper
says "samples some neighbors", and on a clique the neighbours of ``u``
are everyone but ``u``.  ``CompleteGraph`` therefore excludes self-
samples; sparse topologies sample uniformly from the adjacency list.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..core.exceptions import TopologyError

__all__ = ["Topology", "DynamicTopology"]


class Topology(ABC):
    """Uniform neighbour sampling over a fixed node set ``0..n-1``."""

    #: number of nodes; concrete classes must set this in ``__init__``.
    n: int

    # ------------------------------------------------------------------
    # required interface
    # ------------------------------------------------------------------
    @abstractmethod
    def sample_neighbor(self, node: int, rng: np.random.Generator) -> int:
        """Return one uniformly random neighbour of *node*."""

    @abstractmethod
    def sample_neighbors(self, node: int, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return *count* i.i.d. uniform neighbours of *node* (with replacement)."""

    @abstractmethod
    def degree(self, node: int) -> int:
        """Number of neighbours of *node*."""

    # ------------------------------------------------------------------
    # vectorised interface (default: loop; complete graph overrides)
    # ------------------------------------------------------------------
    def sample_neighbors_many(self, nodes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One uniform neighbour for each entry of *nodes* (vectorised hook)."""
        return np.array([self.sample_neighbor(int(u), rng) for u in nodes], dtype=np.int64)

    def sample_neighbor_pairs(self, nodes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Two i.i.d. uniform neighbours for each entry of *nodes*, shape ``(len, 2)``."""
        return self.sample_neighbors_block(nodes, 2, rng)

    def sample_neighbors_block(self, nodes: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
        """*count* i.i.d. uniform neighbours per entry of *nodes*, shape ``(len, count)``.

        The presampling hook of the hazard-batched tick paths: one call
        yields the full ``(B, samples)`` target-identity matrix of a
        tick block.  The default draws column by column through
        :meth:`sample_neighbors_many`; ``CompleteGraph`` and
        ``AdjacencyTopology`` override it with a single block draw.
        """
        columns = [self.sample_neighbors_many(nodes, rng) for _ in range(count)]
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------
    # shared validation helpers
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise TopologyError(f"node {node} out of range 0..{self.n - 1}")

    def is_complete(self) -> bool:
        """True for ``K_n``; the counts-based engines require this."""
        return False

    def __len__(self) -> int:
        return self.n


class DynamicTopology(Topology):
    """A topology whose edge set changes at fixed tick *epochs*.

    The hazard-batched fast paths presample a whole block of target
    identities from a single graph snapshot, which is only exact while
    the graph does not change under the block.  Dynamic topologies make
    that contract explicit:

    * the edge set is a **deterministic pure function of the epoch
      index** — :meth:`advance_to` materialises epoch ``e`` from the
      initial graph and the topology's own churn seed, never from an
      engine RNG, so replaying any epoch (forwards or from scratch)
      yields the identical graph;
    * the graph is constant within an epoch of :attr:`epoch_ticks`
      sequential ticks; the tick engines cut their presampling blocks
      at epoch boundaries (tick ``t`` samples from epoch ``t //
      epoch_ticks``), which keeps the hazard-free-prefix argument —
      and hence bit-exactness against the per-tick reference loop on
      the same draws — intact.

    Only the sequential model drives dynamic topologies: the epoch
    clock is defined in ticks, and
    :func:`repro.engine.dispatch.fastest_engine` rejects the
    continuous and synchronous models for them.
    """

    #: epoch length in sequential ticks; the graph is constant within
    #: an epoch.  Concrete classes must set this in ``__init__``.
    epoch_ticks: int

    @abstractmethod
    def advance_to(self, epoch: int) -> None:
        """Materialise the edge set of epoch *epoch* (0 = initial graph).

        Must be callable with any non-negative epoch in any order —
        engines call ``advance_to(0)`` at run start so replications on
        one shared topology object stay independent.
        """

"""Edge churn: dynamic topologies for the robustness campaigns.

:class:`ChurnTopology` wraps any :class:`~repro.graphs.sparse.
AdjacencyTopology` and perturbs its sampling structure once per epoch
(:attr:`~repro.graphs.topology.DynamicTopology.epoch_ticks` sequential
ticks) under one of two rules:

``"rewire"``
    Each adjacency *slot* is independently redirected with probability
    ``churn_rate`` to a fresh uniform node (never the owner itself) —
    sustained random edge drift.
``"rebirth"``
    Each *node* independently dies and is reborn with probability
    ``churn_rate``: it keeps its colour but loses every outgoing link
    and draws a fresh uniform set — node-level churn.

Both rules operate on the directed sampling structure (who *u* can
sample), which is the only thing the protocols read; reciprocal slots
are perturbed independently, so a churned graph is generally directed
even when the seed graph was symmetric.  Degrees never change, which
keeps the CSR shape — and therefore the vectorised presampling fast
path of :meth:`~repro.graphs.sparse.AdjacencyTopology.
sample_neighbors_block` — intact across epochs.

Determinism: epoch ``e`` draws from its own tagged stream
``SeedSequence(churn_seed, spawn_key=(TAG, e))`` and is applied on top
of epoch ``e - 1``, so the edge set of any epoch is a pure function of
(initial graph, ``churn_seed``, ``e``) — :meth:`advance_to` replays
identically forwards or from scratch, which is what the engines'
run-start ``advance_to(0)`` reset and the per-tick reference
cross-check in the tests rely on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..api.registry import ParamSpec, register_topology
from ..core.exceptions import TopologyError
from .sparse import AdjacencyTopology, ring, torus
from .topology import DynamicTopology

__all__ = ["ChurnTopology"]

#: spawn-key tag of the per-epoch churn streams ("CHRN" in ASCII).
_EPOCH_TAG = 0x4348524E

_RULES = ("rewire", "rebirth")


class ChurnTopology(AdjacencyTopology, DynamicTopology):
    """Epoch-clocked edge churn over a frozen-degree CSR graph."""

    def __init__(
        self,
        base: AdjacencyTopology,
        churn_rate: float,
        epoch_ticks: Optional[int] = None,
        churn_seed: int = 0,
        rule: str = "rewire",
    ):
        if not isinstance(base, AdjacencyTopology):
            raise TopologyError(
                f"ChurnTopology wraps an AdjacencyTopology, got {type(base).__name__}"
            )
        if not 0.0 <= churn_rate <= 1.0:
            raise TopologyError(f"churn_rate must be in [0, 1], got {churn_rate}")
        if rule not in _RULES:
            raise TopologyError(f"unknown churn rule {rule!r}; expected one of {_RULES}")
        # Adopt the base CSR: offsets/degrees stay frozen for the
        # lifetime of the topology, only the flat neighbour array
        # mutates between epochs.
        self.n = base.n
        self._offsets = base._offsets.copy()
        self._degrees = base._degrees.copy()
        self._uniform_degree = base._uniform_degree
        self._flat0 = base._flat.copy()
        self._flat = base._flat.copy()
        self._slot_owner = np.repeat(np.arange(self.n, dtype=np.int64), self._degrees)
        self.churn_rate = float(churn_rate)
        self.churn_seed = int(churn_seed)
        self.rule = rule
        self.epoch_ticks = self.n if epoch_ticks is None else int(epoch_ticks)
        if self.epoch_ticks < 1:
            raise TopologyError(f"epoch_ticks must be positive, got {self.epoch_ticks}")
        self.epoch = 0

    def _apply_epoch(self, epoch: int) -> None:
        """Overlay epoch *epoch*'s churn draws onto the current edge set."""
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.churn_seed, spawn_key=(_EPOCH_TAG, epoch))
        )
        if self.rule == "rewire":
            mask = rng.random(self._flat.size) < self.churn_rate
        else:  # rebirth: whole rows of dying nodes redraw at once
            reborn = rng.random(self.n) < self.churn_rate
            mask = reborn[self._slot_owner]
        owners = self._slot_owner[mask]
        if owners.size:
            # Uniform over the n - 1 non-owner nodes: draw from n - 1
            # and shift past the owner (self-loops would let a node
            # observe itself, which no protocol here models).
            draws = rng.integers(0, self.n - 1, size=owners.size)
            draws += draws >= owners
            self._flat[mask] = draws

    def advance_to(self, epoch: int) -> None:
        epoch = int(epoch)
        if epoch < 0:
            raise TopologyError(f"epoch must be non-negative, got {epoch}")
        if epoch < self.epoch:
            # Epochs compose forwards only; going back restarts from
            # the pristine copy and replays — same pure function.
            self._flat[:] = self._flat0
            self.epoch = 0
        while self.epoch < epoch:
            self.epoch += 1
            self._apply_epoch(self.epoch)


_CHURN_PARAMS = [
    ParamSpec("churn_rate", kind="float", required=True, doc="per-epoch churn probability"),
    ParamSpec("epoch_ticks", kind="int", doc="epoch length in ticks (default: n)"),
    ParamSpec("churn_seed", kind="int", default=0, doc="seed of the per-epoch churn streams"),
    ParamSpec("rule", kind="str", default="rewire", doc="churn rule: 'rewire' or 'rebirth'"),
]


@register_topology(
    "dynamic-ring",
    params=_CHURN_PARAMS,
    description="Cycle graph C_n under per-epoch edge churn (sequential model only)",
)
def _dynamic_ring(
    n: int,
    churn_rate: float,
    epoch_ticks: int = None,
    churn_seed: int = 0,
    rule: str = "rewire",
) -> ChurnTopology:
    """Registry adapter: a churned :func:`~repro.graphs.sparse.ring`."""
    return ChurnTopology(
        ring(n), churn_rate, epoch_ticks=epoch_ticks, churn_seed=churn_seed, rule=rule
    )


@register_topology(
    "dynamic-torus",
    params=_CHURN_PARAMS
    + [ParamSpec("rows", kind="int", doc="grid rows (default: the most square factorisation of n)")],
    description="2-D torus grid under per-epoch edge churn (sequential model only)",
)
def _dynamic_torus(
    n: int,
    churn_rate: float,
    epoch_ticks: int = None,
    churn_seed: int = 0,
    rule: str = "rewire",
    rows: int = None,
) -> ChurnTopology:
    """Registry adapter: a churned torus of ``rows x (n / rows)`` nodes."""
    if rows is None:
        rows = next(r for r in range(int(np.sqrt(n)), 0, -1) if n % r == 0)
    if rows < 1 or n % rows != 0:
        raise TopologyError(f"torus rows={rows} does not divide n={n}")
    return ChurnTopology(
        torus(rows, n // rows), churn_rate, epoch_ticks=epoch_ticks, churn_seed=churn_seed, rule=rule
    )

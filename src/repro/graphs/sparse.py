"""Sparse topologies stored in CSR (compressed adjacency) form.

The paper's results are for ``K_n``; these topologies exist so the same
protocol code can be explored on sparse communication graphs (one of
the example applications runs Two-Choices on a torus).  Construction
helpers build rings, 2-D tori and Erdős–Rényi graphs directly without
requiring networkx.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..api.registry import ParamSpec, register_topology
from ..core.exceptions import TopologyError
from ..core.rng import SeedLike, as_generator
from .topology import Topology

__all__ = ["AdjacencyTopology", "ring", "torus", "erdos_renyi"]


class AdjacencyTopology(Topology):
    """A general undirected graph with uniform neighbour sampling.

    Parameters
    ----------
    neighbors:
        For each node, the sequence of its neighbours.  Every node must
        have degree >= 1 (isolated nodes cannot participate in sampling
        protocols and are rejected).
    """

    def __init__(self, neighbors: Sequence[Sequence[int]]):
        n = len(neighbors)
        if n < 2:
            raise TopologyError(f"need at least 2 nodes, got {n}")
        degrees = np.array([len(adj) for adj in neighbors], dtype=np.int64)
        if (degrees == 0).any():
            bad = int(np.argmax(degrees == 0))
            raise TopologyError(f"node {bad} is isolated; sampling protocols need degree >= 1")
        self.n = n
        self._offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=self._offsets[1:])
        flat = np.empty(int(self._offsets[-1]), dtype=np.int64)
        for u, adj in enumerate(neighbors):
            row = np.asarray(list(adj), dtype=np.int64)
            if row.size and (row.min() < 0 or row.max() >= n):
                raise TopologyError(f"node {u} has a neighbour outside 0..{n - 1}")
            flat[self._offsets[u]:self._offsets[u + 1]] = row
        self._flat = flat
        self._degrees = degrees
        self._uniform_degree = int(degrees[0]) if (degrees == degrees[0]).all() else None

    def degree(self, node: int) -> int:
        self._check_node(node)
        return int(self._degrees[node])

    def neighbors_of(self, node: int) -> np.ndarray:
        """The adjacency row of *node* (read-only view)."""
        self._check_node(node)
        return self._flat[self._offsets[node]:self._offsets[node + 1]]

    def sample_neighbor(self, node: int, rng: np.random.Generator) -> int:
        self._check_node(node)
        deg = self._degrees[node]
        return int(self._flat[self._offsets[node] + rng.integers(0, deg)])

    def sample_neighbors(self, node: int, count: int, rng: np.random.Generator) -> np.ndarray:
        self._check_node(node)
        deg = self._degrees[node]
        picks = rng.integers(0, deg, size=count)
        return self._flat[self._offsets[node] + picks]

    def sample_neighbors_many(self, nodes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        degs = self._degrees[nodes]
        picks = (rng.random(nodes.shape) * degs).astype(np.int64)
        return self._flat[self._offsets[nodes] + picks]

    def sample_neighbors_block(self, nodes: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
        # One uniform draw per (tick, sample) slot, one CSR gather: the
        # presampling primitive of the hazard-batched tick paths.  On
        # regular graphs (ring, torus, hypercube, random-regular) the
        # row offsets are arithmetic, so the bounded-integer draw skips
        # the float scaling and the offsets gather entirely.
        nodes = np.asarray(nodes, dtype=np.int64)
        degree = self._uniform_degree
        if degree is not None:
            picks = rng.integers(0, degree, size=(nodes.size, count))
            return self._flat[nodes[:, None] * degree + picks]
        degs = self._degrees[nodes]
        picks = (rng.random((nodes.size, count)) * degs[:, None]).astype(np.int64)
        return self._flat[self._offsets[nodes][:, None] + picks]

    @classmethod
    def from_csr(cls, offsets: np.ndarray, flat: np.ndarray) -> "AdjacencyTopology":
        """Wrap prebuilt CSR arrays (``offsets: int64[n + 1]``, ``flat``)
        without the per-node Python construction loop of ``__init__`` —
        the constructor for vectorised importers (networkx adapter,
        generated families).  Validates the same invariants: at least
        two nodes, every degree >= 1, neighbours in ``0..n-1``.
        """
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        flat = np.ascontiguousarray(flat, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 3:
            raise TopologyError(f"need at least 2 nodes, got {max(offsets.size - 1, 0)}")
        n = offsets.size - 1
        if offsets[0] != 0 or offsets[-1] != flat.size:
            raise TopologyError("offsets must start at 0 and end at len(flat)")
        degrees = np.diff(offsets)
        if (degrees < 0).any():
            raise TopologyError("offsets must be non-decreasing")
        if (degrees == 0).any():
            bad = int(np.argmax(degrees == 0))
            raise TopologyError(f"node {bad} is isolated; sampling protocols need degree >= 1")
        if flat.size and (flat.min() < 0 or flat.max() >= n):
            raise TopologyError(f"neighbour index outside 0..{n - 1}")
        topology = cls.__new__(cls)
        topology.n = n
        topology._offsets = offsets
        topology._flat = flat
        topology._degrees = degrees
        topology._uniform_degree = int(degrees[0]) if (degrees == degrees[0]).all() else None
        return topology


def ring(n: int) -> AdjacencyTopology:
    """Cycle graph ``C_n`` (each node linked to its two cyclic neighbours)."""
    if n < 3:
        raise TopologyError(f"a ring needs at least 3 nodes, got {n}")
    return AdjacencyTopology([[(u - 1) % n, (u + 1) % n] for u in range(n)])


def torus(rows: int, cols: int) -> AdjacencyTopology:
    """2-D torus grid of ``rows x cols`` nodes with 4-neighbourhoods."""
    if rows < 3 or cols < 3:
        raise TopologyError(f"torus sides must be >= 3, got {rows}x{cols}")

    def node(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    adjacency: List[List[int]] = []
    for r in range(rows):
        for c in range(cols):
            adjacency.append([node(r - 1, c), node(r + 1, c), node(r, c - 1), node(r, c + 1)])
    return AdjacencyTopology(adjacency)


def erdos_renyi(n: int, p: float, seed: SeedLike = None, ensure_min_degree: int = 1) -> AdjacencyTopology:
    """Erdős–Rényi graph ``G(n, p)``.

    Because sampling protocols require degree >= 1, nodes that end up
    isolated are patched with ``ensure_min_degree`` random edges (set it
    to 0 to get a hard failure instead).
    """
    if not 0.0 <= p <= 1.0:
        raise TopologyError(f"edge probability must be in [0, 1], got {p}")
    rng = as_generator(seed)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    # Vectorised upper-triangle edge draws, processed in row blocks to
    # bound memory at O(n) per block.
    for u in range(n - 1):
        targets = np.arange(u + 1, n)
        hits = targets[rng.random(targets.size) < p]
        for v in hits:
            adjacency[u].append(int(v))
            adjacency[int(v)].append(u)
    for u in range(n):
        while len(adjacency[u]) < ensure_min_degree:
            v = int(rng.integers(0, n))
            if v != u and v not in adjacency[u]:
                adjacency[u].append(v)
                adjacency[v].append(u)
    return AdjacencyTopology(adjacency)


register_topology(
    "ring",
    ring,
    description="Cycle graph C_n",
)


@register_topology(
    "torus",
    params=[ParamSpec("rows", kind="int", doc="grid rows (default: the most square factorisation of n)")],
    description="2-D torus grid with 4-neighbourhoods; n must factor as rows x cols",
)
def _torus_of_n(n: int, rows: int = None) -> AdjacencyTopology:
    """Build a ``rows x (n / rows)`` torus for a node budget of *n*."""
    if rows is None:
        rows = next(r for r in range(int(np.sqrt(n)), 0, -1) if n % r == 0)
    if rows < 1 or n % rows != 0:
        raise TopologyError(f"torus rows={rows} does not divide n={n}")
    return torus(rows, n // rows)


@register_topology(
    "erdos-renyi",
    params=[
        ParamSpec("p", kind="float", required=True, doc="edge probability"),
        ParamSpec("graph_seed", kind="int", doc="seed for the random edge set"),
        ParamSpec("min_degree", kind="int", default=1, doc="patch isolated nodes up to this degree (0: fail)"),
    ],
    description="Erdos-Renyi G(n, p) with isolated nodes patched to min degree",
)
def _erdos_renyi_of_n(n: int, p: float, graph_seed: int = None, min_degree: int = 1) -> AdjacencyTopology:
    """Registry adapter for :func:`erdos_renyi`."""
    return erdos_renyi(n, p, seed=graph_seed, ensure_min_degree=min_degree)

"""Additional graph families for exploring the protocols off ``K_n``.

The paper's theorems are for the complete graph; these families let the
agent-based engines probe how the dynamics degrade on sparse and
irregular communication topologies (one of the example applications
does exactly that).  All constructors are self-contained — no networkx
required — and return :class:`~repro.graphs.sparse.AdjacencyTopology`.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from ..api.registry import ParamSpec, register_topology
from ..core.exceptions import TopologyError
from ..core.rng import SeedLike, as_generator
from .sparse import AdjacencyTopology

__all__ = ["hypercube", "star", "random_regular", "watts_strogatz", "barabasi_albert"]


def hypercube(dimension: int) -> AdjacencyTopology:
    """The ``d``-dimensional hypercube on ``2^d`` nodes."""
    if dimension < 1:
        raise TopologyError(f"dimension must be >= 1, got {dimension}")
    if dimension > 24:
        raise TopologyError(f"dimension {dimension} would allocate 2^{dimension} nodes")
    n = 1 << dimension
    adjacency = [[node ^ (1 << bit) for bit in range(dimension)] for node in range(n)]
    return AdjacencyTopology(adjacency)


def star(n: int) -> AdjacencyTopology:
    """Star graph: node 0 is the hub, nodes 1..n-1 are leaves."""
    if n < 3:
        raise TopologyError(f"a star needs at least 3 nodes, got {n}")
    adjacency: List[List[int]] = [list(range(1, n))]
    adjacency.extend([0] for _ in range(1, n))
    return AdjacencyTopology(adjacency)


def random_regular(n: int, degree: int, seed: SeedLike = None, max_attempts: int = 20) -> AdjacencyTopology:
    """A uniform-ish random ``degree``-regular simple graph.

    Configuration model with **edge-switch repair**: stubs are paired
    uniformly, then every self-loop or duplicate edge is resolved by
    swapping endpoints with a uniformly random other pair (the standard
    repair used in practice; distributionally close to uniform for
    ``degree = O(sqrt n)`` and always yields a simple regular graph).
    """
    if degree < 1 or degree >= n:
        raise TopologyError(f"degree must be in 1..{n - 1}, got {degree}")
    if (n * degree) % 2 != 0:
        raise TopologyError(f"n * degree must be even (n={n}, degree={degree})")
    rng = as_generator(seed)
    for _ in range(max_attempts):
        stubs = np.repeat(np.arange(n), degree)
        rng.shuffle(stubs)
        pairs = [(int(a), int(b)) for a, b in stubs.reshape(-1, 2)]
        if _repair_pairing(pairs, rng):
            adjacency: List[List[int]] = [[] for _ in range(n)]
            for a, b in pairs:
                adjacency[a].append(b)
                adjacency[b].append(a)
            return AdjacencyTopology(adjacency)
    raise TopologyError(
        f"failed to pair a simple {degree}-regular graph on {n} nodes in {max_attempts} attempts"
    )


def _edge_key(a: int, b: int) -> tuple:
    return (a, b) if a <= b else (b, a)


def _repair_pairing(pairs: List[tuple], rng: np.random.Generator, max_switches: int = None) -> bool:
    """Resolve self-loops/duplicates in-place via random edge switches."""
    if max_switches is None:
        max_switches = 200 * len(pairs) + 1000
    edge_count = {}
    for a, b in pairs:
        edge_count[_edge_key(a, b)] = edge_count.get(_edge_key(a, b), 0) + 1
    bad = [i for i, (a, b) in enumerate(pairs) if a == b or edge_count[_edge_key(a, b)] > 1]
    switches = 0
    while bad and switches < max_switches:
        switches += 1
        i = bad[-1]
        a, b = pairs[i]
        j = int(rng.integers(0, len(pairs)))
        if j == i:
            continue
        c, d = pairs[j]
        # Propose the cross-swap (a, c), (b, d).
        if a == c or b == d:
            continue
        new_one, new_two = _edge_key(a, c), _edge_key(b, d)
        if edge_count.get(new_one, 0) or edge_count.get(new_two, 0):
            continue
        for key in (_edge_key(a, b), _edge_key(c, d)):
            edge_count[key] -= 1
            if edge_count[key] == 0:
                del edge_count[key]
        pairs[i] = (a, c)
        pairs[j] = (b, d)
        edge_count[new_one] = 1
        edge_count[new_two] = 1
        bad = [k for k, (x, y) in enumerate(pairs) if x == y or edge_count[_edge_key(x, y)] > 1]
    return not bad


def watts_strogatz(n: int, neighbors: int, rewire_probability: float, seed: SeedLike = None) -> AdjacencyTopology:
    """Small-world graph: a ring lattice with random rewiring.

    Each node starts connected to its ``neighbors`` nearest ring
    neighbours on each side; every clockwise edge is rewired to a
    uniform non-duplicate target with probability *rewire_probability*.
    """
    if neighbors < 1 or 2 * neighbors >= n:
        raise TopologyError(f"need 1 <= neighbors < n/2, got {neighbors} for n={n}")
    if not 0.0 <= rewire_probability <= 1.0:
        raise TopologyError(f"rewire probability must be in [0, 1], got {rewire_probability}")
    rng = as_generator(seed)
    edges: Set[tuple] = set()
    for u in range(n):
        for offset in range(1, neighbors + 1):
            v = (u + offset) % n
            edges.add((min(u, v), max(u, v)))
    rewired: Set[tuple] = set()
    for edge in sorted(edges):
        u, v = edge
        if rng.random() < rewire_probability:
            for _ in range(20):
                w = int(rng.integers(0, n))
                candidate = (min(u, w), max(u, w))
                if w != u and candidate not in rewired and candidate not in edges:
                    edge = candidate
                    break
        rewired.add(edge)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for u, v in rewired:
        adjacency[u].append(v)
        adjacency[v].append(u)
    # Rewiring can isolate a node in pathological cases; patch it back
    # onto the ring so the sampling contract (degree >= 1) holds.
    for u in range(n):
        if not adjacency[u]:
            v = (u + 1) % n
            adjacency[u].append(v)
            adjacency[v].append(u)
    return AdjacencyTopology(adjacency)


def barabasi_albert(n: int, attachments: int, seed: SeedLike = None) -> AdjacencyTopology:
    """Preferential attachment: each new node links to ``attachments``
    existing nodes chosen proportionally to their current degree."""
    if attachments < 1:
        raise TopologyError(f"attachments must be >= 1, got {attachments}")
    if n <= attachments:
        raise TopologyError(f"need n > attachments, got n={n}, attachments={attachments}")
    rng = as_generator(seed)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    # Seed clique over the first `attachments + 1` nodes.
    seed_size = attachments + 1
    repeated: List[int] = []  # node id repeated once per incident edge
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            adjacency[u].append(v)
            adjacency[v].append(u)
            repeated.extend((u, v))
    for u in range(seed_size, n):
        targets: Set[int] = set()
        while len(targets) < attachments:
            targets.add(int(repeated[rng.integers(0, len(repeated))]))
        for v in targets:
            adjacency[u].append(v)
            adjacency[v].append(u)
            repeated.extend((u, v))
    return AdjacencyTopology(adjacency)


@register_topology(
    "hypercube",
    description="The d-dimensional hypercube; n must be a power of two",
)
def _hypercube_of_n(n: int) -> AdjacencyTopology:
    """Build the hypercube whose ``2^d`` node count equals *n*."""
    dimension = max(n - 1, 1).bit_length()
    if n < 2 or (1 << dimension) != n:
        raise TopologyError(f"hypercube needs n = 2^d, got n={n}")
    return hypercube(dimension)


register_topology(
    "star",
    star,
    description="Star graph: one hub, n-1 leaves",
)


@register_topology(
    "random-regular",
    params=[
        ParamSpec("degree", kind="int", required=True, doc="common node degree"),
        ParamSpec("graph_seed", kind="int", doc="seed for the pairing model"),
    ],
    description="Random degree-regular simple graph (pairing model)",
)
def _random_regular_of_n(n: int, degree: int, graph_seed: int = None) -> AdjacencyTopology:
    """Registry adapter for :func:`random_regular`."""
    return random_regular(n, degree, seed=graph_seed)


@register_topology(
    "watts-strogatz",
    params=[
        ParamSpec("neighbors", kind="int", required=True, doc="even base-ring neighbour count"),
        ParamSpec("rewire_probability", kind="float", required=True, doc="per-edge rewiring probability"),
        ParamSpec("graph_seed", kind="int", doc="seed for the rewiring"),
    ],
    description="Watts-Strogatz small world: ring lattice with random rewiring",
)
def _watts_strogatz_of_n(
    n: int, neighbors: int, rewire_probability: float, graph_seed: int = None
) -> AdjacencyTopology:
    """Registry adapter for :func:`watts_strogatz`."""
    return watts_strogatz(n, neighbors, rewire_probability, seed=graph_seed)


@register_topology(
    "barabasi-albert",
    params=[
        ParamSpec("attachments", kind="int", required=True, doc="edges added per arriving node"),
        ParamSpec("graph_seed", kind="int", doc="seed for preferential attachment"),
    ],
    description="Barabasi-Albert preferential attachment (scale-free degrees)",
)
def _barabasi_albert_of_n(n: int, attachments: int, graph_seed: int = None) -> AdjacencyTopology:
    """Registry adapter for :func:`barabasi_albert`."""
    return barabasi_albert(n, attachments, seed=graph_seed)

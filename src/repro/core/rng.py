"""Randomness policy for the library.

Every stochastic component in :mod:`repro` accepts a ``seed`` argument
that may be ``None`` (fresh OS entropy), an ``int``, or an existing
:class:`numpy.random.Generator`.  This module centralises the coercion
logic and provides *stream splitting* so that independent subsystems of
one simulation (e.g. the clock process and the sampling process) consume
independent, reproducible streams.

Reproducibility contract
------------------------
Two runs constructed from equal integer seeds and equal parameters
produce identical traces.  Child streams derived via :func:`split` are
deterministic functions of the parent seed and the ``key`` argument, so
adding a new consumer with a fresh key never perturbs existing streams.
"""

from __future__ import annotations

from typing import List, Union, cast

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = [
    "SeedLike",
    "as_generator",
    "split",
    "spawn_seeds",
    "spawn_seed_sequences",
    "random_seed",
]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or
        an already-built ``Generator`` (returned unchanged so callers can
        share a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}: {seed!r}")


def split(seed: SeedLike, key: str) -> np.random.Generator:
    """Derive an independent child generator keyed by *key*.

    For integer seeds the child is a pure function of ``(seed, key)``;
    for ``None`` the child is fresh entropy; for an existing generator
    the child is spawned from it (advancing the parent's spawn counter).
    A ``SeedSequence`` keeps its own ``spawn_key`` and appends the key
    material, so children split from *different spawned siblings* stay
    mutually independent.
    """
    if isinstance(seed, np.random.Generator):
        # numpy stubs type .seed_seq as ISeedSequence, which lacks spawn
        seed_seq = cast(np.random.SeedSequence, seed.bit_generator.seed_seq)
        return np.random.default_rng(seed_seq.spawn(1)[0])
    material = _key_material(key)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(
            np.random.SeedSequence(entropy=seed.entropy, spawn_key=seed.spawn_key + (material,))
        )
    return np.random.default_rng(np.random.SeedSequence(entropy=int(seed), spawn_key=(material,)))


def spawn_seeds(seed: SeedLike, count: int) -> List[int]:
    """Produce *count* independent integer seeds for trial replication.

    Used by the experiment harness: each trial gets its own seed so
    trials are independent yet the whole sweep is reproducible from one
    master seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [int(s) for s in seed.integers(0, 2**63 - 1, size=count)]
    rng = as_generator(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=count)]


def spawn_seed_sequences(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """*count* independent :class:`numpy.random.SeedSequence` children.

    This is the replication-seeding primitive of the experiment
    harness (the contract is documented in DESIGN.md, "Ensemble
    semantics"): trial *i* of a replicated run receives child *i* of
    ``SeedSequence(master).spawn(count)``, so child streams are
    provably independent, any single trial can be replayed in
    isolation, and the list is a pure function of the master seed —
    repeated calls with the same *seed* return the same children.
    A ``Generator`` master spawns from its own seed sequence instead
    (advancing the generator's spawn counter, like :func:`split`).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seed_seq = cast(np.random.SeedSequence, seed.bit_generator.seed_seq)
        return list(seed_seq.spawn(count))
    if isinstance(seed, np.random.SeedSequence):
        # Rebuild so the call is pure: spawning mutates the parent's
        # child counter, and we want the same children every time.
        root = np.random.SeedSequence(entropy=seed.entropy, spawn_key=seed.spawn_key)
    elif seed is None:
        root = np.random.SeedSequence()
    else:
        root = np.random.SeedSequence(int(seed))
    return list(root.spawn(count))


def random_seed() -> int:
    """Return a fresh integer seed from OS entropy (for logging/replay)."""
    # entropy is Optional[int | Sequence[int]] in the stubs, but a
    # fresh SeedSequence always carries an int
    entropy = cast(int, np.random.SeedSequence().entropy)
    return int(entropy % (2**63 - 1))


def _key_material(key: str) -> int:
    """Hash a string key into a 32-bit spawn-key component, stably."""
    acc = 2166136261
    for byte in key.encode("utf-8"):
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return acc

"""Compiled kernels for the hazard-batched tick hot loop.

:func:`repro.core.hazard.apply_hazard_free` is the hot path of every
sparse-topology asynchronous run: evaluate a presampled tick block,
stamp first writers, apply the longest hazard-free prefix, repeat.  The
pure-numpy implementation is at its ceiling (~120-200 ns/tick — each
window costs a handful of full-array passes and the mixed start-up
phase re-evaluates short windows over and over).  A compiled kernel
collapses all of that into the loop the numpy machinery emulates: apply
the presampled ticks *one at a time, in C*, reading each tick's targets
from the live colour vector.  No hazard detection is needed at all —
the loop is genuinely sequential — so the kernel is **bit-identical**
to ``SequentialProtocol.seq_tick_batch_loop`` (and therefore to
``apply_hazard_free``, which is pinned against that loop) on the same
draws.  Switching kernels never changes results, only wall-clock time:
all RNG draws happen *before* the apply, in the same order, whichever
kernel applies them.

Two compiled implementations are provided, both optional:

``c``
    ``_hazard_kernel.c`` compiled on demand with the system C compiler
    (``cc -O3 -shared -fPIC`` — no Python headers needed) into a cached
    shared library loaded through :mod:`ctypes`.  Available wherever a
    C toolchain is installed; zero Python dependencies.
``numba``
    The same per-tick loop JIT-compiled by Numba (``pip install
    repro-consensus[jit]``).  Available wherever the optional extra is
    installed; first use pays a one-off JIT compile.

Selection order (the capability probe used by
:func:`repro.engine.dispatch.fastest_engine` and the engines):

1. the ``REPRO_KERNEL`` environment variable — ``numpy`` (default),
   ``c``, ``numba`` or ``auto`` (fastest available: c, then numba,
   else numpy);
2. a requested-but-unavailable compiled kernel *degrades to numpy with
   a warning* — the numpy path is always present and always exact, so
   a missing toolchain can never break a run;
3. per protocol: a kernel only engages for protocols that declare a
   ``tick_kernel`` rule id matching their
   :class:`~repro.protocols.base.TickFootprint`; everything else stays
   on the numpy path (which itself falls back from vectorised to
   conservative batching — see :mod:`repro.core.hazard`).

``python -m repro kernels`` prints the probe results and benchmarks
the available kernels; ``tests/test_hazard_kernel.py`` pins the
bit-exactness contract on adversarial graphs.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from .exceptions import ConfigurationError

__all__ = [
    "KERNEL_ENV",
    "KERNEL_NAMES",
    "RULE_IDS",
    "KernelUnavailable",
    "KernelProbe",
    "TickKernel",
    "available_kernels",
    "get_kernel",
    "active_kernel",
    "active_kernel_name",
    "kernel_for",
    "reset_active_kernel",
]

#: environment variable naming the kernel to run the tick loop with.
KERNEL_ENV = "REPRO_KERNEL"
#: override for the compiled-library cache directory.
CACHE_ENV = "REPRO_KERNEL_CACHE"
#: accepted ``REPRO_KERNEL`` values.
KERNEL_NAMES = ("numpy", "c", "numba", "auto")
#: probe order of ``auto``, fastest first.
_AUTO_ORDER = ("c", "numba")

#: rule-name -> ABI rule id; must stay in sync with ``_hazard_kernel.c``.
RULE_IDS: Dict[str, int] = {
    "voter": 1,
    "two-choices": 2,
    "three-majority": 3,
    "undecided-state": 4,
}
#: samples per rule, cross-checked against the protocol's footprint so
#: a mismatched declaration fails the probe instead of corrupting state.
_RULE_SAMPLES: Dict[str, int] = {
    "voter": 1,
    "two-choices": 2,
    "three-majority": 3,
    "undecided-state": 1,
}

_C_SOURCE = Path(__file__).with_name("_hazard_kernel.c")
_C_ABI_VERSION = 1


class KernelUnavailable(RuntimeError):
    """A compiled kernel cannot be built or loaded in this environment."""


@dataclass(frozen=True)
class KernelProbe:
    """Availability of one kernel implementation."""

    name: str
    available: bool
    detail: str


class TickKernel:
    """A compiled implementation of the presampled per-tick apply loop.

    ``apply`` must be bit-identical to looping
    :meth:`~repro.protocols.base.SequentialProtocol.seq_tick` over the
    presampled draws — the contract every kernel is pinned against in
    ``tests/test_hazard_kernel.py``.
    """

    name = "abstract"

    def supports(self, protocol) -> bool:
        """True when this kernel compiles *protocol*'s tick rule.

        The protocol must name a known ``tick_kernel`` rule and its
        declared footprint must match the rule's sample count and be
        self-writing; anything else stays on the numpy path.
        """
        rule = getattr(protocol, "tick_kernel", None)
        if rule not in RULE_IDS:
            return False
        footprint = getattr(protocol, "tick_footprint", None)
        return (
            footprint is not None
            and footprint.writes_self_only
            and footprint.samples == _RULE_SAMPLES[rule]
        )

    def apply(self, protocol, state, nodes: np.ndarray, targets: np.ndarray) -> int:
        """Apply the presampled block to ``state.colors`` in place.

        Returns the hazard-cut count of the equivalent numpy call,
        which for a true sequential loop is always 0.
        """
        raise NotImplementedError


def _block_arrays(state, nodes: np.ndarray, targets: np.ndarray):
    """Validate/normalise one presampled block for a compiled loop."""
    colors = state.colors
    if colors.dtype != np.int64 or not colors.flags["C_CONTIGUOUS"]:
        raise KernelUnavailable("state.colors must be a contiguous int64 vector")
    nodes = np.ascontiguousarray(nodes, dtype=np.int64)
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    if targets.ndim != 2 or targets.shape[0] != nodes.shape[0]:
        raise KernelUnavailable(
            f"targets must be (m, s) aligned with nodes, got {targets.shape}"
        )
    return colors, nodes, targets


class CTickKernel(TickKernel):
    """ctypes wrapper over the cached ``_hazard_kernel.c`` build."""

    name = "c"

    def __init__(self, fn, library_path: str):
        self._fn = fn
        self.library_path = library_path

    def apply(self, protocol, state, nodes: np.ndarray, targets: np.ndarray) -> int:
        colors, nodes, targets = _block_arrays(state, nodes, targets)
        wrote = self._fn(
            colors.ctypes.data,
            nodes.ctypes.data,
            targets.ctypes.data,
            nodes.shape[0],
            targets.shape[1],
            RULE_IDS[protocol.tick_kernel],
            state.k - 1,
        )
        if wrote < 0:
            raise KernelUnavailable(
                f"compiled rule rejected ({protocol.tick_kernel!r}, "
                f"s={targets.shape[1]}) — library/protocol mismatch"
            )
        return 0


class NumbaTickKernel(TickKernel):
    """Numba-njit twin of the C loop (``repro-consensus[jit]`` extra)."""

    name = "numba"

    def __init__(self, fn):
        self._fn = fn

    def apply(self, protocol, state, nodes: np.ndarray, targets: np.ndarray) -> int:
        colors, nodes, targets = _block_arrays(state, nodes, targets)
        wrote = self._fn(
            colors, nodes, targets, RULE_IDS[protocol.tick_kernel], state.k - 1
        )
        if wrote < 0:
            raise KernelUnavailable(
                f"jitted rule rejected ({protocol.tick_kernel!r}, s={targets.shape[1]})"
            )
        return 0


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or (Path.home() / ".cache")
    return Path(base) / "repro" / "kernels"


def _find_compiler() -> str:
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    for candidate in candidates:
        if candidate:
            path = shutil.which(candidate)
            if path:
                return path
    raise KernelUnavailable(
        "no C compiler on PATH (tried $CC, cc, gcc, clang); "
        "install a toolchain or use REPRO_KERNEL=numba/numpy"
    )


def _build_c_library() -> Path:
    """Compile ``_hazard_kernel.c`` into the cache (content-addressed).

    The library name embeds a hash of the source and the ABI version,
    so editing the C file or bumping the ABI invalidates stale builds
    without any explicit cache management; concurrent builders race
    benignly through an atomic rename.
    """
    if not _C_SOURCE.exists():
        raise KernelUnavailable(f"kernel source missing: {_C_SOURCE}")
    source = _C_SOURCE.read_bytes()
    tag = hashlib.sha256(source + str(_C_ABI_VERSION).encode()).hexdigest()[:16]
    out = _cache_dir() / f"hazard_{tag}_{platform.machine()}.so"
    if out.exists():
        return out
    compiler = _find_compiler()
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=out.parent, suffix=".so")
    os.close(fd)
    cmd = [compiler, "-O3", "-fPIC", "-shared", "-o", tmp_path, str(_C_SOURCE)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp_path)
        raise KernelUnavailable(f"{compiler} could not run: {exc}") from exc
    if proc.returncode != 0:
        os.unlink(tmp_path)
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-5:]
        raise KernelUnavailable(
            f"{compiler} failed (exit {proc.returncode}): " + " | ".join(tail)
        )
    os.replace(tmp_path, out)
    return out


def _load_c_kernel() -> CTickKernel:
    path = _build_c_library()
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as exc:
        raise KernelUnavailable(f"cannot load {path}: {exc}") from exc
    try:
        abi = lib.repro_kernel_abi
        fn = lib.repro_tick_loop
    except AttributeError as exc:
        raise KernelUnavailable(f"{path} lacks the kernel entry points: {exc}") from exc
    abi.restype = ctypes.c_int64
    if abi() != _C_ABI_VERSION:
        raise KernelUnavailable(
            f"{path} has ABI {abi()}, expected {_C_ABI_VERSION} (stale cache?)"
        )
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_int64,
    ]
    return CTickKernel(fn, str(path))


def _build_numba_kernel() -> NumbaTickKernel:
    try:
        import numba
    except ImportError as exc:
        raise KernelUnavailable(
            f"numba is not installed (pip install 'repro-consensus[jit]'): {exc}"
        ) from exc

    @numba.njit(cache=False)
    def tick_loop(colors, nodes, targets, rule, undecided):  # pragma: no cover - jitted
        writes = 0
        m = nodes.shape[0]
        s = targets.shape[1]
        if rule == 1 and s == 1:  # voter
            for t in range(m):
                node = nodes[t]
                seen = colors[targets[t, 0]]
                if seen != colors[node]:
                    colors[node] = seen
                    writes += 1
        elif rule == 2 and s == 2:  # two-choices
            for t in range(m):
                node = nodes[t]
                a = colors[targets[t, 0]]
                if a == colors[targets[t, 1]] and a != colors[node]:
                    colors[node] = a
                    writes += 1
        elif rule == 3 and s == 3:  # three-majority
            for t in range(m):
                node = nodes[t]
                a = colors[targets[t, 0]]
                b = colors[targets[t, 1]]
                c = colors[targets[t, 2]]
                value = b if (b == c and a != b) else a
                if value != colors[node]:
                    colors[node] = value
                    writes += 1
        elif rule == 4 and s == 1:  # undecided-state
            for t in range(m):
                node = nodes[t]
                own = colors[node]
                seen = colors[targets[t, 0]]
                if own == undecided:
                    if seen != undecided:
                        colors[node] = seen
                        writes += 1
                elif seen != undecided and seen != own:
                    colors[node] = undecided
                    writes += 1
        else:
            return -1
        return writes

    # pay the JIT compile now, on a trivial block, so the first engine
    # block is not mis-attributed in benchmarks
    tick_loop(
        np.zeros(2, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        np.zeros((1, 1), dtype=np.int64),
        1,
        1,
    )
    return NumbaTickKernel(tick_loop)


_BUILDERS = {"c": _load_c_kernel, "numba": _build_numba_kernel}

#: built kernels and remembered failures (both per process — a missing
#: toolchain does not get cheaper by re-probing every block).
_kernels: Dict[str, TickKernel] = {}
_failures: Dict[str, str] = {}


def get_kernel(name: Optional[str]) -> Optional[TickKernel]:
    """The kernel registered under *name* (built on first use).

    ``None``/``""``/``"numpy"`` return ``None`` — the numpy path.
    ``"auto"`` returns the first available compiled kernel (or ``None``
    when none builds).  An explicit compiled name raises
    :class:`KernelUnavailable` when it cannot be provided; use
    :func:`active_kernel` for the degrade-with-warning behaviour.
    """
    if name in (None, "", "numpy"):
        return None
    if name == "auto":
        for candidate in _AUTO_ORDER:
            try:
                return get_kernel(candidate)
            except KernelUnavailable:
                continue
        return None
    if name not in _BUILDERS:
        raise ConfigurationError(
            f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    if name in _kernels:
        return _kernels[name]
    if name in _failures:
        raise KernelUnavailable(_failures[name])
    try:
        kernel = _BUILDERS[name]()
    except KernelUnavailable as exc:
        _failures[name] = str(exc)
        raise
    except Exception as exc:  # defensive: builders should raise KernelUnavailable
        _failures[name] = f"{type(exc).__name__}: {exc}"
        raise KernelUnavailable(_failures[name]) from exc
    _kernels[name] = kernel
    return kernel


def available_kernels() -> Dict[str, KernelProbe]:
    """Probe every kernel; ``numpy`` is always available."""
    probes = {
        "numpy": KernelProbe("numpy", True, "pure-numpy hazard batches (reference)")
    }
    for name in _BUILDERS:
        try:
            kernel = get_kernel(name)
            detail = getattr(kernel, "library_path", "jit-compiled")
            probes[name] = KernelProbe(name, True, detail)
        except KernelUnavailable as exc:
            probes[name] = KernelProbe(name, False, str(exc))
    return probes


_UNRESOLVED = object()
_active: object = _UNRESOLVED


def active_kernel() -> Optional[TickKernel]:
    """The process-wide kernel selected by ``REPRO_KERNEL``.

    Resolved once per process (see :func:`reset_active_kernel` for the
    test hook).  An unavailable explicit choice degrades to the numpy
    path with a :class:`RuntimeWarning` — loud, but never fatal.
    """
    global _active
    if _active is _UNRESOLVED:
        name = (os.environ.get(KERNEL_ENV) or "numpy").strip().lower()
        if name not in KERNEL_NAMES:
            raise ConfigurationError(
                f"{KERNEL_ENV}={name!r}: expected one of {KERNEL_NAMES}"
            )
        try:
            _active = get_kernel(name)
        except KernelUnavailable as exc:
            warnings.warn(
                f"{KERNEL_ENV}={name} is unavailable here, falling back to the "
                f"numpy path: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            _active = None
    return _active  # type: ignore[return-value]


def active_kernel_name() -> str:
    """Name of the resolved process-wide kernel (``"numpy"`` for none)."""
    kernel = active_kernel()
    return kernel.name if kernel is not None else "numpy"


def kernel_for(protocol) -> Optional[TickKernel]:
    """The active kernel, iff it compiles *protocol*'s tick rule.

    The per-block capability probe of the hazard path: returns ``None``
    (numpy) for footprint-less protocols, unknown rules, or when
    ``REPRO_KERNEL`` selects numpy.
    """
    kernel = active_kernel()
    if kernel is not None and kernel.supports(protocol):
        return kernel
    return None


def reset_active_kernel() -> None:
    """Forget the resolved ``REPRO_KERNEL`` choice (re-read the env).

    Test hook: lets a monkeypatched environment take effect without a
    fresh process.  Built kernels and remembered failures survive — only
    the *selection* is re-resolved.
    """
    global _active
    _active = _UNRESOLVED

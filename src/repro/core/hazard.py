"""Hazard-free tick batching for asynchronous dynamics on sparse graphs.

The sequential model applies one tick at a time: tick ``t`` picks an
acting node, reads the colours of a few sampled neighbours (and
possibly its own), and writes (at most) the acting node.  Because
target *identities* are state-independent — every protocol here samples
uniformly from a static adjacency structure — a block of ``B`` ticks
can presample all its initiators and targets up front; only the colour
*reads* depend on the order of application.

Evaluate every tick of the block **optimistically** from the
block-start snapshot.  A tick *actually writes* iff its new value
differs from the acting node's current colour (writing an equal value
is a no-op, so unchanged nodes are invisible to later reads).  A tick
is **hazardous** iff its read set — the acting node plus its sampled
targets — contains a node *actually written* by an earlier tick of the
block.  The prefix up to the first hazardous tick is exact:

* every tick before the first hazard read only unchanged-or-snapshot
  values, so its optimistic value and its write/no-write decision are
  the true sequential ones (induction over the prefix);
* two prefix ticks never write the same node — the second writer's own
  node would have been written before it acted, making it hazardous —
  so scattering the writers' values in one numpy pass is unambiguous
  and **bit-identical** to applying the prefix one tick at a time.

Applying the prefix, cutting at the first hazardous tick and
re-evaluating the remainder against the updated state therefore
reproduces the sequential law *exactly*, not just distributionally.
The acting node always counts as read — even for protocols whose
update rule ignores the own colour — because the no-op test above
compares against it; this also keeps the scatter collision-free.

Counting only *actual* writes is what makes the batch fast where it
matters: hazards follow birthday statistics, so with per-tick write
probability ``w`` and ``r``-node read sets the first collision lands
around tick ``sqrt(2 n / (r w))``.  In the long coarsening and
near-consensus phases that dominate runs to consensus ``w`` is small
and whole blocks apply in a single numpy pass.

Protocols that declare a :class:`~repro.protocols.base.TickFootprint`
but no vectorised :meth:`~repro.protocols.base.SequentialProtocol.
tick_values` rule fall back to a conservative variant — every tick
counts as a writer — which is exact for the same reasons (the true
write set is a subset of the assumed one) and still batches whenever
initiators and reads stay disjoint.

The first-writer table is ``O(n)`` memory but is written sparsely — a
monotone *clock* distinguishes the current evaluation from stale
entries, so the table never needs clearing between blocks
(:class:`HazardScratch`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .hazard_kernel import kernel_for

__all__ = ["HazardScratch", "apply_hazard_free"]

#: "resolve the kernel yourself" marker for :func:`apply_hazard_free`'s
#: *kernel* parameter (``None`` means "numpy path, explicitly").
_RESOLVE = object()


class HazardScratch:
    """Reusable first-writer table over a fixed node set ``0..n-1``.

    ``_first[v]`` holds the clock stamp of the earliest tick writing
    ``v`` in the most recent evaluation that touched ``v``.  Stamps are
    drawn from a monotonically increasing clock, so entries left over
    from earlier evaluations are always *below* the current stamp range
    and are ignored without any ``O(n)`` reset.
    """

    def __init__(self, n: int):
        self.n = int(n)
        self._first = np.full(self.n, -1, dtype=np.int64)
        self._clock = 0
        self._reads: Optional[np.ndarray] = None

    def reads_buffer(self, m: int, width: int) -> np.ndarray:
        """A reusable ``int64[m, width]`` read-set buffer.

        Grown on demand and shared across blocks (and, through the
        engines' ``run_replicated``, across replications), so the per-
        block presample assembly never re-allocates once the block size
        stabilises.  The content is overwritten by every caller — only
        the storage is shared.
        """
        buffer = self._reads
        if buffer is None or buffer.shape[0] < m or buffer.shape[1] != width:
            buffer = np.empty((m, width), dtype=np.int64)
            self._reads = buffer
        return buffer[:m]

    @classmethod
    def for_state(cls, state) -> "HazardScratch":
        """The scratch cached on *state*, built on first use.

        Simulation state objects are per-run, so caching there keeps
        protocols stateless (one protocol instance may drive many
        concurrent runs) while avoiding an ``O(n)`` table allocation
        per batch call.
        """
        scratch = getattr(state, "_hazard_scratch", None)
        if scratch is None or scratch.n != state.n:
            scratch = cls(state.n)
            state._hazard_scratch = scratch
        return scratch

    def prefix_length(self, reads: np.ndarray, wrote: Optional[np.ndarray] = None) -> int:
        """Longest hazard-free prefix of a presampled tick block.

        Parameters
        ----------
        reads:
            ``int64[m, 1 + s]`` read set per tick, in tick order:
            column 0 is the acting (written) node, columns ``1:`` the
            presampled target identities.
        wrote:
            Optional ``bool[m]``: which ticks actually write (their
            optimistic value differs from the current colour).  Omitted
            means every tick counts as a writer (conservative).

        Returns the largest ``p`` such that no tick ``t < p`` reads
        (targets or own node) a node written by a tick ``< t`` of the
        same block.  Tick 0 can never be hazardous, so ``p >= 1``
        whenever ``m >= 1`` — callers always make progress.
        """
        m = reads.shape[0]
        if m <= 1:
            self._clock += m
            return m
        base = self._clock
        first = self._first
        positions = np.arange(base, base + m, dtype=np.int64)
        # Reversed fancy assignment: for duplicate writers the last
        # store wins, which (reversed) is the *earliest* tick position.
        if wrote is None:
            first[reads[::-1, 0]] = positions[::-1]
        else:
            writer_nodes = reads[wrote, 0]
            writer_positions = positions[wrote]
            first[writer_nodes[::-1]] = writer_positions[::-1]
        self._clock = base + m
        # Tick t is hazardous iff some node of its read set was stamped
        # by an *earlier* tick of this evaluation: fresh stamp
        # (>= base), strictly before t.  Both conditions collapse into
        # one unsigned comparison — stale stamps (< base) wrap to huge
        # values under the subtraction.  The own column compares its
        # own stamp at == positions[t], which is correctly clean.
        relative = (first[reads] - base).view(np.uint64)
        ahead = np.arange(m, dtype=np.uint64)
        hazard = (relative < ahead[:, None]).any(axis=1)
        # bool argmax short-circuits at the first True; tick 0 is never
        # hazardous, so a 0 result means no hazard anywhere.
        cut = int(np.argmax(hazard))
        return m if cut == 0 else cut


#: evaluation-window clamp: re-evaluated spans stay near the observed
#: hazard-free run length, so wasted work is a bounded multiple of the
#: ticks actually applied whatever block size the caller hands in.
_MIN_WINDOW = 64
_INITIAL_WINDOW = 1024


def apply_hazard_free(
    protocol,
    state,
    nodes: np.ndarray,
    targets: np.ndarray,
    scratch: Optional[HazardScratch] = None,
    kernel=_RESOLVE,
) -> int:
    """Apply presampled ticks to *state*, exactly as a sequential loop would.

    *nodes*/*targets* are the block's presampled initiators
    (``int64[B]``) and target identities (``int64[B, s]``); the block
    is applied as a sequence of hazard-free chunks (see the module
    docstring for why this is bit-exact).  Protocols exposing a
    vectorised ``tick_values`` rule run the optimistic actual-write
    path; others are batched conservatively through
    ``tick_apply_batch``.

    Evaluation is *windowed*: each pass evaluates an adaptive span that
    doubles after clean (hazard-free) windows and shrinks to twice the
    cut length after a hazard, so total evaluation work stays a small
    constant multiple of the ticks applied even when the caller's block
    is far longer than the typical hazard-free run.  When *scratch* is
    omitted the per-run table cached on *state* is reused
    (:meth:`HazardScratch.for_state`), so repeated calls never pay the
    ``O(n)`` table allocation twice.  Returns the number of hazard cuts
    (0 when the whole block applied cleanly) — callers may use it to
    adapt their block size.

    When a compiled kernel is active (``REPRO_KERNEL`` — see
    :mod:`repro.core.hazard_kernel`) and supports *protocol*, the whole
    block is applied by the compiled per-tick loop instead.  The result
    is bit-identical either way — the kernel applies exactly the
    sequential semantics the hazard batches emulate, on the same
    presampled draws — so the *kernel* parameter (an engine-resolved
    :class:`~repro.core.hazard_kernel.TickKernel`, or ``None`` to force
    the numpy path) trades wall-clock only.
    """
    if kernel is _RESOLVE:
        kernel = kernel_for(protocol)
    # States may carry a boolean ``frozen`` mask (fault-injection
    # wrappers: stubborn/Byzantine nodes never update — see
    # repro.protocols.faults).  A frozen actor's tick is forced to a
    # no-op *before* the actual-write test, so the mask only shrinks
    # the write set and the hazard-free-prefix argument is unchanged;
    # the result stays bit-identical to looping tick_apply (which
    # checks the same mask).  Compiled kernels do not know the mask,
    # so a masked state always takes the numpy path.
    frozen = getattr(state, "frozen", None)
    if kernel is not None and frozen is None:
        return kernel.apply(protocol, state, nodes, targets)
    if scratch is None:
        scratch = HazardScratch.for_state(state)
    colors = state.colors
    total = nodes.shape[0]
    # One (B, 1 + s) read-set matrix: the acting node in column 0, the
    # presampled targets after it — one colour gather and one stamp
    # gather per window cover own and target reads alike.
    reads = scratch.reads_buffer(total, 1 + targets.shape[1])
    reads[:, 0] = nodes
    reads[:, 1:] = targets
    start = 0
    cuts = 0
    window = _INITIAL_WINDOW
    while start < total:
        end = min(start + window, total)
        sub_reads = reads[start:end]
        read_colors = colors[sub_reads]
        own = read_colors[:, 0]
        observed = read_colors[:, 1:]
        values = protocol.tick_values(state, own, observed)
        if values is not None and frozen is not None:
            values = np.where(frozen[sub_reads[:, 0]], own, values)
        if values is None:
            # No vectorised value rule: conservative hazard test plus
            # the protocol's own (possibly looping) batch apply.
            prefix = scratch.prefix_length(sub_reads)
            protocol.tick_apply_batch(state, nodes[start:start + prefix], observed[:prefix])
        else:
            wrote = values != own
            if not wrote.any():
                # Nothing changes: the whole window is clean.
                prefix = sub_reads.shape[0]
            else:
                prefix = scratch.prefix_length(sub_reads, wrote)
                writers = np.flatnonzero(wrote[:prefix])
                colors[sub_reads[writers, 0]] = values[writers]
        if prefix == end - start:
            window *= 2
        else:
            cuts += 1
            window = max(2 * prefix, _MIN_WINDOW)
        start += prefix
    return cuts

/* Compiled per-tick apply loop for the hazard-batched tick engines.
 *
 * One call applies a whole presampled tick block to the colour vector,
 * one tick at a time, exactly as `SequentialProtocol.seq_tick` would:
 * tick t reads the colours of its presampled targets (and, for rules
 * that need it, the acting node's own colour), computes the rule's new
 * value, and writes the acting node iff the value differs.  Because
 * the loop really is sequential, every tick sees all earlier ticks'
 * writes -- there is no hazard machinery to get right and the result
 * is bit-identical to `seq_tick_batch_loop` (and therefore to
 * `repro.core.hazard.apply_hazard_free`) on the same draws.
 *
 * The library is deliberately free of any Python API: it is compiled
 * with a bare C compiler (`cc -O3 -shared -fPIC`, no Python headers)
 * and loaded through ctypes, so the only ABI surface is this one
 * function over int64 buffers.  Rule ids must stay in sync with
 * `repro.core.hazard_kernel.RULE_IDS`.
 */

#include <stdint.h>

#define REPRO_RULE_VOTER 1
#define REPRO_RULE_TWO_CHOICES 2
#define REPRO_RULE_THREE_MAJORITY 3
#define REPRO_RULE_UNDECIDED_STATE 4

/* ABI version stamp so the Python side can reject stale cached builds. */
int64_t repro_kernel_abi(void) { return 1; }

/* Apply m presampled ticks in order.
 *
 *   colors    int64[n]     mutated in place
 *   nodes     int64[m]     acting node per tick
 *   targets   int64[m*s]   row-major (m, s) presampled target ids
 *   m         tick count
 *   s         samples per tick (must match the rule's footprint)
 *   rule      REPRO_RULE_* id
 *   undecided the undecided label (k - 1); only read by the USD rule
 *
 * Returns the number of actual writes, or -1 for an unknown
 * (rule, s) combination -- callers treat -1 as "fall back to numpy".
 */
int64_t repro_tick_loop(int64_t *colors, const int64_t *nodes,
                        const int64_t *targets, int64_t m, int64_t s,
                        int64_t rule, int64_t undecided) {
    int64_t writes = 0;
    int64_t t;
    switch (rule) {
    case REPRO_RULE_VOTER: /* adopt the sampled colour unconditionally */
        if (s != 1) return -1;
        for (t = 0; t < m; t++) {
            int64_t node = nodes[t];
            int64_t seen = colors[targets[t]];
            if (seen != colors[node]) {
                colors[node] = seen;
                writes++;
            }
        }
        return writes;
    case REPRO_RULE_TWO_CHOICES: /* adopt iff both samples agree */
        if (s != 2) return -1;
        for (t = 0; t < m; t++) {
            int64_t node = nodes[t];
            int64_t a = colors[targets[2 * t]];
            if (a == colors[targets[2 * t + 1]] && a != colors[node]) {
                colors[node] = a;
                writes++;
            }
        }
        return writes;
    case REPRO_RULE_THREE_MAJORITY: /* majority of three, first-sample tie-break */
        if (s != 3) return -1;
        for (t = 0; t < m; t++) {
            int64_t node = nodes[t];
            int64_t a = colors[targets[3 * t]];
            int64_t b = colors[targets[3 * t + 1]];
            int64_t c = colors[targets[3 * t + 2]];
            int64_t value = (b == c && a != b) ? b : a;
            if (value != colors[node]) {
                colors[node] = value;
                writes++;
            }
        }
        return writes;
    case REPRO_RULE_UNDECIDED_STATE: /* USD: decided/undecided branch */
        if (s != 1) return -1;
        for (t = 0; t < m; t++) {
            int64_t node = nodes[t];
            int64_t own = colors[node];
            int64_t seen = colors[targets[t]];
            if (own == undecided) {
                if (seen != undecided) {
                    colors[node] = seen;
                    writes++;
                }
            } else if (seen != undecided && seen != own) {
                colors[node] = undecided;
                writes++;
            }
        }
        return writes;
    default:
        return -1;
    }
}

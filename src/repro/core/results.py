"""Run results and trace records.

Every engine returns a :class:`RunResult`: what colour won (if any), how
long it took in the engine's natural time unit *and* in parallel time,
and an optional :class:`Trace` of intermediate configurations for
plotting/analysis.  Results are plain data with a ``to_dict`` for the
JSON result store in :mod:`repro.bench.store`.

Time units
----------
``rounds``
    Synchronous engines: number of synchronous rounds executed.
``ticks``
    Sequential engine: number of individual node activations.
``parallel_time``
    The unit all theorems are phrased in.  For synchronous engines it
    equals ``rounds``; for the sequential engine it is ``ticks / n``
    (each node ticks once per unit of time in expectation); for the
    continuous engine it is real Poisson-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .colors import ColorConfiguration

__all__ = ["TracePoint", "Trace", "RunResult"]


@dataclass(frozen=True)
class TracePoint:
    """One snapshot along a run."""

    time: float
    counts: tuple

    @property
    def configuration(self) -> ColorConfiguration:
        return ColorConfiguration(self.counts)


@dataclass
class Trace:
    """Ordered list of snapshots recorded during a run."""

    points: List[TracePoint] = field(default_factory=list)

    def record(self, time: float, counts) -> None:
        self.points.append(TracePoint(time=float(time), counts=tuple(int(c) for c in counts)))

    def times(self) -> np.ndarray:
        return np.array([p.time for p in self.points], dtype=float)

    def count_matrix(self) -> np.ndarray:
        """``(len(points), k)`` matrix of counts over time."""
        if not self.points:
            return np.empty((0, 0), dtype=np.int64)
        return np.array([p.counts for p in self.points], dtype=np.int64)

    def bias_trace(self) -> np.ndarray:
        """Additive bias ``c1 - c2`` at every snapshot."""
        matrix = self.count_matrix()
        if matrix.size == 0:
            return np.empty(0, dtype=np.int64)
        ordered = np.sort(matrix, axis=1)[:, ::-1]
        if ordered.shape[1] == 1:
            return ordered[:, 0]
        return ordered[:, 0] - ordered[:, 1]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


@dataclass
class RunResult:
    """Outcome of a single protocol execution.

    Attributes
    ----------
    converged:
        Whether the convergence predicate (consensus by default) held
        before the step budget ran out.
    winner:
        Winning colour id, or ``None`` if the run did not converge.
    rounds:
        Engine-native step count (rounds for synchronous engines, ticks
        for sequential, events for continuous).
    parallel_time:
        Time in the unit of the theorems (see module docstring).
    initial:
        The initial colour configuration.
    final:
        The final colour configuration.
    plurality_preserved:
        ``winner`` equals the initial plurality colour (``False`` when
        not converged or the initial plurality was not unique).
    trace:
        Optional sequence of snapshots.
    metadata:
        Free-form engine/protocol-specific extras (phase boundaries,
        working-time spreads, endgame entry time, ...).
    """

    converged: bool
    winner: Optional[int]
    rounds: int
    parallel_time: float
    initial: ColorConfiguration
    final: ColorConfiguration
    trace: Optional[Trace] = None
    metadata: Dict = field(default_factory=dict)

    @property
    def plurality_preserved(self) -> bool:
        if not self.converged or self.winner is None:
            return False
        if not self.initial.has_unique_plurality():
            return False
        return self.winner == self.initial.plurality

    def to_dict(self) -> Dict:
        """JSON-serialisable summary (trace omitted by design: bulky)."""
        return {
            "converged": bool(self.converged),
            "winner": None if self.winner is None else int(self.winner),
            "rounds": int(self.rounds),
            "parallel_time": float(self.parallel_time),
            "initial_counts": list(self.initial.counts),
            "final_counts": list(self.final.counts),
            "plurality_preserved": self.plurality_preserved,
            "metadata": _jsonify(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output.

        The round trip is value-exact for everything ``to_dict``
        carries: the trace stays dropped, ``plurality_preserved`` is a
        property recomputed from the rebuilt fields (and equals the
        stored flag by construction), and metadata comes back in its
        JSON-normalised form — so ``from_dict(p).to_dict() == p``.
        """
        return cls(
            converged=bool(payload["converged"]),
            winner=None if payload["winner"] is None else int(payload["winner"]),
            rounds=int(payload["rounds"]),
            parallel_time=float(payload["parallel_time"]),
            initial=ColorConfiguration(payload["initial_counts"]),
            final=ColorConfiguration(payload["final_counts"]),
            metadata=dict(payload.get("metadata") or {}),
        )


def _jsonify(value):
    """Recursively coerce numpy scalars/arrays into JSON-friendly types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value

"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid model or protocol configuration was supplied.

    Raised for things like negative node counts, opinion vectors that do
    not sum to ``n``, or schedule constants that produce empty phases.
    """


class ConvergenceError(ReproError):
    """A run ended without reaching the requested convergence condition.

    Carries the partial :class:`~repro.core.results.RunResult` (when
    available) in :attr:`partial_result` so callers can inspect how far
    the process got before the step budget ran out.
    """

    def __init__(self, message: str, partial_result=None):
        super().__init__(message)
        self.partial_result = partial_result


class TopologyError(ReproError):
    """A graph/topology operation was invalid (bad node id, empty graph...)."""


class ProtocolError(ReproError):
    """A protocol was driven outside its contract.

    Examples: ticking a node after it terminated, requesting a round
    update from an asynchronous-only protocol, or mixing engines and
    protocols with incompatible state layouts.
    """


class ScheduleError(ConfigurationError):
    """A phase schedule was constructed with inconsistent segments."""


class ExperimentError(ReproError):
    """An experiment harness failure (unknown id, bad sweep grid...)."""

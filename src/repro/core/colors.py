"""Colour (opinion) configurations.

The paper studies plurality consensus where ``n`` nodes are partitioned
into ``k`` colour classes ``C1..Ck`` with sizes ``c1 >= c2 >= ... >= ck``.
:class:`ColorConfiguration` is the canonical immutable description of
such a partition: a counts vector plus convenience accessors for the
quantities every theorem is phrased in (``c1``, ``c2``, additive bias
``c1 - c2``, multiplicative bias ``c1 / c2``).

Colours are integers ``0..k-1``.  Index 0 is *not* required to be the
plurality colour — use :attr:`ColorConfiguration.plurality` — but the
workload generators in :mod:`repro.workloads` produce configurations
sorted in descending order so colour 0 is the plurality in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

import numpy as np

from .exceptions import ConfigurationError
from .rng import as_generator

__all__ = [
    "ColorConfiguration",
    "counts_from_assignment",
    "assignment_from_counts",
    "zipf_counts",
]


@dataclass(frozen=True)
class ColorConfiguration:
    """Immutable vector of colour-class sizes.

    Parameters
    ----------
    counts:
        Sequence of non-negative ints; ``counts[j]`` is the number of
        nodes currently holding colour ``j``.  At least one entry must
        be positive.
    """

    counts: Tuple[int, ...]

    def __init__(self, counts: Iterable[int]):
        counts = tuple(int(c) for c in counts)
        if not counts:
            raise ConfigurationError("a colour configuration needs at least one colour")
        if any(c < 0 for c in counts):
            raise ConfigurationError(f"colour counts must be non-negative: {counts}")
        if sum(counts) <= 0:
            raise ConfigurationError("a colour configuration needs at least one node")
        object.__setattr__(self, "counts", counts)

    # ------------------------------------------------------------------
    # basic quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total number of nodes."""
        return sum(self.counts)

    @property
    def k(self) -> int:
        """Number of colour classes (including empty ones)."""
        return len(self.counts)

    @property
    def support_size(self) -> int:
        """Number of colours with at least one supporter."""
        return sum(1 for c in self.counts if c > 0)

    # ------------------------------------------------------------------
    # plurality structure
    # ------------------------------------------------------------------
    @property
    def plurality(self) -> int:
        """Index of the (first) largest colour class."""
        return int(np.argmax(self.counts))

    @property
    def sorted_counts(self) -> Tuple[int, ...]:
        """Counts in descending order (the paper's ``c1 >= c2 >= ...``)."""
        return tuple(sorted(self.counts, reverse=True))

    @property
    def c1(self) -> int:
        """Size of the largest colour class."""
        return self.sorted_counts[0]

    @property
    def c2(self) -> int:
        """Size of the second largest colour class (0 if only one colour)."""
        ordered = self.sorted_counts
        return ordered[1] if len(ordered) > 1 else 0

    @property
    def additive_bias(self) -> int:
        """The paper's initial gap ``c1 - c2``."""
        return self.c1 - self.c2

    @property
    def multiplicative_bias(self) -> float:
        """The ratio ``c1 / c2`` (``inf`` when ``c2 == 0``)."""
        if self.c2 == 0:
            return float("inf")
        return self.c1 / self.c2

    def fractions(self) -> np.ndarray:
        """Colour fractions ``counts / n`` as a float array."""
        return np.asarray(self.counts, dtype=float) / self.n

    # ------------------------------------------------------------------
    # predicates used by theorem statements
    # ------------------------------------------------------------------
    def has_unique_plurality(self) -> bool:
        """True iff exactly one colour attains the maximum count."""
        top = self.c1
        return sum(1 for c in self.counts if c == top) == 1

    def satisfies_additive_bias(self, z: float = 1.0) -> bool:
        """Check Theorem 1.1's precondition ``c1 - c2 >= z*sqrt(n log n)``."""
        n = self.n
        return self.additive_bias >= z * np.sqrt(n * max(np.log(n), 1.0))

    def satisfies_multiplicative_bias(self, epsilon: float) -> bool:
        """Check Theorem 1.3's precondition ``c1 >= (1+eps)*ci`` for i>=2."""
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
        c1 = self.c1
        runners_up = [c for c in self.sorted_counts[1:]]
        return all(c1 >= (1.0 + epsilon) * c for c in runners_up)

    def is_consensus(self) -> bool:
        """True iff a single colour holds every node."""
        return self.c1 == self.n

    # ------------------------------------------------------------------
    # transformation helpers
    # ------------------------------------------------------------------
    def with_count(self, color: int, count: int) -> "ColorConfiguration":
        """Return a copy with colour *color* set to *count* supporters."""
        if not 0 <= color < self.k:
            raise ConfigurationError(f"colour {color} out of range 0..{self.k - 1}")
        new = list(self.counts)
        new[color] = int(count)
        return ColorConfiguration(new)

    def normalized(self) -> "ColorConfiguration":
        """Return a copy sorted in descending order of support."""
        return ColorConfiguration(self.sorted_counts)

    def __iter__(self):
        return iter(self.counts)

    def __len__(self) -> int:
        return self.k

    def __getitem__(self, color: int) -> int:
        return self.counts[color]


def counts_from_assignment(colors: Sequence[int], k: int = None) -> ColorConfiguration:
    """Build a :class:`ColorConfiguration` from per-node colour labels.

    Parameters
    ----------
    colors:
        Length-``n`` array of colour ids in ``0..k-1``.
    k:
        Total number of colours.  Defaults to ``max(colors) + 1``.
    """
    arr = np.asarray(colors, dtype=np.int64)
    if arr.size == 0:
        raise ConfigurationError("cannot build a configuration from zero nodes")
    if arr.min() < 0:
        raise ConfigurationError("colour labels must be non-negative")
    width = int(arr.max()) + 1 if k is None else int(k)
    if width <= int(arr.max()):
        raise ConfigurationError(f"k={width} too small for labels up to {int(arr.max())}")
    return ColorConfiguration(np.bincount(arr, minlength=width).tolist())


def zipf_counts(n: int, k: int, alpha: float = 1.0, rng: np.random.Generator = None) -> ColorConfiguration:
    """Sampled heavy-tailed configuration: multinomial over Zipf weights.

    Each of the ``n`` nodes independently picks colour ``j`` with
    probability proportional to ``(j + 1)^(-alpha)``, so the counts are
    one multinomial draw over the Zipf law — the *random* counterpart
    of the deterministic :func:`repro.workloads.initial.power_law`
    rounding.  Sampling noise means colours may come out empty and the
    realised plurality may differ from colour 0 (both legal
    configurations); the many-colour robustness campaigns use exactly
    that roughness.

    Fallback contract: the draw uses *rng* when given; ``rng=None`` is
    coerced via :func:`repro.core.rng.as_generator`, whose ``None``
    branch is the repo's single sanctioned OS-entropy fallback —
    deterministic callers must pass their own generator or seed.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if alpha < 0:
        raise ConfigurationError(f"alpha must be non-negative, got {alpha}")
    weights = np.arange(1, k + 1, dtype=float) ** (-alpha)
    generator = as_generator(rng)
    counts = generator.multinomial(n, weights / weights.sum())
    return ColorConfiguration(counts.tolist())


def assignment_from_counts(config: ColorConfiguration, rng: np.random.Generator = None, shuffle: bool = True) -> np.ndarray:
    """Materialise a counts vector into a per-node colour array.

    By default the assignment is shuffled (node identity carries no
    information, matching the mean-field setting of the paper); pass
    ``shuffle=False`` for a deterministic block layout.

    Fallback contract: the shuffle draws from *rng* when given.  With
    ``rng=None`` the stream is coerced via
    :func:`repro.core.rng.as_generator`, whose ``None`` branch is the
    repo's single sanctioned OS-entropy fallback — deterministic
    callers (everything reached from a spec) must pass their own
    generator.
    """
    parts = [np.full(c, j, dtype=np.int64) for j, c in enumerate(config.counts)]
    colors = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    if shuffle:
        generator = as_generator(rng)
        generator.shuffle(colors)
    return colors

"""Pluggable array backends for the ensemble count engines.

The ensemble engines (:mod:`repro.engine.ensemble`) operate on
``(R, m)`` label-histogram matrices: allocate, mask, compact, and feed
them to stacked ``Generator`` draws.  Those count-array operations are
factored here behind a small namespace object so the engines run
unchanged on plain numpy (always available, the reference) or on an
accelerator array library (CuPy when installed with a visible GPU —
``pip install repro-consensus[gpu]``).

Exactness contract
------------------
* ``numpy`` — the default.  Every method is a direct alias of the
  numpy call the engines made before the seam existed, so the call
  sequence against the ``Generator`` is unchanged and results are
  **bit-identical** to the pre-backend engines (the ensemble ``R == 1``
  bit-exactness contract of :mod:`repro.engine.ensemble` survives).
* ``cupy`` — count matrices live on the device; random variates are
  still drawn by the host ``numpy.random.Generator`` (CuPy's generator
  has no multinomial and would change the stream anyway) and shipped
  over.  Per-replication marginals therefore follow the exact same law,
  but device arithmetic reorders float reductions, so equality with the
  numpy backend is **law-level**, not bitwise — pinned by KS tests in
  ``tests/test_backend.py`` (auto-skipped when no GPU is present).

Selection mirrors :mod:`repro.core.hazard_kernel`: the ``REPRO_BACKEND``
environment variable picks ``numpy`` (default), ``cupy`` or ``auto``;
an unavailable explicit choice degrades to numpy with a
:class:`RuntimeWarning`.  Engines also accept ``backend=`` directly for
programmatic selection.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from .exceptions import ConfigurationError

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "ArrayBackend",
    "BackendUnavailable",
    "BackendProbe",
    "NumpyBackend",
    "CupyBackend",
    "available_backends",
    "get_backend",
    "active_backend",
    "active_backend_name",
    "resolve_backend",
    "reset_active_backend",
]

#: environment variable naming the ensemble count-array backend.
BACKEND_ENV = "REPRO_BACKEND"
#: accepted ``REPRO_BACKEND`` values.
BACKEND_NAMES = ("numpy", "cupy", "auto")
#: probe order of ``auto``.
_AUTO_ORDER = ("cupy",)


class BackendUnavailable(RuntimeError):
    """An array backend cannot be used in this environment."""


@dataclass(frozen=True)
class BackendProbe:
    """Availability of one array backend."""

    name: str
    available: bool
    detail: str


class ArrayBackend:
    """Namespace of the count-array operations the ensemble engines use.

    ``xp`` is the backing array module (numpy-compatible namespace);
    the draw methods take the host :class:`numpy.random.Generator` so
    every backend consumes the *same stream in the same order* — the
    backend only decides where the resulting arrays live.
    """

    name = "abstract"
    #: backing array module; subclasses set this.
    xp = None

    # -- array residency -------------------------------------------------
    def asarray(self, a, dtype=None):
        """Adopt *a* into this backend's array type."""
        raise NotImplementedError

    def to_host(self, a) -> np.ndarray:
        """A numpy view/copy of *a* for host-side protocol hooks."""
        raise NotImplementedError

    # -- stacked random draws --------------------------------------------
    def multinomial(self, rng: np.random.Generator, n, pvals):
        raise NotImplementedError

    def binomial(self, rng: np.random.Generator, n, p):
        raise NotImplementedError

    def gamma(self, rng: np.random.Generator, shape):
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """The reference backend: every method is the plain numpy call."""

    name = "numpy"
    xp = np

    def asarray(self, a, dtype=None):
        return np.asarray(a, dtype=dtype)

    def to_host(self, a) -> np.ndarray:
        return a

    def multinomial(self, rng, n, pvals):
        return rng.multinomial(n, pvals)

    def binomial(self, rng, n, p):
        return rng.binomial(n, p)

    def gamma(self, rng, shape):
        return rng.gamma(shape)


class CupyBackend(ArrayBackend):
    """Device-resident count matrices; host RNG (see the module note).

    Experimental: correct by construction (same host stream, same law)
    but only exercised where a GPU exists — the test suite KS-checks it
    and auto-skips otherwise.
    """

    name = "cupy"

    def __init__(self, cupy_module):
        self.xp = cupy_module

    def asarray(self, a, dtype=None):
        return self.xp.asarray(a, dtype=dtype)

    def to_host(self, a) -> np.ndarray:
        if isinstance(a, self.xp.ndarray):
            return self.xp.asnumpy(a)
        return np.asarray(a)

    def _host(self, a):
        """Host twin of *a* for feeding the host ``Generator``."""
        if isinstance(a, self.xp.ndarray):
            return self.xp.asnumpy(a)
        return a

    def _ship(self, a):
        return self.xp.asarray(a)

    def multinomial(self, rng, n, pvals):
        return self._ship(rng.multinomial(self._host(n), self._host(pvals)))

    def binomial(self, rng, n, p):
        return self._ship(rng.binomial(self._host(n), self._host(p)))

    def gamma(self, rng, shape):
        return self._ship(rng.gamma(self._host(shape)))


def _build_numpy_backend() -> NumpyBackend:
    return NumpyBackend()


def _build_cupy_backend() -> CupyBackend:
    try:
        import cupy
    except ImportError as exc:
        raise BackendUnavailable(
            f"cupy is not installed (pip install 'repro-consensus[gpu]'): {exc}"
        ) from exc
    try:
        if cupy.cuda.runtime.getDeviceCount() < 1:
            raise BackendUnavailable("cupy is installed but no CUDA device is visible")
        # One tiny round-trip: catches driver/toolkit mismatches eagerly.
        cupy.asnumpy(cupy.zeros(1))
    except BackendUnavailable:
        raise
    except Exception as exc:
        raise BackendUnavailable(f"cupy cannot reach a CUDA device: {exc}") from exc
    return CupyBackend(cupy)


_BUILDERS = {"numpy": _build_numpy_backend, "cupy": _build_cupy_backend}

_backends: Dict[str, ArrayBackend] = {}
_failures: Dict[str, str] = {}


def get_backend(name: Optional[str]) -> ArrayBackend:
    """The backend registered under *name* (built on first use).

    ``None``/``""`` mean numpy; ``"auto"`` returns the first available
    accelerator backend, else numpy.  An explicit unavailable name
    raises :class:`BackendUnavailable`; use :func:`active_backend` for
    the degrade-with-warning behaviour.
    """
    if name in (None, ""):
        name = "numpy"
    if name == "auto":
        for candidate in _AUTO_ORDER:
            try:
                return get_backend(candidate)
            except BackendUnavailable:
                continue
        return get_backend("numpy")
    if name not in _BUILDERS:
        raise ConfigurationError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if name in _backends:
        return _backends[name]
    if name in _failures:
        raise BackendUnavailable(_failures[name])
    try:
        backend = _BUILDERS[name]()
    except BackendUnavailable as exc:
        _failures[name] = str(exc)
        raise
    except Exception as exc:  # defensive: builders should raise BackendUnavailable
        _failures[name] = f"{type(exc).__name__}: {exc}"
        raise BackendUnavailable(_failures[name]) from exc
    _backends[name] = backend
    return backend


def available_backends() -> Dict[str, BackendProbe]:
    """Probe every backend; ``numpy`` is always available."""
    probes = {}
    for name in _BUILDERS:
        try:
            backend = get_backend(name)
            detail = "reference count-array backend" if name == "numpy" else "device-resident"
            probes[name] = BackendProbe(name, True, detail)
        except BackendUnavailable as exc:
            probes[name] = BackendProbe(name, False, str(exc))
    return probes


_UNRESOLVED = object()
_active: object = _UNRESOLVED


def active_backend() -> ArrayBackend:
    """The process-wide backend selected by ``REPRO_BACKEND``.

    Resolved once per process; an unavailable explicit choice degrades
    to numpy with a :class:`RuntimeWarning` — loud, never fatal.
    """
    global _active
    if _active is _UNRESOLVED:
        name = (os.environ.get(BACKEND_ENV) or "numpy").strip().lower()
        if name not in BACKEND_NAMES:
            raise ConfigurationError(
                f"{BACKEND_ENV}={name!r}: expected one of {BACKEND_NAMES}"
            )
        try:
            _active = get_backend(name)
        except BackendUnavailable as exc:
            warnings.warn(
                f"{BACKEND_ENV}={name} is unavailable here, falling back to "
                f"numpy: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            _active = get_backend("numpy")
    return _active  # type: ignore[return-value]


def active_backend_name() -> str:
    """Name of the resolved process-wide backend."""
    return active_backend().name


def resolve_backend(backend: Union[None, str, ArrayBackend]) -> ArrayBackend:
    """Engine-constructor helper: ``None`` → env-selected backend,
    a name → :func:`get_backend` (raising when unavailable — an explicit
    programmatic request should not silently degrade), an
    :class:`ArrayBackend` instance → itself."""
    if backend is None:
        return active_backend()
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)


def reset_active_backend() -> None:
    """Forget the resolved ``REPRO_BACKEND`` choice (test hook)."""
    global _active
    _active = _UNRESOLVED

"""Agent-level simulation state.

The agent-based engines keep per-node state in flat numpy arrays (one
entry per node) gathered in a :class:`NodeArrayState`.  Structure-of-
arrays beats an object per node by orders of magnitude in Python, and it
lets protocols vectorise whole-round updates.

The asynchronous protocol of the paper additionally needs per-node
*working time*, *real time*, the one extra *bit*, an *intermediate
colour* register and the Sync Gadget's sample buffer; those live in
:class:`AsyncNodeState`, a superset used only by the phased protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .colors import ColorConfiguration, counts_from_assignment
from .exceptions import ConfigurationError

__all__ = ["NodeArrayState", "AsyncNodeState", "NO_COLOR"]

#: Sentinel for "no intermediate colour set" (paper: the two sampled
#: neighbours disagreed, so the node does not pre-commit).
NO_COLOR = -1


@dataclass
class NodeArrayState:
    """Structure-of-arrays state shared by all agent-based protocols.

    Attributes
    ----------
    colors:
        ``int64[n]`` — current opinion of every node.
    k:
        Number of colour classes (fixed for the lifetime of a run).
    """

    colors: np.ndarray
    k: int

    def __post_init__(self):
        self.colors = np.asarray(self.colors, dtype=np.int64)
        if self.colors.ndim != 1:
            raise ConfigurationError("colors must be a 1-D array")
        if self.colors.size == 0:
            raise ConfigurationError("state needs at least one node")
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        if self.colors.min() < 0 or self.colors.max() >= self.k:
            raise ConfigurationError("colour labels out of range for k")

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.colors.size

    def configuration(self) -> ColorConfiguration:
        """Snapshot of colour counts (O(n))."""
        return counts_from_assignment(self.colors, k=self.k)

    def counts(self) -> np.ndarray:
        """Raw counts vector as an array (O(n))."""
        return np.bincount(self.colors, minlength=self.k)

    def is_consensus(self) -> bool:
        """True iff every node holds the same colour."""
        first = self.colors[0]
        return bool(np.all(self.colors == first))

    def copy(self) -> "NodeArrayState":
        return NodeArrayState(colors=self.colors.copy(), k=self.k)


@dataclass
class AsyncNodeState(NodeArrayState):
    """State for the asynchronous phased protocol (Theorem 1.3).

    Extra per-node attributes beyond :class:`NodeArrayState`:

    working_time:
        The schedule-relevant clock the Sync Gadget manipulates.
    real_time:
        Total number of ticks the node has ever performed; the Sync
        Gadget reads *other* nodes' real times but never rewrites them.
    bit:
        The one extra bit of the memory model ("I changed my opinion in
        the last Two-Choices step" / "I learned a fresh opinion").
    intermediate:
        Colour pre-committed in the Two-Choices step (``NO_COLOR`` if
        the two samples disagreed), adopted at the commit step.
    terminated:
        Nodes that finished the endgame and froze their colour.
    sync_samples:
        Per-node list of aged real-time samples collected during the
        current Sync-Gadget sub-phase (cleared at each jump step).
    """

    working_time: np.ndarray = None
    real_time: np.ndarray = None
    bit: np.ndarray = None
    intermediate: np.ndarray = None
    terminated: np.ndarray = None
    sync_samples: List[list] = field(default_factory=list)

    def __post_init__(self):
        super().__post_init__()
        n = self.n
        if self.working_time is None:
            self.working_time = np.zeros(n, dtype=np.int64)
        if self.real_time is None:
            self.real_time = np.zeros(n, dtype=np.int64)
        if self.bit is None:
            self.bit = np.zeros(n, dtype=bool)
        if self.intermediate is None:
            self.intermediate = np.full(n, NO_COLOR, dtype=np.int64)
        if self.terminated is None:
            self.terminated = np.zeros(n, dtype=bool)
        if not self.sync_samples:
            self.sync_samples = [[] for _ in range(n)]
        for name in ("working_time", "real_time", "bit", "intermediate", "terminated"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ConfigurationError(f"{name} must have shape ({n},), got {arr.shape}")

    def working_time_spread(self, quantile: float = 1.0) -> int:
        """Spread of working times among active nodes.

        With ``quantile=1.0`` this is max-min; smaller quantiles drop
        the tails, matching the paper's "all but o(n) nodes are within
        ``Delta`` of one another" notion (use e.g. ``quantile=0.99``).
        """
        active = self.working_time[~self.terminated]
        if active.size == 0:
            return 0
        if quantile >= 1.0:
            return int(active.max() - active.min())
        lo = np.quantile(active, (1.0 - quantile) / 2.0)
        hi = np.quantile(active, 1.0 - (1.0 - quantile) / 2.0)
        return int(round(hi - lo))

    def copy(self) -> "AsyncNodeState":
        return AsyncNodeState(
            colors=self.colors.copy(),
            k=self.k,
            working_time=self.working_time.copy(),
            real_time=self.real_time.copy(),
            bit=self.bit.copy(),
            intermediate=self.intermediate.copy(),
            terminated=self.terminated.copy(),
            sync_samples=[list(s) for s in self.sync_samples],
        )

"""Core model types shared by every subsystem.

Public surface:

* :class:`~repro.core.colors.ColorConfiguration` — immutable opinion
  counts with the paper's bias quantities.
* :class:`~repro.core.state.NodeArrayState` /
  :class:`~repro.core.state.AsyncNodeState` — agent-level state arrays.
* :class:`~repro.core.results.RunResult` / :class:`~repro.core.results.Trace`
  — run outcomes and snapshots.
* :mod:`~repro.core.rng` — seeding and stream splitting.
* the exception hierarchy in :mod:`~repro.core.exceptions`.
"""

from .colors import ColorConfiguration, assignment_from_counts, counts_from_assignment
from .exceptions import (
    ConfigurationError,
    ConvergenceError,
    ExperimentError,
    ProtocolError,
    ReproError,
    ScheduleError,
    TopologyError,
)
from .results import RunResult, Trace, TracePoint
from .rng import as_generator, random_seed, spawn_seed_sequences, spawn_seeds, split
from .state import NO_COLOR, AsyncNodeState, NodeArrayState

__all__ = [
    "ColorConfiguration",
    "assignment_from_counts",
    "counts_from_assignment",
    "ConfigurationError",
    "ConvergenceError",
    "ExperimentError",
    "ProtocolError",
    "ReproError",
    "ScheduleError",
    "TopologyError",
    "RunResult",
    "Trace",
    "TracePoint",
    "as_generator",
    "random_seed",
    "spawn_seeds",
    "spawn_seed_sequences",
    "split",
    "NO_COLOR",
    "AsyncNodeState",
    "NodeArrayState",
]

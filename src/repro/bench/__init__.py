"""Benchmark harness: the experiment registry and its plumbing."""

from .experiments import EXPERIMENTS, experiment_ids, run_all, run_experiment
from .harness import FULL, QUICK, ExperimentReport, ExperimentScale, run_engine_trials, run_trials
from .report import render_markdown_table, render_payload, render_report
from .store import ResultStore, bench_environment, save_bench_payload
from .tables import format_table

__all__ = [
    "EXPERIMENTS",
    "experiment_ids",
    "run_all",
    "run_experiment",
    "FULL",
    "QUICK",
    "ExperimentReport",
    "ExperimentScale",
    "run_trials",
    "run_engine_trials",
    "ResultStore",
    "bench_environment",
    "save_bench_payload",
    "render_markdown_table",
    "render_payload",
    "render_report",
    "format_table",
]

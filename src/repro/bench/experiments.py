"""Experiment registry: DESIGN.md's per-experiment index, executable.

Usage::

    from repro.bench import run_experiment, QUICK
    report = run_experiment("T6", QUICK)
    print(report.format())

or from the command line::

    python -m repro run T6
    python -m repro run all --scale full --store results/
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.exceptions import ExperimentError
from .experiments_ablations import (
    experiment_a1_clock_skew,
    experiment_a2_sync_samples,
    experiment_a3_delta_factor,
    experiment_a4_bp_length,
)
from .experiments_async import (
    experiment_t6_async_runtime,
    experiment_t7_sync_gadget,
    experiment_t8_bit_propagation_polya,
    experiment_t9_endgame,
    experiment_t10_model_equivalence,
    experiment_t12_response_delays,
)
from .experiments_substrate import experiment_s1_rumor_spreading
from .experiments_sync import (
    experiment_t1_two_choices_runtime,
    experiment_t2_two_choices_lower_bound,
    experiment_t3_bias_threshold,
    experiment_t4_one_extra_bit,
    experiment_t5_quadratic_growth,
    experiment_t11_protocol_comparison,
)
from .harness import FULL, QUICK, ExperimentReport, ExperimentScale
from .store import ResultStore

__all__ = ["EXPERIMENTS", "experiment_ids", "run_experiment", "run_all"]

EXPERIMENTS: Dict[str, Callable[[ExperimentScale], ExperimentReport]] = {
    "T1": experiment_t1_two_choices_runtime,
    "T2": experiment_t2_two_choices_lower_bound,
    "T3": experiment_t3_bias_threshold,
    "T4": experiment_t4_one_extra_bit,
    "T5": experiment_t5_quadratic_growth,
    "T6": experiment_t6_async_runtime,
    "T7": experiment_t7_sync_gadget,
    "T8": experiment_t8_bit_propagation_polya,
    "T9": experiment_t9_endgame,
    "T10": experiment_t10_model_equivalence,
    "T11": experiment_t11_protocol_comparison,
    "T12": experiment_t12_response_delays,
    # Ablations of the protocol's design constants (DESIGN.md section 4).
    "A1": experiment_a1_clock_skew,
    "A2": experiment_a2_sync_samples,
    "A3": experiment_a3_delta_factor,
    "A4": experiment_a4_bp_length,
    # Substrate validation (S-series).
    "S1": experiment_s1_rumor_spreading,
}


_GROUP_ORDER = {"T": 0, "A": 1, "S": 2}


def experiment_ids() -> List[str]:
    """All registered experiment ids: theorem experiments first (T1..),
    then the design-constant ablations (A1..), then substrate checks (S1..)."""
    return sorted(EXPERIMENTS, key=lambda eid: (_GROUP_ORDER.get(eid[0], 9), int(eid[1:])))


def run_experiment(
    experiment_id: str,
    scale: ExperimentScale = QUICK,
    store: Optional[ResultStore] = None,
) -> ExperimentReport:
    """Run one experiment; optionally persist its payload."""
    try:
        fn = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; valid ids: {', '.join(experiment_ids())}"
        ) from None
    report = fn(scale)
    if store is not None:
        store.save(report.experiment_id, report.to_dict())
    return report


def run_all(
    scale: ExperimentScale = QUICK,
    store: Optional[ResultStore] = None,
    ids: Optional[List[str]] = None,
) -> List[ExperimentReport]:
    """Run every experiment (or the given subset), in index order."""
    selected = ids if ids is not None else experiment_ids()
    return [run_experiment(eid, scale=scale, store=store) for eid in selected]

"""Substrate-validation experiments (S-series).

These validate the building blocks the paper's protocols stand on —
currently S1, the rumour-spreading primitive that Bit-Propagation is an
instance of ("we combine the two-choices process with a rumor spreading
algorithm", Section 1.1).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..analysis import statistics as stats
from ..protocols.rumor import spread_rumor_counts
from .harness import ExperimentReport, ExperimentScale, run_trials, timed

__all__ = ["experiment_s1_rumor_spreading"]


def experiment_s1_rumor_spreading(scale: ExperimentScale) -> ExperimentReport:
    """S1 — push / pull / push-pull broadcast completes in Theta(log n)
    rounds, and push-pull beats either primitive alone.

    Classic predictions on ``K_n`` from one informed node: push needs
    ``~log2 n + ln n`` rounds, pull symmetrically, and push-pull
    ``~log3 n + O(log log n)`` (Karp et al.) — all ``Theta(log n)``;
    what the paper needs is exactly the doubling-per-round growth that
    lets Bit-Propagation cover the graph in ``O(log n / log log n)``
    sub-phase ticks per node.
    """
    with timed() as clock:
        ns = [scale.scaled(base) for base in (10_000, 100_000, 1_000_000)]
        trials = max(5, scale.trials)
        rows: List[List] = []
        per_mode_rounds = {mode: [] for mode in ("push", "pull", "push-pull")}
        for n in ns:
            for mode in ("push", "pull", "push-pull"):
                results = run_trials(
                    lambda s: spread_rumor_counts(n, mode=mode, seed=s, record_trace=False),
                    trials,
                    scale.seed + n + len(mode),
                )
                rounds = [r.rounds for r in results if r.converged]
                mean = float(np.mean(rounds))
                per_mode_rounds[mode].append(mean)
                rows.append([n, mode, mean, mean / math.log2(n), f"{len(rounds)}/{trials}"])
        slopes = {
            mode: stats.fit_power_law(ns, series)[0] for mode, series in per_mode_rounds.items()
        }
        checks = {
            # Theta(log n): strongly sublinear power-law exponents.
            "push_is_logarithmic": slopes["push"] <= 0.35,
            "pull_is_logarithmic": slopes["pull"] <= 0.35,
            "push_pull_is_logarithmic": slopes["push-pull"] <= 0.35,
            # Push-pull strictly beats each primitive alone at every n.
            "push_pull_fastest": all(
                pp < min(p, q)
                for pp, p, q in zip(
                    per_mode_rounds["push-pull"], per_mode_rounds["push"], per_mode_rounds["pull"]
                )
            ),
        }
    report = ExperimentReport(
        experiment_id="S1",
        title="Substrate: rumour spreading on K_n (push / pull / push-pull)",
        claim="all three primitives finish in Theta(log n) rounds; push-pull is fastest",
        headers=["n", "mode", "rounds", "rounds / log2 n", "converged"],
        rows=rows,
        checks=checks,
        params={"ns": ns, "trials": trials},
    )
    report.notes.append(
        "predicted constants: push ~ log2 n + ln n, push-pull ~ log3 n + O(log log n); "
        "the measured rounds/log2 n column shows them"
    )
    report.elapsed_seconds = clock.elapsed
    return report

"""Ablation experiments A1–A4: the design choices DESIGN.md calls out.

The brief announcement fixes its constants only up to ``Theta(.)``; the
phased protocol here exposes every one of them.  These ablations sweep
the four choices that matter and record how the protocol responds —
the empirical justification for the defaults.

* A1 — clock-skew robustness: the paper tolerates ``o(n)`` poorly
  synchronised nodes; we create them deliberately with slow clocks.
* A2 — Sync-Gadget sample count (the ``log^3 log n`` choice).
* A3 — block length ``Delta`` (the ``log n / log log n`` choice).
* A4 — Bit-Propagation sub-phase length.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..protocols.async_plurality import AsyncPluralityConsensus, ClockSkew
from ..workloads.initial import multiplicative_bias
from .harness import ExperimentReport, ExperimentScale, run_trials, timed

__all__ = [
    "experiment_a1_clock_skew",
    "experiment_a2_sync_samples",
    "experiment_a3_delta_factor",
    "experiment_a4_bp_length",
]


def _success_and_time(protocol, config, trials, seed, **run_kwargs):
    results = run_trials(lambda s: protocol.run(config, seed=s, **run_kwargs), trials, seed)
    wins = float(np.mean([r.converged and r.winner == 0 for r in results]))
    times = [r.parallel_time for r in results if r.converged]
    mean_time = float(np.mean(times)) if times else float("nan")
    return wins, mean_time, results


def experiment_a1_clock_skew(scale: ExperimentScale) -> ExperimentReport:
    """A1 — a small fraction of slow clocks is tolerated; a large
    fraction overwhelms the weak-synchronicity budget."""
    with timed() as clock:
        n = scale.scaled(2_000, minimum=400)
        k = 4
        config = multiplicative_bias(n, k, 1.8)
        trials = max(6, scale.trials // 3)
        protocol = AsyncPluralityConsensus()
        variants = [
            ("none", ClockSkew()),
            ("5% at rate 0.3", ClockSkew(0.05, 0.3)),
            ("15% at rate 0.3", ClockSkew(0.15, 0.3)),
            ("30% at rate 0.3", ClockSkew(0.30, 0.3)),
        ]
        rows = []
        win_rates = []
        times = []
        for label, skew in variants:
            wins, mean_time, _ = _success_and_time(
                protocol, config, trials, scale.seed + len(label), record_spread=False, skew=skew
            )
            win_rates.append(wins)
            times.append(mean_time)
            rows.append([label, skew.fraction, skew.rate, wins, mean_time])
        checks = {
            "baseline_succeeds": win_rates[0] >= 0.75,
            "small_skew_tolerated": win_rates[1] >= 0.6,
            "correctness_degrades_gracefully": win_rates[0] + 0.2 >= win_rates[3],
            # The gadget absorbs slow clocks by waiting for them: the
            # cost shows up as run time, monotone in the skewed mass.
            "cost_is_monotone_run_time": times[0] < times[1] < times[3],
        }
    report = ExperimentReport(
        experiment_id="A1",
        title="Ablation: slow-clock fraction (the o(n) poorly-synchronised budget)",
        claim="slow clocks are absorbed by the Sync Gadget at the cost of run time, monotone in the skewed mass",
        headers=["variant", "fraction", "rate", "win-rate", "mean parallel time"],
        rows=rows,
        checks=checks,
        params={"n": n, "k": k, "trials": trials},
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_a2_sync_samples(scale: ExperimentScale) -> ExperimentReport:
    """A2 — Sync-Gadget sampling length vs working-time spread."""
    with timed() as clock:
        n = scale.scaled(3_000, minimum=500)
        k = 8
        config = multiplicative_bias(n, k, 1.5)
        trials = max(3, scale.trials // 2)
        default = AsyncPluralityConsensus().schedule_for(n).sync_samples
        variants = [("2 samples", 2), (f"default ({default})", None), (f"3x default ({3 * default})", 3 * default)]
        rows = []
        late_spreads = []
        for label, samples in variants:
            protocol = AsyncPluralityConsensus(sync_samples=samples)
            wins, mean_time, results = _success_and_time(
                protocol,
                config,
                trials,
                scale.seed + (samples or 0),
                stop_at_consensus=False,
                record_spread=True,
                spread_every_parallel=10.0,
            )
            part_one = results[0].metadata["part_one_length"]
            late = []
            for result in results:
                entries = [e for e in result.metadata["spread_trace"] if e["time"] <= part_one]
                third = max(1, len(entries) // 3)
                late.append(np.mean([e["spread_core"] for e in entries[-third:]]))
            late_spreads.append(float(np.mean(late)))
            rows.append([label, wins, mean_time, late_spreads[-1]])
        checks = {
            "all_variants_converge": all(r[1] >= 0.5 for r in rows),
            # More samples -> tighter medians -> no *worse* late spread.
            "more_samples_never_hurt_sync": late_spreads[2] <= late_spreads[0] * 1.15,
        }
    report = ExperimentReport(
        experiment_id="A2",
        title="Ablation: Sync-Gadget sampling length (the log^3 log n choice)",
        claim="median-of-more-samples jumps give tighter synchronisation at no correctness cost",
        headers=["variant", "win-rate", "mean parallel time", "late core spread"],
        rows=rows,
        checks=checks,
        params={"n": n, "k": k, "trials": trials, "default_samples": default},
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_a3_delta_factor(scale: ExperimentScale) -> ExperimentReport:
    """A3 — block length Delta: tolerance vs schedule length."""
    with timed() as clock:
        n = scale.scaled(2_000, minimum=400)
        k = 8
        config = multiplicative_bias(n, k, 1.5)
        # 12-trial floor with a 0.6 success bar: the true win rate at
        # laptop n sits around 0.8, so a 6-trial >= 0.75 check was a
        # near coin flip against unlucky streams.
        trials = max(12, scale.trials // 2)
        rows = []
        outcomes = {}
        for factor in (0.5, 1.0, 2.0, 4.0):
            protocol = AsyncPluralityConsensus(delta_factor=factor)
            schedule = protocol.schedule_for(n)
            wins, mean_time, _ = _success_and_time(
                protocol, config, trials, scale.seed + int(10 * factor), record_spread=False
            )
            outcomes[factor] = (wins, mean_time)
            rows.append([factor, schedule.delta, schedule.part_one_length, wins, mean_time])
        checks = {
            "default_succeeds": outcomes[1.0][0] >= 0.6,
            "larger_delta_also_succeeds": outcomes[2.0][0] >= 0.6,
            # Bigger blocks mean a strictly longer schedule (the cost side).
            "larger_delta_costs_time": outcomes[4.0][1] > outcomes[1.0][1],
        }
    report = ExperimentReport(
        experiment_id="A3",
        title="Ablation: block length Delta (the log n / log log n choice)",
        claim="larger Delta buys skew tolerance linearly but pays run time linearly",
        headers=["delta_factor", "Delta", "part-one length", "win-rate", "mean parallel time"],
        rows=rows,
        checks=checks,
        params={"n": n, "k": k, "trials": trials},
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_a4_bp_length(scale: ExperimentScale) -> ExperimentReport:
    """A4 — Bit-Propagation sub-phase length: too short leaves bitless
    nodes behind; longer is safe but slower."""
    with timed() as clock:
        n = scale.scaled(2_000, minimum=400)
        k = 8
        config = multiplicative_bias(n, k, 1.8)
        trials = max(6, scale.trials // 3)
        rows = []
        outcomes = {}
        for blocks in (1, 2, 4):
            protocol = AsyncPluralityConsensus(bp_blocks=blocks)
            schedule = protocol.schedule_for(n)
            wins, mean_time, _ = _success_and_time(
                protocol, config, trials, scale.seed + blocks, record_spread=False
            )
            outcomes[blocks] = (wins, mean_time)
            rows.append([blocks, blocks * schedule.delta, schedule.part_one_length, wins, mean_time])
        checks = {
            "default_succeeds": outcomes[2][0] >= 0.75,
            "longer_bp_is_safe": outcomes[4][0] >= outcomes[2][0] - 0.25,
            "longer_bp_costs_time": outcomes[4][1] > outcomes[2][1],
        }
    report = ExperimentReport(
        experiment_id="A4",
        title="Ablation: Bit-Propagation sub-phase length",
        claim="the Theta(log n / log log n) sampling budget saturates the bit spread; more is safe, slower",
        headers=["bp_blocks", "BP ticks/phase", "part-one length", "win-rate", "mean parallel time"],
        rows=rows,
        checks=checks,
        params={"n": n, "k": k, "trials": trials},
    )
    report.elapsed_seconds = clock.elapsed
    return report

"""Experiments T6–T10 and T12: the asynchronous-model claims.

These exercise the paper's main contribution — the phased asynchronous
protocol with the Sync Gadget — plus its endgame, its Pólya-urn
backbone, the sequential/continuous model equivalence, and the
Discussion-section response-delay extension.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..analysis import statistics as stats
from ..analysis.convergence import synchrony_summary
from ..analysis.polya import PolyaUrn, limit_fraction_variance
from ..api import CampaignSpec, SimulationSpec, SweepSpec, run_campaign
from ..core.colors import ColorConfiguration
from ..engine.continuous import ContinuousEngine
from ..engine.delays import ExponentialDelay
from ..engine.sequential import SequentialEngine
from ..graphs.complete import CompleteGraph
from ..protocols.async_plurality import AsyncPluralityConsensus, AsyncPluralityProtocol
from ..protocols.endgame import near_consensus_start, run_endgame
from ..protocols.two_choices import TwoChoicesSequential
from ..workloads.initial import multiplicative_bias, two_colors
from .harness import ExperimentReport, ExperimentScale, run_trials, timed

__all__ = [
    "experiment_t6_async_runtime",
    "experiment_t7_sync_gadget",
    "experiment_t8_bit_propagation_polya",
    "experiment_t9_endgame",
    "experiment_t10_model_equivalence",
    "experiment_t12_response_delays",
]


def experiment_t6_async_runtime(scale: ExperimentScale) -> ExperimentReport:
    """T6 — Theorem 1.3: the asynchronous protocol converges in
    Theta(log n) parallel time and the plurality wins w.h.p."""
    with timed() as clock:
        ns = [scale.scaled(base, minimum=256) for base in (1_024, 2_048, 4_096, 8_192)]
        k = 8
        ratio = 1.5
        trials = max(2, scale.trials // 2)
        protocol = AsyncPluralityConsensus()
        rows = []
        times = []
        win_rates = []
        for n in ns:
            config = multiplicative_bias(n, k, ratio)
            results = run_trials(
                lambda s: protocol.run(config, seed=s, record_spread=False), trials, scale.seed + n
            )
            mean_pt = float(np.mean([r.parallel_time for r in results]))
            wins = float(np.mean([r.converged and r.winner == 0 for r in results]))
            times.append(mean_pt)
            win_rates.append(wins)
            rows.append([n, k, ratio, mean_pt, mean_pt / math.log(n), wins])
        slope, _ = stats.fit_power_law(ns, times)
        per_log = [t / math.log(n) for t, n in zip(times, ns)]
        checks = {
            # Theta(log n): sublinear power-law in n ...
            "strongly_sublinear_in_n": slope <= 0.45,
            # ... and parallel_time / log n confined to a constant band.
            "log_n_band": max(per_log) / min(per_log) <= 2.5,
            "plurality_wins_whp": min(win_rates) >= 0.75,
        }
    report = ExperimentReport(
        experiment_id="T6",
        title="Asynchronous protocol runtime: Theta(log n) (Theorem 1.3)",
        claim="parallel time to consensus grows like log n; the plurality wins w.h.p.",
        headers=["n", "k", "bias ratio", "parallel time", "pt / log n", "win-rate"],
        rows=rows,
        checks=checks,
        params={"ns": ns, "k": k, "ratio": ratio, "trials": trials},
    )
    report.notes.append(f"power-law exponent of parallel time vs n: {slope:.3f} (log-shape predicts ~0.1)")
    report.notes.append(
        "constants are large at laptop n (the schedule is Theta(log n) with factor "
        "phases*(6+sync_blocks)*delta_factor); the check is the growth shape, not the constant"
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t7_sync_gadget(scale: ExperimentScale) -> ExperimentReport:
    """T7 — weak synchronicity: the Sync Gadget caps working-time spread."""
    with timed() as clock:
        n = scale.scaled(4_000, minimum=512)
        k = 8
        config = multiplicative_bias(n, k, 1.5)
        trials = max(2, scale.trials // 2)
        rows = []
        late_core = {}
        growths = {}
        for sync in (True, False):
            protocol = AsyncPluralityConsensus(sync_enabled=sync)
            results = run_trials(
                lambda s: protocol.run(
                    config,
                    seed=s,
                    stop_at_consensus=False,
                    record_spread=True,
                    spread_every_parallel=10.0,
                ),
                trials,
                scale.seed + int(sync),
            )
            part_one = results[0].metadata["part_one_length"]
            early, late, poor = [], [], []
            for result in results:
                entries = [e for e in result.metadata["spread_trace"] if e["time"] <= part_one]
                third = max(1, len(entries) // 3)
                early.append(np.mean([e["spread_core"] for e in entries[:third]]))
                late.append(np.mean([e["spread_core"] for e in entries[-third:]]))
                poor.append(max(e["poor_fraction_4x"] for e in entries))
            early_mean = float(np.mean(early))
            late_mean = float(np.mean(late))
            growth = late_mean / max(early_mean, 1e-9)
            late_core[sync] = late_mean
            growths[sync] = growth
            summary = synchrony_summary(results[0], until_parallel_time=part_one)
            rows.append(
                [
                    "with gadget" if sync else "no gadget",
                    early_mean,
                    late_mean,
                    growth,
                    float(np.mean(poor)),
                    summary["max_spread"],
                ]
            )
        checks = {
            "gadget_caps_spread": late_core[True] < 0.75 * late_core[False],
            "unsynced_spread_keeps_growing": growths[False] > growths[True] * 1.15,
        }
    report = ExperimentReport(
        experiment_id="T7",
        title="Sync Gadget: working-time spread with and without (Section 3.1)",
        claim="with the gadget the spread plateaus each phase; without it it grows like sqrt(t)",
        headers=["variant", "early core spread", "late core spread", "growth", "max poor(4*Delta)", "max spread"],
        rows=rows,
        checks=checks,
        params={"n": n, "k": k, "trials": trials},
    )
    report.notes.append(
        "at laptop n the within-phase Poisson noise already exceeds the asymptotic Delta, so "
        "poor-fractions use 4*Delta; the asymptotic statement is about the *growth* contrast"
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t8_bit_propagation_polya(scale: ExperimentScale) -> ExperimentReport:
    """T8 — Bit-Propagation is a Pólya urn: colour fractions among
    bit-set nodes are (almost) preserved while the urn grows."""
    with timed() as clock:
        n = scale.scaled(40_000)
        k = 8
        ratio = 1.5
        config = multiplicative_bias(n, k, ratio)
        # Post-Two-Choices bit-set population: ~ c_j^2 / n per colour.
        initial = np.maximum((np.array(config.counts, dtype=float) ** 2 / n).astype(np.int64), 1)
        urn_total = int(initial.sum())
        draws = n - urn_total  # grow the urn to system size, like Bit-Propagation does
        trials = max(10, scale.trials * 2)
        start_fraction = float(initial[0] / urn_total)

        def one_trial(seed):
            urn = PolyaUrn(initial.tolist())
            urn.run(draws, seed=seed)
            return float(urn.fractions()[0])

        finals = run_trials(one_trial, trials, scale.seed)
        mean_final = float(np.mean(finals))
        std_final = float(np.std(finals, ddof=1))
        limit_std = math.sqrt(limit_fraction_variance(initial.tolist(), 0))
        sem = std_final / math.sqrt(trials)
        rows = [
            [
                k,
                urn_total,
                draws,
                start_fraction,
                mean_final,
                std_final,
                limit_std,
            ]
        ]
        checks = {
            # Martingale: the mean fraction does not move (3 SEM band).
            "fraction_is_preserved_in_mean": abs(mean_final - start_fraction) <= 3 * sem + 1e-6,
            # Fluctuations bounded by the limiting Beta law.
            "fluctuations_bounded_by_beta_limit": std_final <= 1.8 * limit_std,
        }
    report = ExperimentReport(
        experiment_id="T8",
        title="Bit-Propagation as a Pólya urn (Section 3.1)",
        claim="the colour mix of bit-set nodes is a martingale while the urn grows to ~n",
        headers=["k", "urn start", "draws", "start frac C1", "mean final frac", "std", "beta-limit std"],
        rows=rows,
        checks=checks,
        params={"n": n, "k": k, "trials": trials},
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t9_endgame(scale: ExperimentScale) -> ExperimentReport:
    """T9 — Section 3.2: from c1 >= (1-eps) n, asynchronous Two-Choices
    finishes everyone before the first node terminates, w.h.p."""
    with timed() as clock:
        ns = [scale.scaled(base, minimum=256) for base in (2_000, 8_000)]
        k = 8
        epsilon = 0.1
        trials = scale.trials
        rows = []
        orderings = []
        for n in ns:
            config = near_consensus_start(n, k, epsilon)
            results = run_trials(lambda s: run_endgame(config, seed=s), trials, scale.seed + n)
            order_ok = [bool(r.metadata["consensus_before_first_termination"]) for r in results]
            wins = [r.converged and r.winner == 0 for r in results]
            consensus_times = [
                r.metadata["first_consensus_parallel_time"]
                for r in results
                if r.metadata["first_consensus_parallel_time"] is not None
            ]
            mean_ct = float(np.mean(consensus_times)) if consensus_times else float("nan")
            estimate = stats.estimate_success(order_ok)
            orderings.append(estimate.rate)
            rows.append([n, epsilon, mean_ct, mean_ct / math.log(n), estimate.rate, float(np.mean(wins))])
        checks = {
            "consensus_precedes_first_termination_whp": min(orderings) >= 0.8,
            "endgame_time_logarithmic": all(
                r[3] <= 8.0 for r in rows if not math.isnan(r[3])
            ),
        }
    report = ExperimentReport(
        experiment_id="T9",
        title="Endgame: consensus before the first termination (Section 3.2)",
        claim="plain async Two-Choices from c1=(1-eps)n reaches consensus before any node stops",
        headers=["n", "eps", "consensus pt", "pt / log n", "P(order holds)", "win-rate"],
        rows=rows,
        checks=checks,
        params={"ns": ns, "k": k, "epsilon": epsilon, "trials": trials},
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t10_model_equivalence(scale: ExperimentScale) -> ExperimentReport:
    """T10 — the sequential model and the continuous Poisson-clock model
    give the same run time (the equivalence the paper cites [4] for),
    and the batched counts fast path draws from the same law as both."""
    with timed() as clock:
        n = scale.scaled(2_000, minimum=256)
        gap = int(0.2 * n)
        config = two_colors(n, gap)
        topology = CompleteGraph(n)
        # 40-trial floor: the CI-overlap check needs tighter intervals
        # than 24 trials give (the engines are fast enough now).
        trials = max(40, scale.trials * 2)
        protocol = TwoChoicesSequential()
        sequential = SequentialEngine(protocol, topology)
        continuous = ContinuousEngine(protocol, topology)
        seq_results = run_trials(lambda s: sequential.run(config, seed=s), trials, scale.seed)
        cont_results = run_trials(lambda s: continuous.run(config, seed=s), trials, scale.seed + 1)
        # The fast path goes through the declarative front door as a
        # singleton campaign: the reference engines above are
        # deliberately hand-wired (they ARE the baselines being
        # compared), while the dispatched leg is exactly what
        # `run_campaign` routes through `simulate` for this spec.
        fast_sim = run_campaign(
            CampaignSpec(
                base=SimulationSpec(
                    protocol="two-choices",
                    n=n,
                    model="sequential",
                    initial="two-colors",
                    initial_params={"gap": gap},
                    reps=trials,
                ),
                sweep=SweepSpec(axes={"seed": [scale.seed + 2]}, mode="zip"),
                name="T10/fast-path",
            ),
            executor="serial",
        ).points[0].result
        fast_results = fast_sim.runs
        seq_times = [r.parallel_time for r in seq_results if r.converged]
        cont_times = [r.parallel_time for r in cont_results if r.converged]
        fast_times = [r.parallel_time for r in fast_results if r.converged]
        seq_mean, seq_low, seq_high = stats.bootstrap_mean_ci(seq_times)
        cont_mean, cont_low, cont_high = stats.bootstrap_mean_ci(cont_times)
        fast_mean, fast_low, fast_high = stats.bootstrap_mean_ci(fast_times)
        # Permutation p-values: the sequential samples live on the
        # ticks/n grid while the continuous ones do not, and scipy's
        # asymptotic KS p-value over-rejects on such tied-vs-continuous
        # comparisons (~9% at 40/40); the permutation null is exact
        # under exchangeability, ties and all.
        ks_statistic, ks_pvalue = stats.ks_permutation_test(seq_times, cont_times)
        fast_ks_statistic, fast_ks_pvalue = stats.ks_permutation_test(seq_times, fast_times)
        rows = [
            ["sequential (ticks/n)", len(seq_times), seq_mean, seq_low, seq_high],
            ["continuous (Poisson)", len(cont_times), cont_mean, cont_low, cont_high],
            ["counts fast path (batched)", len(fast_times), fast_mean, fast_low, fast_high],
        ]
        overlap = not (seq_high < cont_low or cont_high < seq_low)
        fast_overlap = not (seq_high < fast_low or fast_high < seq_low)
        checks = {
            "confidence_intervals_overlap": overlap,
            "means_within_25_percent": abs(seq_mean - cont_mean) <= 0.25 * max(seq_mean, cont_mean),
            "both_always_converge": len(seq_times) == trials and len(cont_times) == trials,
            # Whole-distribution agreement, not just the means.
            "ks_test_not_rejected": ks_pvalue >= 0.01,
            # The dispatcher's K_n fast path is a drop-in: same law.
            "fast_path_is_counts_engine": fast_sim.engine == "EnsembleCountsSequentialEngine",
            "fast_path_always_converges": len(fast_times) == trials,
            "fast_path_cis_overlap": fast_overlap,
            "fast_path_ks_not_rejected": fast_ks_pvalue >= 0.01,
        }
    report = ExperimentReport(
        experiment_id="T10",
        title="Sequential vs continuous-time model equivalence (Section 1)",
        claim="run-time distributions agree between the two asynchronous formulations "
        "(and the batched counts fast path matches both)",
        headers=["model", "runs", "mean parallel time", "ci-low", "ci-high"],
        rows=rows,
        checks=checks,
        params={"n": n, "gap": gap, "trials": trials},
    )
    report.notes.append(
        f"two-sample KS (permutation): statistic {ks_statistic:.3f}, p-value {ks_pvalue:.3f} "
        "(equivalence predicts no rejection)"
    )
    report.notes.append(
        f"fast path (ensemble) vs sequential KS (permutation): "
        f"statistic {fast_ks_statistic:.3f}, p-value {fast_ks_pvalue:.3f}"
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t12_response_delays(scale: ExperimentScale) -> ExperimentReport:
    """T12 — Discussion-section extension: the protocol tolerates
    exponential response delays with constant parameter."""
    with timed() as clock:
        n = scale.scaled(600, minimum=128)
        k = 4
        config = multiplicative_bias(n, k, 1.8)
        topology = CompleteGraph(n)
        trials = max(2, scale.trials // 2)
        variants = [
            ("no delay", None),
            ("exp(rate=1.0)", ExponentialDelay(rate=1.0)),
            ("exp(rate=0.5)", ExponentialDelay(rate=0.5)),
        ]
        rows = []
        win_rates = {}
        mean_times = {}
        for label, delay in variants:
            protocol = AsyncPluralityProtocol()
            engine = ContinuousEngine(protocol, topology, delay_model=delay)
            schedule = protocol.params.compile(n)
            max_time = 4.0 * schedule.total_length

            def one_run(seed):
                return engine.run(config, seed=seed, max_time=max_time)

            results = run_trials(one_run, trials, scale.seed + sum(ord(c) for c in label))
            wins = [r.converged and r.winner == 0 for r in results]
            times = [r.parallel_time for r in results if r.converged]
            win_rates[label] = float(np.mean(wins))
            mean_times[label] = float(np.mean(times)) if times else float("nan")
            rows.append([label, win_rates[label], mean_times[label], trials])
        checks = {
            "baseline_succeeds": win_rates["no delay"] >= 0.5,
            "tolerates_unit_rate_delays": win_rates["exp(rate=1.0)"] >= 0.5,
            "slowdown_bounded": (
                math.isnan(mean_times["exp(rate=1.0)"])
                or mean_times["exp(rate=1.0)"] <= 3.0 * mean_times["no delay"]
            ),
        }
    report = ExperimentReport(
        experiment_id="T12",
        title="Response-delay robustness (Discussion extension)",
        claim="consensus survives exponential response delays with constant parameter",
        headers=["delay model", "win-rate", "mean parallel time", "trials"],
        rows=rows,
        checks=checks,
        params={"n": n, "k": k, "trials": trials},
    )
    report.notes.append(
        "nodes busy-wait while a request is in flight (their clock ticks perform no action); "
        "the modelling choice is documented in repro.engine.continuous"
    )
    report.elapsed_seconds = clock.elapsed
    return report

"""Markdown report generation from a result store.

``python -m repro report --store results_full`` renders every stored
experiment payload into one markdown document — the mechanical source
behind EXPERIMENTS.md's numbers.
"""

from __future__ import annotations

from typing import List, Optional

from .store import ResultStore
from .tables import format_cell

__all__ = ["render_markdown_table", "render_payload", "render_report"]


def render_markdown_table(headers: List[str], rows: List[List]) -> str:
    """GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(format_cell(v) for v in row) + " |")
    return "\n".join(lines)


def render_payload(payload: dict) -> str:
    """One experiment payload -> one markdown section."""
    lines = [
        f"## {payload['experiment_id']} — {payload['title']}",
        "",
        f"**Claim:** {payload['claim']}",
        "",
        render_markdown_table(payload["headers"], payload["rows"]),
        "",
    ]
    checks = payload.get("checks") or {}
    if checks:
        lines.append("**Shape checks:** " + ", ".join(
            f"{name} {'PASS' if ok else 'FAIL'}" for name, ok in checks.items()
        ))
        lines.append("")
    for note in payload.get("notes") or []:
        lines.append(f"*Note:* {note}")
        lines.append("")
    elapsed = payload.get("elapsed_seconds")
    if elapsed is not None:
        lines.append(f"*Elapsed:* {elapsed:.1f}s")
        lines.append("")
    return "\n".join(lines)


def render_report(store: ResultStore, ids: Optional[List[str]] = None, title: str = "Experiment report") -> str:
    """Render every stored experiment (or a subset) into one document."""
    selected = ids if ids is not None else store.list_ids()
    sections = [f"# {title}", ""]
    failures = 0
    for experiment_id in selected:
        payload = store.load(experiment_id)
        sections.append(render_payload(payload))
        failures += sum(1 for ok in (payload.get("checks") or {}).values() if not ok)
    verdict = "all shape checks pass" if failures == 0 else f"{failures} shape check(s) FAIL"
    sections.insert(2, f"_{len(selected)} experiments; {verdict}._\n")
    return "\n".join(sections)

"""Experiments T1–T5 and T11: the synchronous-model claims.

See DESIGN.md section 3 for the experiment index.  Every function takes
an :class:`~repro.bench.harness.ExperimentScale` and returns an
:class:`~repro.bench.harness.ExperimentReport` whose ``checks`` encode
the theorem's *shape* (who wins, growth exponents, crossovers).

A recurring subtlety: Theorem 1.1's run time is driven by ``n / c1``,
not by ``k`` directly.  With the gap pinned at ``z*sqrt(n log n)`` and
balanced runners-up, ``c1 = n/k + gap`` saturates towards the gap as
``k`` grows, so ``n/c1`` caps at ``~sqrt(n / log n)``; the linear-in-k
regime therefore requires ``k << sqrt(n / log n)``, which the sweeps
below respect (and the checks are phrased against ``n/c1``, the
quantity the theorem actually names).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..analysis import statistics as stats
from ..analysis import theory
from ..analysis.convergence import per_phase_ratio_growth, ratio_trace
from ..api import CampaignSpec, SimulationSpec, SweepSpec, run_campaign
from ..protocols.one_extra_bit import default_bp_rounds
from .harness import ExperimentReport, ExperimentScale, timed

__all__ = [
    "experiment_t1_two_choices_runtime",
    "experiment_t2_two_choices_lower_bound",
    "experiment_t3_bias_threshold",
    "experiment_t4_one_extra_bit",
    "experiment_t5_quadratic_growth",
    "experiment_t11_protocol_comparison",
]


def _sync_base(protocol, n, initial, initial_params, trials, max_rounds=1_000_000):
    """The campaign base of one synchronous-model sweep (seed left to axes)."""
    return SimulationSpec(
        protocol=protocol,
        n=n,
        model="synchronous",
        initial=initial,
        initial_params=dict(initial_params),
        reps=trials,
        max_steps=max_rounds,
    )


def _campaign_grid(base, cells, name):
    """Run one zipped campaign over explicit per-cell overrides.

    Every T-series sweep below is one campaign: *cells* are override
    dicts (sweep coordinates plus the historical per-cell ``"seed"``),
    zipped into axes so the expansion order is the cell order.  The
    serial executor keeps the drivers value-for-value with their
    pre-campaign form; per-point ``SimulationResult``s come back in
    cell order.
    """
    axes = {key: [cell[key] for cell in cells] for key in cells[0]}
    campaign = CampaignSpec(base=base, sweep=SweepSpec(axes=axes, mode="zip"), name=name)
    return [point.result for point in run_campaign(campaign, executor="serial").points]


def _stats(sim):
    """Mean rounds-to-consensus, win rate, counts, and the initial config.

    The campaign routed each cell through ``simulate`` with
    ``n_reps=trials``, so protocols with ensemble round hooks
    (Two-Choices, Voter, 3-Majority, USD) advance all replications per
    numpy batch; the rest (OneExtraBit) fall back to the looped
    single-run engine.  The initial configuration is taken from the
    runs themselves, so theory predictions are computed on the
    simulated workload rather than a second hand-built copy.
    """
    rounds = [r.rounds for r in sim.runs if r.converged]
    preserved = [r.plurality_preserved for r in sim.runs]
    mean = float(np.mean(rounds)) if rounds else float("nan")
    return mean, float(np.mean(preserved)), len(rounds), len(sim.runs), sim.runs[0].initial


def experiment_t1_two_choices_runtime(scale: ExperimentScale) -> ExperimentReport:
    """T1 — Theorem 1.1 upper bound: rounds = O((n/c1) * log n).

    Two sweeps: (a) fixed ``k`` (so ``n/c1`` is ~constant), growing
    ``n`` — rounds/log n must stay in a constant band; (b) fixed ``n``,
    growing ``k`` — rounds must stay below the ``(n/c1) log n`` envelope
    and grow monotonically with ``n/c1``.
    """
    with timed() as clock:
        k_fixed = 8
        ns = [scale.scaled(base) for base in (4_000, 16_000, 64_000, 256_000)]
        rows: List[List] = []
        per_log_n = []
        envelope_ratios = []
        n_sweep = _campaign_grid(
            _sync_base("two-choices", ns[0], "theorem-1-1-gap", {"k": k_fixed, "z": 2.0}, scale.trials),
            [{"n": n, "seed": scale.seed + n} for n in ns],
            name="T1/n-sweep",
        )
        for n, sim in zip(ns, n_sweep):
            mean, preserved, _, _, config = _stats(sim)
            predicted = theory.two_choices_rounds(n, config.c1)
            per_log_n.append(mean / math.log(n))
            envelope_ratios.append(mean / predicted)
            rows.append(["n-sweep", n, k_fixed, round(n / config.c1, 2), mean, predicted, mean / predicted, preserved])

        n_fixed = scale.scaled(128_000)
        ks = (2, 4, 8, 16, 32)
        k_rounds = []
        inv_fractions = []
        k_sweep = _campaign_grid(
            _sync_base("two-choices", n_fixed, "theorem-1-1-gap", {"z": 1.0}, scale.trials),
            [{"initial_params.k": k, "seed": scale.seed + k} for k in ks],
            name="T1/k-sweep",
        )
        for k, sim in zip(ks, k_sweep):
            mean, preserved, _, _, config = _stats(sim)
            predicted = theory.two_choices_rounds(n_fixed, config.c1)
            envelope_ratios.append(mean / predicted)
            inv_fractions.append(n_fixed / config.c1)
            k_rounds.append(mean)
            rows.append(["k-sweep", n_fixed, k, round(n_fixed / config.c1, 2), mean, predicted, mean / predicted, preserved])

        log_ratio_spread = max(per_log_n) / min(per_log_n)
        checks = {
            # (a): rounds / log n confined to a constant band as n grows 64x.
            "log_n_scaling_band": log_ratio_spread < 2.5,
            # (b): rounds never exceed the (n/c1) log n envelope (constant ~1)...
            "upper_bound_envelope": max(envelope_ratios) <= 1.2,
            # ... and grow monotonically with the theorem's driver n/c1.
            "monotone_in_n_over_c1": all(a <= b * 1.05 for a, b in zip(k_rounds, k_rounds[1:])),
        }
    report = ExperimentReport(
        experiment_id="T1",
        title="Two-Choices runtime: O(n/c1 * log n) (Theorem 1.1 upper bound)",
        claim="rounds stay below the (n/c1)*log n envelope and track n/c1 and log n",
        headers=["sweep", "n", "k", "n/c1", "rounds", "(n/c1)log n", "ratio", "win-rate"],
        rows=rows,
        checks=checks,
        params={"ns": ns, "k_fixed": k_fixed, "n_fixed": n_fixed, "trials": scale.trials},
    )
    report.notes.append(f"rounds/log n spread across the n-sweep: x{log_ratio_spread:.2f} (predict O(1))")
    report.notes.append(f"largest rounds / envelope ratio: {max(envelope_ratios):.2f} (upper bound predicts <= constant)")
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t2_two_choices_lower_bound(scale: ExperimentScale) -> ExperimentReport:
    """T2 — Theorem 1.1 lower bound: with balanced runners-up
    (``c2 = ... = ck``) the process needs ``Omega(n/c1 + log n)`` rounds
    in expectation — a wall that grows with ``k`` (``n/c1 ~ k`` while
    ``k << sqrt(n/log n)``)."""
    with timed() as clock:
        n = scale.scaled(256_000)
        ks = [2, 4, 8, 16, 32, 64]
        rows = []
        means = []
        inv_fractions = []
        lower_ratios = []
        k_sweep = _campaign_grid(
            _sync_base("two-choices", n, "theorem-1-1-gap", {"z": 1.0}, scale.trials),
            [{"initial_params.k": k, "seed": scale.seed + 13 * k} for k in ks],
            name="T2/k-sweep",
        )
        for k, sim in zip(ks, k_sweep):
            mean, preserved, _, _, config = _stats(sim)
            lower = theory.two_choices_lower_bound(n, config.c1)
            means.append(mean)
            inv_fractions.append(n / config.c1)
            lower_ratios.append(mean / lower)
            rows.append([n, k, round(n / config.c1, 2), config.additive_bias, mean, lower, mean / lower, preserved])
        slope, _ = stats.fit_power_law(inv_fractions, means)
        checks = {
            # The measured time respects the Omega(n/c1 + log n) floor.
            "lower_bound_respected": min(lower_ratios) >= 0.3,
            # The wall grows with k (monotone, and large overall factor).
            "monotone_in_k": all(a <= b * 1.05 for a, b in zip(means, means[1:])),
            "k_wall_factor": means[-1] >= 3.0 * means[0],
            "grows_with_n_over_c1": slope >= 0.4,
        }
    report = ExperimentReport(
        experiment_id="T2",
        title="Two-Choices lower bound: Omega(n/c1 + log n) with balanced runners-up",
        claim="balanced c2=...=ck forces a rounds wall growing with n/c1 (~k for small k)",
        headers=["n", "k", "n/c1", "gap", "rounds", "n/c1+log n", "ratio", "win-rate"],
        rows=rows,
        checks=checks,
        params={"n": n, "ks": ks, "trials": scale.trials},
    )
    report.notes.append(f"power-law exponent of rounds vs n/c1: {slope:.2f} (lower bound predicts >= ~0.5 here)")
    report.notes.append(
        "with the gap pinned at sqrt(n log n), c1 -> gap as k grows, so n/c1 saturates at "
        "~sqrt(n/log n); the sweep stays below that knee"
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t3_bias_threshold(scale: ExperimentScale) -> ExperimentReport:
    """T3 — Theorem 1.1 threshold: O(sqrt n) gaps lose with constant
    probability; z*sqrt(n log n) gaps win w.h.p."""
    with timed() as clock:
        n = scale.scaled(10_000)
        # 200-trial floor: the middle-gap win rates sit near the check
        # thresholds (~0.90 true rate at 1*sqrt(n)), so 40-trial
        # estimates flip checks on unlucky streams.  The ensemble
        # engine advances all trials per numpy batch, so the bigger
        # sample is essentially free.
        trials = max(200, scale.trials * 8)
        sqrt_n = math.sqrt(n)
        sqrt_nlogn = math.sqrt(n * math.log(n))
        gaps = [
            ("0", 2),  # gap 2 ~ effectively zero bias (kept >=1 for a unique plurality)
            ("0.5*sqrt(n)", int(0.5 * sqrt_n)),
            ("1*sqrt(n)", int(sqrt_n)),
            ("2*sqrt(n)", int(2 * sqrt_n)),
            ("1*sqrt(n log n)", int(sqrt_nlogn)),
            ("2*sqrt(n log n)", int(2 * sqrt_nlogn)),
        ]
        rows = []
        rates = []
        gap_sweep = _campaign_grid(
            _sync_base("two-choices", n, "two-colors", {}, trials),
            [{"initial_params.gap": gap, "seed": scale.seed + gap} for _, gap in gaps],
            name="T3/gap-sweep",
        )
        for (label, gap), sim in zip(gaps, gap_sweep):
            outcomes = [r.converged and r.winner == 0 for r in sim.runs]
            estimate = stats.estimate_success(outcomes)
            rates.append(estimate.rate)
            rows.append([label, gap, estimate.rate, estimate.low, estimate.high, trials])
        checks = {
            # C2 wins with constant probability at O(sqrt n) gap.
            "sqrt_n_gap_loses_often": rates[2] < 0.95,
            # The plurality wins w.h.p. above the sqrt(n log n) threshold.
            "threshold_gap_wins_whp": rates[-1] >= 0.95,
            "win_rate_increases_with_gap": rates[-1] >= rates[2] >= rates[0] - 0.15,
            "near_zero_gap_is_a_coin_flip": 0.2 <= rates[0] <= 0.8,
        }
    report = ExperimentReport(
        experiment_id="T3",
        title="Two-Choices bias threshold (Theorem 1.1, k=2)",
        claim="win probability transitions from ~1/2 to w.h.p. between sqrt(n) and sqrt(n log n)",
        headers=["gap", "value", "P(C1 wins)", "wilson-low", "wilson-high", "trials"],
        rows=rows,
        checks=checks,
        params={"n": n, "trials": trials},
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t4_one_extra_bit(scale: ExperimentScale) -> ExperimentReport:
    """T4 — Theorem 1.2: OneExtraBit is polylog and overtakes
    Two-Choices once k (hence n/c1) grows — the crossover the memory
    bit buys."""
    with timed() as clock:
        n = scale.scaled(2_000_000)
        ks = [2, 8, 32, 128]
        trials = min(3, scale.trials)
        rows = []
        tc_means = []
        oeb_means = []
        cells = []
        for k in ks:
            cells.append({"protocol": "two-choices", "initial_params.k": k, "seed": scale.seed + k})
            cells.append({"protocol": "one-extra-bit", "initial_params.k": k, "seed": scale.seed + 7 * k})
        sims = iter(
            _campaign_grid(
                _sync_base("two-choices", n, "theorem-1-1-gap", {"z": 1.0}, trials),
                cells,
                name="T4/crossover",
            )
        )
        for k in ks:
            tc_mean, tc_win, _, _, config = _stats(next(sims))
            oeb_mean, oeb_win, _, _, _ = _stats(next(sims))
            predicted = theory.one_extra_bit_rounds(n, k, config.c1, config.c2)
            tc_means.append(tc_mean)
            oeb_means.append(oeb_mean)
            rows.append(
                [n, k, round(n / config.c1, 1), tc_mean, oeb_mean, predicted, tc_win, oeb_win,
                 "OEB" if oeb_mean < tc_mean else "TC"]
            )
        tc_slope, _ = stats.fit_power_law(ks, tc_means)
        oeb_slope, _ = stats.fit_power_law(ks, oeb_means)
        checks = {
            "two_choices_degrades_with_k": tc_slope >= 0.4,
            "one_extra_bit_stays_polylog": oeb_slope <= 0.3,
            "crossover_at_large_k": oeb_means[-1] < tc_means[-1],
            "two_choices_wins_at_k2": tc_means[0] < oeb_means[0],
        }
    report = ExperimentReport(
        experiment_id="T4",
        title="OneExtraBit vs Two-Choices: the memory-bit crossover (Theorem 1.2)",
        claim="Two-Choices rounds grow with k while OneExtraBit stays polylogarithmic",
        headers=["n", "k", "n/c1", "TC rounds", "OEB rounds", "OEB predicted", "TC win", "OEB win", "faster"],
        rows=rows,
        checks=checks,
        params={"n": n, "ks": ks, "trials": trials},
    )
    report.notes.append(f"power-law exponents vs k: TC {tc_slope:.2f} (grows), OEB {oeb_slope:.2f} (flat)")
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t5_quadratic_growth(scale: ExperimentScale) -> ExperimentReport:
    """T5 — Section 2: each phase squares the ratio c1/cj."""
    with timed() as clock:
        n = scale.scaled(1_000_000)
        k = 16
        ratio0 = 1.2
        phase_length = 1 + default_bp_rounds(n, k)
        # A singleton campaign: traced points are pinned to the driver
        # process by run_campaign, so the trace survives.
        campaign = CampaignSpec(
            base=SimulationSpec(
                protocol="one-extra-bit",
                n=n,
                model="synchronous",
                initial="multiplicative-bias",
                initial_params={"k": k, "ratio": ratio0},
                reps=1,
                max_steps=phase_length * 12,
                record_trace=True,
                trace_every=phase_length,
            ),
            sweep=SweepSpec(axes={"seed": [scale.seed]}, mode="zip"),
            name="T5/quadratic-growth",
        )
        result = run_campaign(campaign, executor="serial").points[0].result.runs[0]
        ratios = ratio_trace(result.trace)
        growth = per_phase_ratio_growth(list(ratios))
        rows = []
        for phase, value in enumerate(ratios):
            exponent = growth[phase] if phase < len(growth) else None
            rows.append([phase, float(value) if np.isfinite(value) else None, exponent])
        usable = [g for g in growth if g is not None]
        checks = {
            "amplification_at_least_quadraticish": bool(usable) and max(usable) >= 1.6,
            "no_phase_destroys_bias": all(g > 0.8 for g in usable) if usable else False,
        }
    report = ExperimentReport(
        experiment_id="T5",
        title="Per-phase quadratic amplification of c1/c2 (Section 2)",
        claim="log(ratio) roughly doubles each phase until saturation",
        headers=["phase", "c1/c2", "growth exponent"],
        rows=rows,
        checks=checks,
        params={"n": n, "k": k, "ratio0": ratio0, "phase_length": phase_length},
    )
    report.notes.append(
        "growth exponent = log(r_{p+1}) / log(r_p); the paper predicts values near 2 "
        "(c1'/cj' >= (1-o(1)) (c1/cj)^2) until c2 collapses"
    )
    report.elapsed_seconds = clock.elapsed
    return report


def experiment_t11_protocol_comparison(scale: ExperimentScale) -> ExperimentReport:
    """T11 — the protocol landscape the introduction motivates.

    Scenario A (k=2) uses a moderate ``n`` so the Theta(n)-round voter
    baseline can actually be run to consensus; scenarios B and C use a
    large ``n`` where the OneExtraBit crossover is visible.
    """
    with timed() as clock:
        n_small = scale.scaled(50_000)
        n_large = scale.scaled(2_000_000)
        gap_a = int(2 * math.sqrt(n_small * math.log(n_small)))
        scenarios = [
            ("A: k=2, strong gap", "two-colors", {"gap": gap_a}, 2, n_small),
            ("B: k=16, threshold gap", "theorem-1-1-gap", {"k": 16, "z": 1.0}, 16, n_large),
            ("C: k=128, threshold gap", "theorem-1-1-gap", {"k": 128, "z": 1.0}, 128, n_large),
        ]
        protocols = [
            ("voter", "voter", lambda n: 6 * n),
            ("two-choices", "two-choices", lambda n: 40_000),
            ("3-majority", "three-majority", lambda n: 40_000),
            ("undecided-state", "undecided-state", lambda n: 40_000),
            ("one-extra-bit", "one-extra-bit", lambda n: 40_000),
        ]
        # The whole landscape is one zipped campaign: every non-skipped
        # (scenario, protocol) cell becomes a point whose overrides pin
        # the protocol, workload, trial count, budget and the historical
        # per-cell seed (builtin hash() is salted per process, hence the
        # ord-sum).  Skipped voter cells never enter the grid.
        cells = []
        for scenario_name, initial, initial_params, k, n in scenarios:
            for proto_name, registry_name, cap in protocols:
                if proto_name == "voter" and k > 2:
                    continue
                cells.append(
                    {
                        "protocol": registry_name,
                        "n": n,
                        "initial": initial,
                        "initial_params": dict(initial_params),
                        "reps": max(2, scale.trials // 2) if proto_name == "voter" else min(3, scale.trials),
                        "max_steps": cap(n),
                        "seed": scale.seed + sum(ord(c) for c in scenario_name + proto_name),
                    }
                )
        sims = iter(
            _campaign_grid(
                _sync_base("two-choices", scenarios[0][4], "benchmark-split", {}, 1, max_rounds=1),
                cells,
                name="T11/landscape",
            )
        )
        rows = []
        outcome = {}
        for scenario_name, initial, initial_params, k, n in scenarios:
            for proto_name, registry_name, cap in protocols:
                if proto_name == "voter" and k > 2:
                    # Voter needs Theta(n) rounds regardless of k; the
                    # scenario-A probe documents that wall once.
                    rows.append([scenario_name, proto_name, None, None, "skipped (Theta(n))"])
                    continue
                mean, preserved, converged, total, _ = _stats(next(sims))
                outcome[(scenario_name[:1], proto_name)] = (mean, preserved)
                rows.append([scenario_name, proto_name, mean, preserved, f"{converged}/{total} converged"])

        # Asynchronous landscape probe: the same scenario-A workload in
        # the sequential tick model, as a singleton campaign; the
        # dispatcher routes it so K_n picks up the ensemble-vectorised
        # counts fast path (all trials advance per numpy batch).
        scenario_name, initial, initial_params, _, n = scenarios[0]
        async_trials = min(3, scale.trials)
        async_sim = run_campaign(
            CampaignSpec(
                base=SimulationSpec(
                    protocol="two-choices",
                    n=n,
                    model="sequential",
                    initial=initial,
                    initial_params=initial_params,
                    reps=async_trials,
                ),
                sweep=SweepSpec(axes={"seed": [scale.seed + 11]}, mode="zip"),
                name="T11/async-probe",
            ),
            executor="serial",
        ).points[0].result
        async_results = async_sim.runs
        async_mean = float(np.mean([r.parallel_time for r in async_results if r.converged]))
        async_preserved = float(np.mean([r.converged and r.winner == 0 for r in async_results]))
        async_converged = sum(1 for r in async_results if r.converged)
        rows.append(
            [
                scenario_name,
                "two-choices (async ticks)",
                async_mean,
                async_preserved,
                f"{async_converged}/{async_trials} converged "
                f"[{async_results[0].metadata['engine']}]",
            ]
        )

        checks = {
            "two_choices_wins_scenario_A": outcome[("A", "two-choices")][1] >= 0.8,
            "voter_pays_theta_n": outcome[("A", "voter")][0] > 20 * outcome[("A", "two-choices")][0],
            "one_extra_bit_fastest_at_k128": outcome[("C", "one-extra-bit")][0]
            < outcome[("C", "two-choices")][0],
            "one_extra_bit_preserves_plurality": outcome[("B", "one-extra-bit")][1] >= 0.8,
            # The async fast path dispatches to the (ensemble) counts
            # engine and agrees with the synchronous landscape.
            "async_fast_path_dispatched": async_results[0].metadata["engine"]
            in ("counts-sequential", "ensemble-counts-sequential"),
            "async_two_choices_wins_scenario_A": async_preserved >= 0.8,
        }
    report = ExperimentReport(
        experiment_id="T11",
        title="Protocol landscape: baselines vs the paper's protocols",
        claim="Two-Choices is best at k=2; the extra bit wins once k grows; voter pays Theta(n)",
        headers=["scenario", "protocol", "mean rounds", "plurality-preserved", "status"],
        rows=rows,
        checks=checks,
        params={"n_small": n_small, "n_large": n_large, "trials": scale.trials},
    )
    report.elapsed_seconds = clock.elapsed
    return report

"""Plain-text table rendering for experiment reports.

The harness prints every experiment as an aligned ASCII table — the
closest equivalent of "the same rows the paper reports" for a paper
whose results are theorem statements.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_cell", "format_table"]


def format_cell(value) -> str:
    """Render one value compactly (floats to 4 significant digits)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows under headers with column alignment."""
    rendered: List[List[str]] = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but there are {len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)

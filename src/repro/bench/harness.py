"""Experiment harness: trial replication and report assembly.

An *experiment* is a function ``(scale: ExperimentScale) -> ExperimentReport``;
the registry in :mod:`repro.bench.experiments` maps the ids T1..T12 from
DESIGN.md's per-experiment index onto those functions.  Scales keep the
same workload *shapes* while trading trial counts and sizes for wall
time:

* ``quick`` — seconds per experiment; what the pytest benchmarks run.
* ``full``  — minutes per experiment; tighter confidence intervals, the
  numbers EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.rng import SeedLike, spawn_seed_sequences
from ..engine.ensemble import run_replicated
from .tables import format_table

__all__ = [
    "ExperimentScale",
    "ExperimentReport",
    "run_trials",
    "run_engine_trials",
    "QUICK",
    "FULL",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Size/effort knob shared by all experiments."""

    name: str
    trials: int
    size_factor: float = 1.0
    seed: int = 20170725  # PODC'17 conference date — fixed for reproducibility

    def scaled(self, base: int, minimum: int = 2) -> int:
        """Scale a base size (e.g. ``n``) by the factor, with a floor."""
        return max(minimum, int(round(base * self.size_factor)))


QUICK = ExperimentScale(name="quick", trials=5, size_factor=0.5)
FULL = ExperimentScale(name="full", trials=25, size_factor=1.0)


@dataclass
class ExperimentReport:
    """One experiment's rendered outcome.

    ``checks`` holds named boolean shape-assertions (who wins, slopes in
    range, ...) so the benchmark targets and EXPERIMENTS.md read the
    verdicts mechanically.
    """

    experiment_id: str
    title: str
    claim: str
    headers: Sequence[str]
    rows: List[Sequence]
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    params: Dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def format(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"claim: {self.claim}",
            "",
            format_table(self.headers, self.rows),
        ]
        if self.checks:
            lines.append("")
            for name, passed in self.checks.items():
                lines.append(f"check {name}: {'PASS' if passed else 'FAIL'}")
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(f"({self.elapsed_seconds:.1f}s)")
        return "\n".join(lines)

    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def to_dict(self) -> Dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "checks": dict(self.checks),
            "notes": list(self.notes),
            "params": dict(self.params),
            "elapsed_seconds": self.elapsed_seconds,
        }


def run_trials(fn: Callable[[object], object], trials: int, seed: SeedLike) -> List[object]:
    """Run ``fn(trial_seed)`` *trials* times with independent streams.

    Trial *i* receives child *i* of
    ``np.random.SeedSequence(master).spawn(trials)`` (see the seeding
    contract in DESIGN.md, "Ensemble semantics"): the children are
    provably independent, a pure function of the master seed, and any
    individual trial can be replayed in isolation.  ``fn`` may pass the
    child anywhere a ``seed`` argument is accepted.
    """
    return [fn(s) for s in spawn_seed_sequences(seed, trials)]


def run_engine_trials(engine, config, trials: int, seed: SeedLike, **run_kwargs) -> List[object]:
    """Collect *trials* :class:`~repro.core.results.RunResult`\\ s from
    *engine* on *config*, replication-vectorised when possible.

    Engines built with ``fastest_engine(..., n_reps=trials)`` expose
    ``run_ensemble`` on eligible (protocol, ``K_n``) pairs; those
    advance all trials per numpy batch in one call.  Everything else
    falls back to the looped :func:`run_trials` path.  Both paths draw
    every trial from the same law, so experiments can treat the routing
    as a pure wall-clock optimisation.
    """
    return run_replicated(engine, config, trials, seed=seed, **run_kwargs)


class timed:
    """Context manager stamping ``report.elapsed_seconds``."""

    def __init__(self):
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "timed":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start

"""Tick-kernel perf benchmark (no experiment id — pure wall clock).

Times the hazard tick loop under each available kernel (``numpy``,
``c``, ``numba``) on the fixed Two-Choices torus workload the sparse
benchmark uses, in two phases:

- ``mixed``: a fixed ``BUDGET_PARALLEL * n`` tick budget from the 60/40
  split — the throughput number the acceptance criterion quotes;
- ``consensus``: a full run to consensus — the end-to-end number.

Kernels are selected through the real machinery (``REPRO_KERNEL`` +
``reset_active_kernel``), so the benchmark exercises the same resolution
path production runs use.  A separate identity section pins the engine
block size (adaptive sizing feeds on the hazard-cut count, which only
the numpy path reports, so free-running blocks lay out the RNG stream
differently per kernel) and replays one full run per kernel: with
identical draws the trajectories must match bit-for-bit, recorded under
``criteria["kernel_bit_identical"]``.

The headline criterion — fastest compiled kernel at least 2x faster
than the numpy loop on the mixed phase — is only asserted when a
compiled kernel is available; otherwise the payload records a loud
skip under ``criteria["compiled_kernel_skipped"]``.

Usage::

    python -m repro kernels --quick
    python benchmarks/bench_kernels.py [--quick] [--out PATH]
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.hazard_kernel import KERNEL_ENV, available_kernels, reset_active_kernel
from ..engine.sparse_async import SparseSequentialEngine
from ..graphs.sparse import torus
from ..protocols.two_choices import TwoChoicesSequential
from ..workloads.initial import benchmark_split
from .store import bench_environment, save_bench_payload
from .tables import format_table

__all__ = [
    "benchmark_kernels",
    "format_payload",
    "save_payload",
    "main",
    "DEFAULT_N",
    "QUICK_N",
]

#: the acceptance criterion is anchored at n = 1e5 (torus).
DEFAULT_N = 100_000
QUICK_N = 10_000

#: fixed throughput budget, in units of parallel time (ticks / n).
BUDGET_PARALLEL = 2

#: kernels the compiled-speedup criterion may pick its winner from.
COMPILED = ("c", "numba")


def _never(counts) -> bool:
    return False


def _torus(n: int):
    rows = next(r for r in range(int(np.sqrt(n)), 0, -1) if n % r == 0)
    return torus(rows, n // rows)


def _run_rows(
    kernel_name: str, n: int, trials: int, seed: int, consensus: bool
) -> List[Dict]:
    """Time one kernel on the mixed-phase budget (and optionally to
    consensus), returning one result row per phase."""
    engine = SparseSequentialEngine(TwoChoicesSequential(), _torus(n))
    config = benchmark_split(n)
    budget_ticks = BUDGET_PARALLEL * n
    rows: List[Dict] = []

    phases = [("mixed", {"max_ticks": budget_ticks, "stop": _never})]
    if consensus:
        max_ticks = int(100 * n * max(np.log(n), 1.0))
        phases.append(("consensus", {"max_ticks": max_ticks}))
    for phase, run_kwargs in phases:
        seconds = []
        ticks = []
        for trial in range(trials):
            start = time.perf_counter()
            result = engine.run(config, seed=seed + trial, **run_kwargs)
            seconds.append(time.perf_counter() - start)
            ticks.append(result.rounds)
        rows.append(
            {
                "kernel": kernel_name,
                "phase": phase,
                "n": int(n),
                "trials": trials,
                "mean_seconds": float(np.mean(seconds)),
                "min_seconds": float(np.min(seconds)),
                "mean_ticks": float(np.mean(ticks)),
                "ns_per_tick": float(np.min(seconds) / np.mean(ticks) * 1e9),
            }
        )
    return rows


#: identity-check scale: small enough to replay per kernel in well
#: under a second, large enough to cross many block boundaries.
_IDENTITY_N = 4096
_IDENTITY_BLOCK = 1024


def _identity_fingerprint(seed: int) -> tuple:
    """One full fixed-block run's trajectory fingerprint.

    The block size is pinned because adaptive sizing feeds on the
    hazard-cut count — a numpy-path observable the compiled loop has no
    reason to recompute — so free-running engines lay out their RNG
    draws differently per kernel.  With the boundaries pinned, every
    kernel consumes the identical presampled draws and the whole run
    must replay bit-for-bit (see :mod:`repro.core.hazard_kernel`).
    """
    engine = SparseSequentialEngine(
        TwoChoicesSequential(), _torus(_IDENTITY_N), block_ticks=_IDENTITY_BLOCK
    )
    config = benchmark_split(_IDENTITY_N)
    result = engine.run(config, seed=seed)
    return (result.rounds, result.winner, tuple(result.final.counts))


def benchmark_kernels(
    n: int = DEFAULT_N,
    trials: int = 3,
    seed: int = 20170725,
    kernels: Optional[List[str]] = None,
    consensus: bool = True,
) -> Dict:
    """Time every available (or requested) kernel on the torus workload.

    Each kernel is activated through ``REPRO_KERNEL`` so the benchmark
    measures exactly what a production process selecting that kernel
    would run.  The previous environment value is restored afterwards.
    """
    probes = list(available_kernels().values())
    probe_rows = [
        {"kernel": p.name, "available": p.available, "detail": p.detail} for p in probes
    ]
    runnable = [p.name for p in probes if p.available]
    if kernels is None:
        selected = runnable
    else:
        unknown = [name for name in kernels if name not in {p.name for p in probes}]
        if unknown:
            raise ConfigurationError(f"unknown kernels requested: {unknown}")
        selected = [name for name in kernels if name in runnable]

    results: List[Dict] = []
    fingerprints: Dict[str, tuple] = {}
    saved = os.environ.get(KERNEL_ENV)
    try:
        for name in selected:
            os.environ[KERNEL_ENV] = name
            reset_active_kernel()
            results.extend(_run_rows(name, n, trials, seed, consensus))
            fingerprints[name] = _identity_fingerprint(seed)
    finally:
        if saved is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = saved
        reset_active_kernel()

    by_key = {(r["kernel"], r["phase"]): r for r in results}
    criteria: Dict = {}
    criteria["kernels_available"] = runnable
    criteria["kernels_measured"] = selected

    # Bit-identity: on pinned block boundaries every kernel must replay
    # the numpy trajectory exactly (rounds, winner, final counts).
    if "numpy" in fingerprints and len(fingerprints) > 1:
        reference = fingerprints["numpy"]
        criteria["kernel_bit_identical"] = all(
            fingerprint == reference for fingerprint in fingerprints.values()
        )

    # Headline: best compiled kernel >= 2x over the numpy loop (mixed
    # phase, n = 1e5 torus per the acceptance criterion).
    compiled = [name for name in selected if name in COMPILED]
    numpy_mixed = by_key.get(("numpy", "mixed"))
    if compiled and numpy_mixed is not None:
        speedups = {
            name: numpy_mixed["min_seconds"] / by_key[(name, "mixed")]["min_seconds"]
            for name in compiled
            if (name, "mixed") in by_key
        }
        best = max(speedups, key=speedups.get)
        criteria["compiled_kernel"] = best
        criteria["kernel_mixed_speedup_vs_numpy"] = speedups[best]
        criteria["kernel_speedup_ge_2x"] = speedups[best] >= 2.0
        consensus_row = by_key.get((best, "consensus"))
        numpy_consensus = by_key.get(("numpy", "consensus"))
        if consensus_row is not None and numpy_consensus is not None:
            criteria["kernel_consensus_speedup_vs_numpy"] = (
                numpy_consensus["min_seconds"] / consensus_row["min_seconds"]
            )
    else:
        criteria["compiled_kernel"] = None
        excluded = [
            p.name
            for p in probes
            if p.name in COMPILED and p.available and p.name not in selected
        ]
        if excluded:
            criteria["compiled_kernel_skipped"] = f"available but not requested: {excluded}"
        else:
            criteria["compiled_kernel_skipped"] = [
                {"kernel": p.name, "detail": p.detail}
                for p in probes
                if p.name in COMPILED and not p.available
            ]

    return {
        "benchmark": "kernels/async-two-choices-torus",
        "workload": (
            f"Two-Choices on torus, counts (0.6n, 0.4n), {BUDGET_PARALLEL}n-tick "
            "mixed budget + run to consensus, per kernel"
        ),
        "n": int(n),
        "trials": trials,
        "seed": seed,
        "budget_parallel": BUDGET_PARALLEL,
        "probes": probe_rows,
        "results": results,
        "criteria": criteria,
        "environment": bench_environment(),
    }


def save_payload(payload: Dict, path: str) -> None:
    """Write the payload as indented JSON (stable key order)."""
    save_bench_payload(payload, path)


def format_payload(payload: Dict) -> str:
    """Human-readable table + criteria lines for CLI output."""
    lines = []
    probe_rows = [
        [p["kernel"], "yes" if p["available"] else "no", p["detail"]]
        for p in payload["probes"]
    ]
    lines.append(format_table(["kernel", "available", "detail"], probe_rows))
    lines.append("")
    rows = [
        [
            entry["kernel"],
            entry["phase"],
            entry["n"],
            f"{entry['mean_seconds']:.3f}s",
            f"{entry['ns_per_tick']:.0f}ns",
        ]
        for entry in payload["results"]
    ]
    lines.append(format_table(["kernel", "phase", "n", "mean wall", "per tick"], rows))
    for name, value in payload["criteria"].items():
        lines.append(f"criterion {name}: {value}")
    return "\n".join(lines)


def add_cli_arguments(parser) -> None:
    """Register the benchmark's options on *parser* (shared by the
    standalone entry point and ``python -m repro kernels``)."""
    parser.add_argument("--n", type=int, default=None, help=f"nodes (default {DEFAULT_N})")
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20170725)
    parser.add_argument("--out", default=None, help="write the JSON payload to this path")
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI scale: n = {QUICK_N}, 2 trials",
    )
    parser.add_argument(
        "--kernels",
        default=None,
        help="comma-separated kernels to measure (default: all available)",
    )
    parser.add_argument(
        "--no-consensus", action="store_true", help="skip the run-to-consensus phase"
    )


def run_cli(args, error) -> int:
    """Execute a parsed ``add_cli_arguments`` namespace."""
    n = args.n if args.n is not None else (QUICK_N if args.quick else DEFAULT_N)
    if n < 16:
        error(f"--n must be >= 16, got {n}")
    kernels = args.kernels.split(",") if args.kernels else None
    try:
        payload = benchmark_kernels(
            n=n,
            trials=2 if args.quick and args.trials == 3 else args.trials,
            seed=args.seed,
            kernels=kernels,
            consensus=not args.no_consensus,
        )
    except ConfigurationError as exc:
        error(str(exc))
    print(format_payload(payload))
    if args.out:
        save_payload(payload, args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone CLI entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="perf_kernels",
        description="benchmark the compiled tick kernels against the numpy loop",
    )
    add_cli_arguments(parser)
    args = parser.parse_args(argv)
    return run_cli(args, parser.error)


if __name__ == "__main__":
    raise SystemExit(main())

"""Wall-clock benchmark of the sparse-topology asynchronous fast path.

The workload is fixed — asynchronous Two-Choices from a 60/40 split —
on the two sparse topologies the acceptance criteria name: a 2-D torus
and a random 8-regular graph.  Engines covered, slowest to fastest:

* ``sequential/per-tick`` — :class:`~repro.engine.sequential.
  SequentialEngine` driving one Python ``seq_tick`` per node
  (``seq_tick_batch_loop``, the seed implementation); the baseline the
  ≥10x acceptance criterion is measured against, capped by ``n``.
* ``sequential/zip-apply`` — the PR-1-era hooks: presampled target
  identities, one Python ``zip`` apply-loop per tick (the fastest
  off-``K_n`` path before the hazard batches).
* ``sequential/batched-hooks`` — today's ``SequentialEngine``: the
  default ``seq_tick_batch`` now routes through the hazard-free batch
  core in fixed 8192-tick blocks.
* ``sparse-sequential`` / ``sparse-continuous`` — the adaptive
  hazard-batched engines of :mod:`repro.engine.sparse_async`, timed
  directly at every ``n`` (above *and* below the dispatch crossover, so
  the crossover constant stays calibrated).
* ``routed/fastest-engine`` — whatever
  :func:`~repro.engine.dispatch.fastest_engine` resolves for the
  workload: the zip-apply hooks engine below the size crossover, the
  hazard-batched engine above.  Its mixed-phase speedup against the
  zip-apply baseline is the *healed* ``sparse_seq_mixed_phase`` number
  — routing around the small-``n`` regression of the raw sparse engine
  (recorded separately as ``sparse_engine_mixed_phase_*``).

Two sections:

* ``results`` — throughput on a fixed budget of ``budget_parallel * n``
  ticks from the mixed 60/40 start (every engine does identical work,
  so the speedup table is exact).  This window is the *worst case* for
  the hazard batches — the write rate is at its highest, so chunks are
  at their shortest;
* ``consensus`` — full runs to consensus, the workload the motivation
  quotes: the sparse-sequential engine at the largest ``n``, and the
  zip-apply baseline at a capped ``n`` (its Python-loop cost per tick
  is phase- and n-independent, so its per-tick figure anchors the
  consensus-speedup criterion without a 16-second baseline run).  The
  coarsening and near-consensus phases that dominate these runs are
  where the actual-write hazard batches widen and the adaptive blocks
  pay off.

``python -m repro sparse`` and ``benchmarks/bench_sparse.py`` both call
:func:`benchmark_sparse` and persist the payload (``BENCH_sparse.json``
at the repo root by convention).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.colors import ColorConfiguration
from ..engine.dispatch import fastest_engine
from ..engine.sequential import SequentialEngine
from ..engine.sparse_async import SparseContinuousEngine, SparseSequentialEngine
from ..graphs.families import random_regular
from ..graphs.sparse import AdjacencyTopology, torus
from ..protocols.base import SequentialProtocol
from ..protocols.two_choices import TwoChoicesSequential
from ..workloads.initial import benchmark_split
from .store import bench_environment, save_bench_payload

__all__ = [
    "benchmark_sparse",
    "format_payload",
    "save_payload",
    "main",
    "DEFAULT_NS",
    "QUICK_NS",
]

#: sizes of the standard sweep; the acceptance criterion lives at 1e5.
DEFAULT_NS = (10_000, 100_000)
QUICK_NS = (10_000,)

#: fixed throughput budget, in units of parallel time (ticks / n).
BUDGET_PARALLEL = 2

#: largest n the zip-apply baseline runs to consensus at (its per-tick
#: cost is constant, so this caps baseline wall time, not information).
ZIP_CONSENSUS_MAX_N = 10_000

_PER_TICK = "sequential/per-tick"
_ZIP_APPLY = "sequential/zip-apply"
_ROUTED = "routed/fastest-engine"


class _PerTickTwoChoices(TwoChoicesSequential):
    """The seed path: one Python ``seq_tick`` per node."""

    seq_tick_batch = SequentialProtocol.seq_tick_batch_loop


class _ZipApplyTwoChoices(TwoChoicesSequential):
    """The PR-1 hooks: presampled identities, Python apply loop."""

    def seq_tick_batch(self, state, nodes, topology, rng):
        nodes = np.asarray(nodes, dtype=np.int64)
        pairs = topology.sample_neighbor_pairs(nodes, rng)
        colors = state.colors
        for node, first, second in zip(nodes.tolist(), pairs[:, 0].tolist(), pairs[:, 1].tolist()):
            seen = colors[first]
            if seen == colors[second]:
                colors[node] = seen


def _never(counts) -> bool:
    return False


def _topologies(n: int, seed: int) -> List:
    rows = next(r for r in range(int(np.sqrt(n)), 0, -1) if n % r == 0)
    return [
        ("torus", torus(rows, n // rows)),
        ("random-regular", random_regular(n, 8, seed=seed)),
    ]


def _engine_specs():
    """(key, per_tick_baseline, runner factory) rows."""

    def per_tick(topology, budget_ticks):
        engine = SequentialEngine(_PerTickTwoChoices(), topology)
        return lambda config, seed: engine.run(config, max_ticks=budget_ticks, stop=_never, seed=seed)

    def zip_apply(topology, budget_ticks):
        engine = SequentialEngine(_ZipApplyTwoChoices(), topology)
        return lambda config, seed: engine.run(config, max_ticks=budget_ticks, stop=_never, seed=seed)

    def batched_hooks(topology, budget_ticks):
        engine = SequentialEngine(TwoChoicesSequential(), topology)
        return lambda config, seed: engine.run(config, max_ticks=budget_ticks, stop=_never, seed=seed)

    def sparse_sequential(topology, budget_ticks):
        # Built directly (not through dispatch): the engine must stay
        # measured below the routing crossover too, so the crossover
        # constant remains calibrated against fresh numbers.
        engine = SparseSequentialEngine(TwoChoicesSequential(), topology)
        return lambda config, seed: engine.run(config, max_ticks=budget_ticks, stop=_never, seed=seed)

    def sparse_continuous(topology, budget_ticks):
        engine = SparseContinuousEngine(TwoChoicesSequential(), topology)
        budget_time = budget_ticks / topology.n
        return lambda config, seed: engine.run(config, max_time=budget_time, stop=_never, seed=seed)

    def routed(topology, budget_ticks):
        engine = fastest_engine(TwoChoicesSequential(), topology, model="sequential")
        runner = lambda config, seed: engine.run(config, max_ticks=budget_ticks, stop=_never, seed=seed)  # noqa: E731
        runner.resolved_engine = type(engine).__name__
        return runner

    return [
        (_PER_TICK, True, per_tick),
        (_ZIP_APPLY, False, zip_apply),
        ("sequential/batched-hooks", False, batched_hooks),
        ("sparse-sequential", False, sparse_sequential),
        ("sparse-continuous", False, sparse_continuous),
        (_ROUTED, False, routed),
    ]


def benchmark_sparse(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = 3,
    seed: int = 20170725,
    per_tick_max_n: Optional[int] = None,
    consensus: bool = True,
) -> Dict:
    """Time the engine family on the sparse workloads for each ``n``.

    Every engine runs the identical fixed budget of
    ``BUDGET_PARALLEL * n`` ticks from the 60/40 split (the throughput
    table the speedups come from); the sparse-sequential engine is then
    run to consensus at the largest ``n`` per topology.  The per-tick
    baseline is capped at *per_tick_max_n* for quick CI runs (its cost
    per tick is n-independent, so the speedup it anchors is too).
    """
    results: List[Dict] = []
    consensus_rows: List[Dict] = []
    specs = _engine_specs()
    for n in ns:
        config = benchmark_split(n)
        budget_ticks = BUDGET_PARALLEL * n
        for topo_name, topology in _topologies(n, seed):
            for key, is_baseline, factory in specs:
                if is_baseline and per_tick_max_n is not None and n > per_tick_max_n:
                    results.append(
                        {"engine": key, "topology": topo_name, "n": n, "skipped": True}
                    )
                    continue
                runner = factory(topology, budget_ticks)
                seconds = []
                ticks = []
                for trial in range(trials):
                    start = time.perf_counter()
                    result = runner(config, seed + trial)
                    seconds.append(time.perf_counter() - start)
                    ticks.append(result.rounds)
                row = {
                    "engine": key,
                    "topology": topo_name,
                    "n": int(n),
                    "skipped": False,
                    "trials": trials,
                    "mean_seconds": float(np.mean(seconds)),
                    "min_seconds": float(np.min(seconds)),
                    "mean_ticks": float(np.mean(ticks)),
                    "ns_per_tick": float(np.mean(seconds) / np.mean(ticks) * 1e9),
                }
                resolved = getattr(runner, "resolved_engine", None)
                if resolved is not None:
                    row["resolved_engine"] = resolved
                results.append(row)
            consensus_engines = []
            if consensus and n == max(ns):
                consensus_engines.append(
                    ("sparse-sequential", SparseSequentialEngine(TwoChoicesSequential(), topology))
                )
            zip_ns = [m for m in ns if m <= ZIP_CONSENSUS_MAX_N]
            if consensus and zip_ns and n == max(zip_ns):
                consensus_engines.append(
                    ("sequential/zip-apply", SequentialEngine(_ZipApplyTwoChoices(), topology))
                )
            for engine_key, engine in consensus_engines:
                max_ticks = int(100 * n * max(np.log(n), 1.0))
                seconds = []
                ticks = []
                converged = True
                for trial in range(trials):
                    start = time.perf_counter()
                    result = engine.run(config, max_ticks=max_ticks, seed=seed + trial)
                    seconds.append(time.perf_counter() - start)
                    ticks.append(result.rounds)
                    converged = converged and result.converged
                consensus_rows.append(
                    {
                        "engine": engine_key,
                        "topology": topo_name,
                        "n": int(n),
                        "trials": trials,
                        "mean_seconds": float(np.mean(seconds)),
                        "mean_ticks": float(np.mean(ticks)),
                        "ns_per_tick": float(np.mean(seconds) / np.mean(ticks) * 1e9),
                        "min_ns_per_tick": float(
                            min(s / t for s, t in zip(seconds, ticks)) * 1e9
                        ),
                        "all_converged": bool(converged),
                    }
                )

    # Speedups per (topology, n) against both Python baselines.  Ratios
    # come from the best trial, not the mean: the small-n rows finish in
    # ~10 ms, where a single scheduler hiccup on a shared host skews a
    # 3-trial mean by 40% (identical code paths have measured 0.6x of
    # each other on mean timings).  Best-of-trials is the standard
    # noise-robust estimator; the means stay in the rows for posterity.
    speedups: Dict[str, Dict[str, Dict[str, float]]] = {}
    for entry in results:
        if entry.get("skipped") or entry["engine"] in (_PER_TICK, _ZIP_APPLY):
            continue
        rows = {
            r["engine"]: r
            for r in results
            if r["topology"] == entry["topology"] and r["n"] == entry["n"] and not r.get("skipped")
        }
        table = speedups.setdefault(entry["topology"], {}).setdefault(str(entry["n"]), {})
        for baseline in (_PER_TICK, _ZIP_APPLY):
            if baseline in rows:
                table[f"{entry['engine']} vs {baseline}"] = (
                    rows[baseline]["min_seconds"] / entry["min_seconds"]
                )

    criteria: Dict = {}
    # The acceptance criterion: >= 10x over the per-tick SequentialEngine
    # at the largest n where that baseline ran, on both topologies.
    for topo_name in ("torus", "random-regular"):
        table = speedups.get(topo_name, {})
        anchored = [
            int(n) for n, row in table.items() if f"sparse-sequential vs {_PER_TICK}" in row
        ]
        if not anchored:
            continue
        n_ref = max(anchored)
        per_tick_speedup = table[str(n_ref)][f"sparse-sequential vs {_PER_TICK}"]
        zip_speedup = table[str(n_ref)].get(f"sparse-sequential vs {_ZIP_APPLY}")
        slug = topo_name.replace("-", "_")
        criteria[f"sparse_seq_reference_n_{slug}"] = n_ref
        criteria[f"sparse_seq_speedup_vs_per_tick_{slug}"] = per_tick_speedup
        criteria[f"sparse_seq_ge_10x_vs_per_tick_{slug}"] = per_tick_speedup >= 10.0
        # The mixed-phase regression and its heal, both at the smallest
        # swept n (the regression lived below the routing crossover):
        # the raw sparse engine's number documents the cliff dispatch
        # used to walk off; the routed number is what fastest_engine
        # actually resolves there now.  "Healed" asserts that routing
        # strictly improves on the old always-sparse dispatch and stays
        # within 25% of the phase-independent zip-apply loop — the raw
        # engine sat around 0.65-0.77x, the routed path around
        # 0.83-0.98x on these hosts.
        n_mixed = min(int(m) for m in table)
        mixed_row = table[str(n_mixed)]
        engine_speedup = mixed_row.get(f"sparse-sequential vs {_ZIP_APPLY}")
        routed_speedup = mixed_row.get(f"{_ROUTED} vs {_ZIP_APPLY}")
        if engine_speedup is not None:
            criteria[f"sparse_engine_mixed_phase_speedup_vs_zip_apply_{slug}"] = engine_speedup
        if routed_speedup is not None:
            criteria[f"sparse_seq_mixed_phase_n_{slug}"] = n_mixed
            criteria[f"sparse_seq_mixed_phase_speedup_vs_zip_apply_{slug}"] = routed_speedup
            criteria[f"sparse_seq_mixed_phase_healed_{slug}"] = routed_speedup >= max(
                0.75, engine_speedup if engine_speedup is not None else 0.0
            )
    # The consensus workload (what the motivation quotes): per-tick
    # wall cost of full runs, sparse vs the phase-independent zip loop.
    for topo_name in ("torus", "random-regular"):
        rows = {
            r["engine"]: r for r in consensus_rows if r["topology"] == topo_name
        }
        sparse_row = rows.get("sparse-sequential")
        zip_row = rows.get(_ZIP_APPLY)
        slug = topo_name.replace("-", "_")
        if sparse_row and zip_row:
            speedup = zip_row["min_ns_per_tick"] / sparse_row["min_ns_per_tick"]
            criteria[f"consensus_speedup_vs_zip_apply_{slug}"] = speedup
            criteria[f"consensus_faster_than_zip_apply_{slug}"] = speedup > 1.0
    regular_consensus = [
        r
        for r in consensus_rows
        if r["topology"] == "random-regular" and r["engine"] == "sparse-sequential"
    ]
    if regular_consensus:
        criteria["consensus_random_regular_converged"] = bool(
            all(r["all_converged"] for r in regular_consensus)
        )

    return {
        "benchmark": "sparse-engines/async-two-choices",
        "workload": (
            f"Two-Choices, counts (0.6n, 0.4n), {BUDGET_PARALLEL}n-tick throughput budget "
            "+ sparse-sequential run to consensus at max n"
        ),
        "topologies": ["torus", "random-regular (degree 8)"],
        "ns": [int(n) for n in ns],
        "trials": trials,
        "seed": seed,
        "budget_parallel": BUDGET_PARALLEL,
        "baseline": _PER_TICK,
        "results": results,
        "consensus": consensus_rows,
        "speedups": speedups,
        "criteria": criteria,
        "environment": bench_environment(),
    }


def save_payload(payload: Dict, path: str) -> None:
    """Write the payload as indented JSON (stable key order)."""
    save_bench_payload(payload, path)


def format_payload(payload: Dict) -> str:
    """Human-readable tables of the payload for terminal output."""
    from .tables import format_table

    rows = []
    for entry in payload["results"]:
        if entry.get("skipped"):
            rows.append([entry["engine"], entry["topology"], entry["n"], "skipped", ""])
        else:
            rows.append(
                [
                    entry["engine"],
                    entry["topology"],
                    entry["n"],
                    f"{entry['mean_seconds']:.3f}s",
                    f"{entry['ns_per_tick']:.0f}ns",
                ]
            )
    lines = [format_table(["engine", "topology", "n", "mean wall", "per tick"], rows)]
    for topo_name, per_n in payload["speedups"].items():
        for n, table in per_n.items():
            pretty = ", ".join(f"{key} {value:.1f}x" for key, value in sorted(table.items()))
            lines.append(f"speedups on {topo_name} at n={n}: {pretty}")
    if payload["consensus"]:
        lines.append("")
        lines.append("to consensus:")
        consensus_rows = [
            [
                entry["engine"],
                entry["topology"],
                entry["n"],
                f"{entry['mean_seconds']:.3f}s",
                f"{entry['mean_ticks']:.0f}",
                f"{entry['ns_per_tick']:.0f}ns",
                "yes" if entry["all_converged"] else "NO",
            ]
            for entry in payload["consensus"]
        ]
        lines.append(
            format_table(
                ["engine", "topology", "n", "mean wall", "mean ticks", "per tick", "converged"],
                consensus_rows,
            )
        )
    for name, value in payload["criteria"].items():
        lines.append(f"criterion {name}: {value}")
    return "\n".join(lines)


def add_cli_arguments(parser) -> None:
    """Register the benchmark's options on *parser* (shared by the
    standalone entry point and ``python -m repro sparse``)."""
    parser.add_argument("--ns", default=None, help="comma-separated list of n values")
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20170725)
    parser.add_argument("--out", default=None, help="write the JSON payload to this path")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI scale: n = 1e4 only, 2 trials",
    )
    parser.add_argument(
        "--no-consensus", action="store_true", help="skip the run-to-consensus section"
    )


def run_cli(args, error) -> int:
    """Execute a parsed ``add_cli_arguments`` namespace."""
    if args.ns is not None:
        try:
            ns = [int(value) for value in args.ns.split(",")]
        except ValueError:
            error(f"--ns must be comma-separated integers, got {args.ns!r}")
        if any(n < 16 for n in ns):
            error(f"--ns values must be >= 16, got {ns}")
    else:
        ns = list(QUICK_NS if args.quick else DEFAULT_NS)
    payload = benchmark_sparse(
        ns=ns,
        trials=2 if args.quick and args.trials == 3 else args.trials,
        seed=args.seed,
        per_tick_max_n=100_000,
        consensus=not args.no_consensus,
    )
    print(format_payload(payload))
    if args.out:
        save_payload(payload, args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone CLI entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        description="benchmark the sparse-topology hazard-batched engines"
    )
    add_cli_arguments(parser)
    args = parser.parse_args(argv)
    return run_cli(args, parser.error)

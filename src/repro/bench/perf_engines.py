"""Wall-clock benchmark of the engine family on one async workload.

The workload is fixed — asynchronous Two-Choices on ``K_n`` from a
60/40 two-colour split, run to consensus — so the numbers track the
*engines*, not the protocol zoo.  Engines covered:

* ``sequential/per-tick`` — the historical one-``seq_tick``-per-node
  loop (the seed implementation), forced via a subclass that restores
  the base-class ``seq_tick_batch``; this is the baseline the speedup
  figures are measured against.
* ``sequential`` / ``continuous`` — the agent-level engines with the
  vectorised ``seq_tick_batch`` hooks.
* ``two-choices/fast`` — the event-skipping counts simulator
  (:func:`repro.protocols.two_choices_fast.two_choices_sequential_fast`).
* ``counts-sequential`` / ``counts-continuous`` — the batched tick
  engines, built through
  :func:`repro.engine.dispatch.fastest_engine` so the benchmark also
  exercises the dispatch wiring.

On top of the single-run engine table, the payload carries an
*ensemble* section: for each ``R`` in ``ensemble_reps`` it times R
replications the looped way (one ``CountsSequentialEngine.run`` per
replication — the ``run_trials`` path before the ensemble layer)
against one ``EnsembleCountsSequentialEngine.run_ensemble`` call, and
records the speedup.  The acceptance criterion of the ensemble PR —
at least 10x over the looped path at ``n = 10^6``, ``R = 100`` — is
emitted under ``criteria``.

``python -m repro engines`` and ``benchmarks/bench_perf_engines.py``
both call :func:`benchmark_engines` and persist the JSON payload
(``BENCH_engines.json`` at the repo root by convention) so the perf
trajectory stays comparable across PRs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.rng import spawn_seed_sequences
from ..engine.continuous import ContinuousEngine
from ..engine.dispatch import fastest_engine
from ..engine.sequential import SequentialEngine
from ..graphs.complete import CompleteGraph
from ..protocols.base import SequentialProtocol
from ..protocols.two_choices import TwoChoicesSequential
from ..protocols.two_choices_fast import two_choices_sequential_fast
from ..workloads.initial import benchmark_split
from .store import bench_environment, save_bench_payload

__all__ = [
    "benchmark_engines",
    "save_payload",
    "main",
    "DEFAULT_NS",
    "QUICK_NS",
    "ENSEMBLE_REPS",
]

#: sizes of the standard sweep (the full run adds the headline 10^8).
DEFAULT_NS = (10_000, 100_000, 1_000_000)
QUICK_NS = (10_000, 100_000)

#: replication counts of the looped-vs-ensemble comparison.
ENSEMBLE_REPS = (10, 100)

_BASELINE = "sequential/per-tick"


class _SeedPathTwoChoices(TwoChoicesSequential):
    """Two-Choices with the vectorised batch hook disabled.

    Pinning ``seq_tick_batch`` to the reference loop makes the engines
    fall back to one Python ``seq_tick`` per node — byte-for-byte the
    seed implementation's work loop — giving the speedup baseline.
    """

    seq_tick_batch = SequentialProtocol.seq_tick_batch_loop


def _engine_specs():
    """(key, max_n, runner_factory) for every timed engine."""

    def per_tick(n):
        engine = SequentialEngine(_SeedPathTwoChoices(), CompleteGraph(n))
        return lambda config, seed: engine.run(config, seed=seed)

    def sequential(n):
        engine = SequentialEngine(TwoChoicesSequential(), CompleteGraph(n))
        return lambda config, seed: engine.run(config, seed=seed)

    def continuous(n):
        engine = ContinuousEngine(TwoChoicesSequential(), CompleteGraph(n))
        return lambda config, seed: engine.run(config, seed=seed)

    def fast(n):
        return lambda config, seed: two_choices_sequential_fast(config, seed=seed)

    def counts_sequential(n):
        engine = fastest_engine(TwoChoicesSequential(), CompleteGraph(n), model="sequential")
        return lambda config, seed: engine.run(config, seed=seed)

    def counts_continuous(n):
        engine = fastest_engine(TwoChoicesSequential(), CompleteGraph(n), model="continuous")
        return lambda config, seed: engine.run(config, seed=seed)

    return [
        (_BASELINE, 100_000, per_tick),
        ("sequential", 1_000_000, sequential),
        ("continuous", 1_000_000, continuous),
        ("two-choices/fast", 100_000, fast),
        ("counts-sequential", None, counts_sequential),
        ("counts-continuous", None, counts_continuous),
    ]


def _benchmark_ensemble(
    ns: Sequence[int],
    ensemble_reps: Sequence[int],
    seed: int,
) -> List[Dict]:
    """Looped vs ensemble replication timing on async Two-Choices.

    The looped side is the pre-ensemble ``run_trials`` path: R
    independent ``CountsSequentialEngine.run`` calls on spawned child
    streams.  The ensemble side is a single
    ``EnsembleCountsSequentialEngine.run_ensemble`` call advancing all
    R replications per numpy batch.
    """
    rows: List[Dict] = []
    for n in ns:
        if n > 1_000_000:
            # The criterion lives at n = 1e6; above that the looped
            # side alone would dominate the benchmark's wall time.
            continue
        config = benchmark_split(n)
        topology = CompleteGraph(n)
        looped_engine = fastest_engine(TwoChoicesSequential(), topology, model="sequential")
        ensemble_engine = fastest_engine(
            TwoChoicesSequential(), topology, model="sequential", n_reps=max(ensemble_reps)
        )
        for reps in ensemble_reps:
            start = time.perf_counter()
            looped = [
                looped_engine.run(config, seed=child)
                for child in spawn_seed_sequences(seed, reps)
            ]
            looped_seconds = time.perf_counter() - start
            start = time.perf_counter()
            ensembled = ensemble_engine.run_ensemble(config, n_reps=reps, seed=seed)
            ensemble_seconds = time.perf_counter() - start
            rows.append(
                {
                    "n": int(n),
                    "reps": int(reps),
                    "looped_seconds": looped_seconds,
                    "ensemble_seconds": ensemble_seconds,
                    "speedup": looped_seconds / ensemble_seconds,
                    "all_converged": bool(
                        all(r.converged for r in looped) and all(r.converged for r in ensembled)
                    ),
                }
            )
    return rows


def benchmark_engines(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = 3,
    seed: int = 20170725,
    baseline_max_n: Optional[int] = None,
    ensemble_reps: Sequence[int] = ENSEMBLE_REPS,
) -> Dict:
    """Time every engine on the fixed workload for each ``n`` in *ns*.

    Returns the JSON-ready payload: per-(n, engine) mean seconds and
    run statistics, per-n speedups relative to the per-tick baseline,
    the looped-vs-ensemble replication comparison for each ``R`` in
    *ensemble_reps* (pass an empty sequence to skip it), and the
    headline criteria other tooling checks mechanically.  Engines
    whose cost scales with ``n`` in Python are skipped above their
    ``max_n`` (recorded as ``skipped`` entries so the table shape is
    stable); *baseline_max_n* lowers the per-tick cap for quick CI
    runs.
    """
    specs = _engine_specs()
    results: List[Dict] = []
    for n in ns:
        config = benchmark_split(n)
        for key, max_n, factory in specs:
            cap = max_n
            if key == _BASELINE and baseline_max_n is not None:
                cap = min(baseline_max_n, max_n)
            if cap is not None and n > cap:
                results.append({"engine": key, "n": n, "skipped": True})
                continue
            runner = factory(n)
            seconds = []
            parallel_times = []
            converged = True
            for trial in range(trials):
                start = time.perf_counter()
                result = runner(config, seed + trial)
                seconds.append(time.perf_counter() - start)
                parallel_times.append(result.parallel_time)
                converged = converged and result.converged
            results.append(
                {
                    "engine": key,
                    "n": n,
                    "skipped": False,
                    "trials": trials,
                    "mean_seconds": float(np.mean(seconds)),
                    "min_seconds": float(np.min(seconds)),
                    "mean_parallel_time": float(np.mean(parallel_times)),
                    "all_converged": bool(converged),
                }
            )

    speedups: Dict[str, Dict[str, float]] = {}
    for n in ns:
        rows = {r["engine"]: r for r in results if r["n"] == n and not r.get("skipped")}
        base = rows.get(_BASELINE)
        if base is None:
            continue
        speedups[str(n)] = {
            key: base["mean_seconds"] / row["mean_seconds"]
            for key, row in rows.items()
            if key != _BASELINE
        }

    criteria = {}
    # Speedup criterion at the largest n where the per-tick baseline
    # actually ran (quick CI caps the baseline at 1e4, so the criterion
    # is still emitted there instead of silently vanishing).
    common = sorted(int(n) for n, per_engine in speedups.items() if "counts-sequential" in per_engine)
    if common:
        n_ref = common[-1]
        speedup = speedups[str(n_ref)]["counts-sequential"]
        criteria["speedup_reference_n"] = n_ref
        criteria["counts_seq_speedup_vs_per_tick"] = speedup
        criteria["counts_seq_faster_than_per_tick"] = speedup > 1.0
        if n_ref >= 100_000:
            # The >= 20x figure is an n >= 1e5 claim (below that, fixed
            # per-batch overhead dominates); quick CI runs record the
            # plain speedup instead of a vacuously-failing flag.
            criteria["counts_seq_speedup_at_1e5"] = speedups["100000"]["counts-sequential"]
            criteria["counts_seq_speedup_at_1e5_ge_20x"] = (
                speedups["100000"]["counts-sequential"] >= 20.0
            )
    headline = [
        r for r in results if r["engine"] == "counts-sequential" and r["n"] >= 10**8 and not r.get("skipped")
    ]
    if headline:
        criteria["counts_seq_1e8_seconds"] = headline[0]["mean_seconds"]
        criteria["counts_seq_1e8_under_60s"] = headline[0]["mean_seconds"] < 60.0

    ensemble_rows = _benchmark_ensemble(ns, ensemble_reps, seed) if ensemble_reps else []
    if ensemble_rows:
        # Criterion at the largest covered (n, R) cell: the ensemble PR
        # promises >= 10x over the looped run_trials path at n = 1e6,
        # R = 100; quick CI runs record the same cell at their own
        # largest n instead of silently dropping the criterion.
        top = max(ensemble_rows, key=lambda row: (row["n"], row["reps"]))
        criteria["ensemble_reference_n"] = top["n"]
        criteria["ensemble_reference_reps"] = top["reps"]
        criteria["ensemble_speedup_vs_looped"] = top["speedup"]
        criteria["ensemble_faster_than_looped"] = top["speedup"] > 1.0
        if top["n"] >= 1_000_000 and top["reps"] >= 100:
            criteria["ensemble_speedup_at_1e6_r100_ge_10x"] = top["speedup"] >= 10.0

    return {
        "benchmark": "engine-family/async-two-choices",
        "workload": "Two-Choices on K_n, counts (0.6n, 0.4n), run to consensus",
        "ns": [int(n) for n in ns],
        "trials": trials,
        "seed": seed,
        "baseline": _BASELINE,
        "results": results,
        "speedups_vs_per_tick": speedups,
        "ensemble": ensemble_rows,
        "criteria": criteria,
        "environment": bench_environment(),
    }


def save_payload(payload: Dict, path: str) -> None:
    """Write the payload as indented JSON (stable key order)."""
    save_bench_payload(payload, path)


def format_payload(payload: Dict) -> str:
    """Human-readable table of the payload for terminal output."""
    from .tables import format_table

    rows = []
    for entry in payload["results"]:
        if entry.get("skipped"):
            rows.append([entry["engine"], entry["n"], "skipped", "", ""])
        else:
            rows.append(
                [
                    entry["engine"],
                    entry["n"],
                    f"{entry['mean_seconds']:.3f}s",
                    f"{entry['mean_parallel_time']:.1f}",
                    "yes" if entry["all_converged"] else "NO",
                ]
            )
    lines = [format_table(["engine", "n", "mean wall", "mean parallel time", "converged"], rows)]
    for n, per_engine in payload["speedups_vs_per_tick"].items():
        pretty = ", ".join(f"{key} {value:.0f}x" for key, value in sorted(per_engine.items()))
        lines.append(f"speedup vs {payload['baseline']} at n={n}: {pretty}")
    if payload.get("ensemble"):
        ensemble_rows = [
            [
                entry["n"],
                entry["reps"],
                f"{entry['looped_seconds']:.3f}s",
                f"{entry['ensemble_seconds']:.3f}s",
                f"{entry['speedup']:.1f}x",
                "yes" if entry["all_converged"] else "NO",
            ]
            for entry in payload["ensemble"]
        ]
        lines.append("")
        lines.append("replication paths (async Two-Choices, counts engines):")
        lines.append(
            format_table(["n", "reps", "looped", "ensemble", "speedup", "converged"], ensemble_rows)
        )
    for name, value in payload["criteria"].items():
        lines.append(f"criterion {name}: {value}")
    return "\n".join(lines)


def add_cli_arguments(parser) -> None:
    """Register the benchmark's options on *parser*.

    Shared by the standalone entry point below and the ``engines``
    subcommand of ``python -m repro`` so the two interfaces cannot
    drift apart.
    """
    parser.add_argument("--ns", default=None, help="comma-separated list of n values")
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20170725)
    parser.add_argument(
        "--reps",
        default=None,
        help="comma-separated replication counts for the looped-vs-ensemble "
        "comparison (default 10,100; pass 0 to skip it)",
    )
    parser.add_argument("--out", default=None, help="write the JSON payload to this path")
    parser.add_argument(
        "--quick", action="store_true", help="CI scale: n in {1e4, 1e5}, per-tick baseline capped at 1e4"
    )
    parser.add_argument(
        "--headline", action="store_true", help="add the n=1e8 counts-engine headline run"
    )


def run_cli(args, error) -> int:
    """Execute a parsed ``add_cli_arguments`` namespace.

    *error* is the owning parser's ``error`` callable (exits with a
    usage message on invalid ``--ns`` values).
    """
    if args.ns is not None:
        try:
            ns = [int(value) for value in args.ns.split(",")]
        except ValueError:
            error(f"--ns must be comma-separated integers, got {args.ns!r}")
        if any(n < 2 for n in ns):
            error(f"--ns values must be >= 2, got {ns}")
    else:
        ns = list(QUICK_NS if args.quick else DEFAULT_NS)
    if args.headline and 10**8 not in ns:
        ns.append(10**8)
    if args.reps is not None:
        try:
            ensemble_reps = [int(value) for value in args.reps.split(",")]
        except ValueError:
            error(f"--reps must be comma-separated integers, got {args.reps!r}")
        ensemble_reps = [reps for reps in ensemble_reps if reps > 0]
    else:
        ensemble_reps = list(ENSEMBLE_REPS)
    payload = benchmark_engines(
        ns=ns,
        trials=args.trials,
        seed=args.seed,
        baseline_max_n=10_000 if args.quick else None,
        ensemble_reps=ensemble_reps,
    )
    print(format_payload(payload))
    if args.out:
        save_payload(payload, args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone CLI entry point."""
    import argparse

    parser = argparse.ArgumentParser(description="benchmark the engine family on async Two-Choices")
    add_cli_arguments(parser)
    args = parser.parse_args(argv)
    return run_cli(args, parser.error)

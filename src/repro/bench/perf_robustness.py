"""Robustness campaign driver: fault-injection phase-transition maps.

One call runs the whole suite of :mod:`repro.workloads.robustness`
campaigns — for each protocol in :data:`GRID_PROTOCOLS` and each fault
kind (loss / stubborn / byzantine), a fault-rate x initial-gap grid on
``K_n``, plus the many-colour leg (stubborn three-majority over
seeded Zipf-sampled initials, rate x exponent) — and folds each into a
phase map with its empirical critical rates.

Unlike the wall-clock ``perf_*`` modules this one's payload is a
*simulation* artifact: everything outside the ``"execution"`` block is
a pure function of the campaign specs and the master seed, so a warm
replay from the result cache reproduces it byte-for-byte with zero
engine runs (the cold/warm identity contract CI's robustness-smoke job
pins).  Criteria:

* ``zero_fault_consensus_*`` — every fault-free cell converges in
  every replication (the suite's sanity anchor: rate 0 expands to the
  unwrapped spec, so this gates the plain protocols too);
* ``fault_injection_bites_*`` — at the largest swept rate and the
  smallest bias, the protocol no longer always succeeds (consensus
  within budget *on the initial plurality*) — the injected faults
  measurably degrade the guarantee.  Asserted only
  when ``degradation_assertable`` (enough replications per cell);
  quick CI scale records the numbers and warns instead.

``python -m repro robustness`` and ``benchmarks/bench_robustness.py``
both call :func:`benchmark_robustness` and persist the payload
(``BENCH_robustness.json`` at the repo root by convention).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..api.campaign import run_campaign
from ..workloads.robustness import (
    FAULT_KINDS,
    critical_rates,
    phase_map,
    robustness_campaign,
    zipf_robustness_campaign,
)
from .store import bench_environment, save_bench_payload

__all__ = [
    "benchmark_robustness",
    "format_payload",
    "save_payload",
    "main",
    "DEFAULT_SCALE",
    "QUICK_SCALE",
    "GRID_PROTOCOLS",
]

#: protocols every fault kind is mapped for (both have tick footprints,
#: so the fault wrappers keep their hazard-batched fast path).
GRID_PROTOCOLS = ("two-choices", "three-majority")

#: the standard grids.  ``max_steps_parallel`` is the per-replication
#: tick budget in units of parallel time (ticks / n): past the phase
#: boundary the honest nodes never settle, so the budget — not the
#: engine default of ``50 ln n`` — is what caps those cells.
DEFAULT_SCALE = {
    "n": 400,
    "reps": 6,
    "loss_rates": (0.0, 0.2, 0.4, 0.6),
    "adversary_rates": (0.0, 0.05, 0.1, 0.2),
    "gaps": (20, 60, 120),
    "zipf_rates": (0.0, 0.05, 0.1, 0.2),
    "zipf_alphas": (0.5, 1.0, 1.5),
    "zipf_k": 8,
    "max_steps_parallel": 80,
}

#: CI scale: a 2x2 corner of every map, 2 replications per cell.
QUICK_SCALE = {
    "n": 120,
    "reps": 2,
    "loss_rates": (0.0, 0.5),
    "adversary_rates": (0.0, 0.15),
    "gaps": (12, 40),
    "zipf_rates": (0.0, 0.15),
    "zipf_alphas": (0.5, 1.5),
    "zipf_k": 6,
    "max_steps_parallel": 60,
}

#: fewest replications per cell for the degradation booleans to be
#: asserted rather than recorded-and-warned (QUICK's 2 are too noisy).
ASSERTABLE_REPS = 4


def _slug(protocol: str, fault: str) -> str:
    return f"{protocol}_{fault}".replace("-", "_")


def benchmark_robustness(
    quick: bool = False,
    seed: int = 20170725,
    cache=None,
    workers: int = 1,
    scale: Optional[Dict] = None,
) -> Dict:
    """Run every robustness campaign and assemble the phase-map payload.

    Parameters
    ----------
    quick:
        Use :data:`QUICK_SCALE` instead of :data:`DEFAULT_SCALE`.
    seed:
        Master seed shared by every campaign (per-point seeds derive
        from it; it also pins the Zipf initial draw and the
        faulty-node masks).
    cache:
        ``None``, a directory path, or a
        :class:`~repro.api.cache.ResultCache` — forwarded to
        :func:`~repro.api.campaign.run_campaign`, so a warm directory
        replays the whole suite without touching an engine.
    workers:
        ``> 1`` fans campaign points over the process executor
        (value-identical to serial by the campaign seeding rule).
    scale:
        Explicit overrides merged over the selected scale dict.
    """
    params = dict(QUICK_SCALE if quick else DEFAULT_SCALE)
    if scale:
        params.update(scale)
    n = int(params["n"])
    reps = int(params["reps"])
    max_steps = int(params["max_steps_parallel"] * n)
    executor = "process" if workers > 1 else "serial"

    grids: List[Dict] = []
    engine_runs = 0
    cache_hits = 0
    start = time.perf_counter()
    for protocol in GRID_PROTOCOLS:
        for fault in FAULT_KINDS:
            rates = params["loss_rates"] if fault == "loss" else params["adversary_rates"]
            campaign = robustness_campaign(
                protocol,
                fault,
                rates,
                params["gaps"],
                n=n,
                reps=reps,
                seed=seed,
                max_steps=max_steps,
            )
            result = run_campaign(campaign, executor=executor, cache=cache, workers=workers)
            engine_runs += result.engine_runs
            cache_hits += result.cache_hits
            folded = phase_map(result, rates, params["gaps"])
            grids.append(
                {
                    "campaign": campaign.name,
                    "protocol": protocol,
                    "fault": fault,
                    "initial": "two-colors",
                    "n": n,
                    "reps": reps,
                    "max_steps": max_steps,
                    "phase_map": folded,
                    "critical_rates": critical_rates(folded),
                }
            )
    zipf = zipf_robustness_campaign(
        "three-majority",
        "stubborn",
        params["zipf_rates"],
        params["zipf_alphas"],
        n=n,
        k=int(params["zipf_k"]),
        reps=reps,
        seed=seed,
        init_seed=seed,
        max_steps=max_steps,
    )
    result = run_campaign(zipf, executor=executor, cache=cache, workers=workers)
    engine_runs += result.engine_runs
    cache_hits += result.cache_hits
    folded = phase_map(result, params["zipf_rates"], params["zipf_alphas"])
    grids.append(
        {
            "campaign": zipf.name,
            "protocol": "three-majority",
            "fault": "stubborn",
            "initial": "zipf-sampled",
            "n": n,
            "reps": reps,
            "max_steps": max_steps,
            "phase_map": folded,
            "critical_rates": critical_rates(folded),
        }
    )
    elapsed = time.perf_counter() - start

    criteria: Dict = {"degradation_assertable": reps >= ASSERTABLE_REPS}
    for grid in grids:
        folded = grid["phase_map"]
        slug = _slug(grid["protocol"], grid["fault"])
        if grid["initial"] == "zipf-sampled":
            slug = f"zipf_{slug}"
        # Rate 0 is the unwrapped spec; its whole row must converge.
        zero_row = min(folded["consensus_rate"][0])
        criteria[f"zero_fault_consensus_{slug}"] = zero_row
        criteria[f"zero_fault_consensus_ok_{slug}"] = zero_row == 1.0
        # The hardest cell: largest swept rate, smallest initial bias.
        # Loss degrades convergence within the budget, byzantine flips
        # the winner while still converging, stubborn does both — so
        # "the faults bite" is the min of the two rates dipping.
        worst = min(folded["consensus_rate"][-1][0], folded["plurality_rate"][-1][0])
        criteria[f"max_fault_success_{slug}"] = worst
        criteria[f"fault_injection_bites_{slug}"] = worst < 1.0

    return {
        "benchmark": "robustness/fault-injection",
        "workload": (
            "fault rate x initial bias phase maps on K_n: loss/stubborn/byzantine "
            "wrappers over two-colour gaps, plus stubborn three-majority over "
            "Zipf-sampled many-colour initials"
        ),
        "protocols": list(GRID_PROTOCOLS),
        "faults": list(FAULT_KINDS),
        "scale": {key: list(v) if isinstance(v, tuple) else v for key, v in params.items()},
        "seed": int(seed),
        "grids": grids,
        "criteria": criteria,
        "environment": bench_environment(),
        "execution": {
            "engine_runs": engine_runs,
            "cache_hits": cache_hits,
            "elapsed_seconds": elapsed,
            "executor": executor,
        },
    }


def save_payload(payload: Dict, path: str) -> None:
    """Write the payload as indented JSON (stable key order)."""
    save_bench_payload(payload, path)


def format_payload(payload: Dict) -> str:
    """Human-readable phase-map tables for terminal output."""
    from .tables import format_table

    lines: List[str] = []
    for grid in payload["grids"]:
        folded = grid["phase_map"]
        bias_label = "alpha" if grid["initial"] == "zipf-sampled" else "gap"
        lines.append(
            f"{grid['campaign']}: n={grid['n']}, reps={grid['reps']}, "
            f"budget={grid['max_steps']} ticks (cell = consensus/plurality rate)"
        )
        header = [f"rate \\ {bias_label}"] + [f"{bias:g}" for bias in folded["biases"]]
        rows = []
        for rate, consensus, plurality in zip(
            folded["rates"], folded["consensus_rate"], folded["plurality_rate"]
        ):
            rows.append(
                [f"{rate:g}"]
                + [f"{c:.2f}/{p:.2f}" for c, p in zip(consensus, plurality)]
            )
        lines.append(format_table(header, rows))
        pretty = ", ".join(
            f"{bias_label}={bias:g}: {'none' if rate is None else f'{rate:g}'}"
            for bias, rate in zip(folded["biases"], grid["critical_rates"])
        )
        lines.append(f"critical rates (plurality >= 0.5): {pretty}")
        lines.append("")
    for name, value in payload["criteria"].items():
        lines.append(f"criterion {name}: {value}")
    return "\n".join(lines)


def add_cli_arguments(parser) -> None:
    """Register the suite's options on *parser* (shared by the
    standalone entry point and ``python -m repro robustness``)."""
    parser.add_argument("--seed", type=int, default=20170725, help="master campaign seed")
    parser.add_argument("--out", default=None, help="write the JSON payload to this path")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache (a warm directory replays the suite "
        "with engine_runs=0 and byte-identical deterministic output)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per campaign (>1 selects the process executor)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI scale: 2x2 corner of every map, 2 reps"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic payload as JSON on stdout (execution stats go "
        "to stderr, so warm replays are byte-identical)",
    )


def run_cli(args, error) -> int:
    """Execute a parsed ``add_cli_arguments`` namespace."""
    import json
    import sys

    if args.workers < 1:
        error(f"--workers must be >= 1, got {args.workers}")
    payload = benchmark_robustness(
        quick=args.quick,
        seed=args.seed,
        cache=args.cache_dir,
        workers=args.workers,
    )
    execution = payload["execution"]
    if args.json:
        deterministic = {key: v for key, v in payload.items() if key != "execution"}
        print(json.dumps(deterministic, indent=2, sort_keys=True))
    else:
        print(format_payload(payload))
    print(
        f"robustness: engine_runs={execution['engine_runs']}, "
        f"cache_hits={execution['cache_hits']}, "
        f"elapsed={execution['elapsed_seconds']:.2f}s",
        file=sys.stderr,
    )
    if args.out:
        save_payload(payload, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone CLI entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        description="fault-injection robustness suite: phase-transition maps"
    )
    add_cli_arguments(parser)
    args = parser.parse_args(argv)
    return run_cli(args, parser.error)

"""JSON result store and shared bench-payload plumbing.

Each experiment run can be persisted as ``<dir>/<experiment_id>.json``
so EXPERIMENTS.md's paper-vs-measured numbers are regenerable and the
CLI can re-print past results without re-running the sweep.

The module also hosts the two helpers every ``perf_*`` module and
``benchmarks/bench_*.py`` target shares — the environment stamp and the
``BENCH_*.json`` emission — so the payload format is defined once.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict, List, Optional, TextIO

import numpy as np

from ..core.exceptions import ExperimentError

__all__ = [
    "ResultStore",
    "bench_environment",
    "save_bench_payload",
    "warn_skipped_criterion",
]


def bench_environment() -> Dict[str, str]:
    """The environment stamp embedded in every ``BENCH_*.json`` payload."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }


def warn_skipped_criterion(name: str, reason: str, stream: Optional[TextIO] = None) -> None:
    """Loudly record that a perf criterion was measured but not asserted.

    A speedup gate that silently no-ops on an undersized box looks
    exactly like a pass in CI logs; this prints a GitHub-Actions
    ``::warning`` annotation on stdout (surfaced on the run summary
    page) plus a plain line on stderr for terminal runs, so a skipped
    gate is always visible.
    """
    message = f"perf criterion {name!r} recorded but NOT asserted: {reason}"
    print(f"::warning::{message}")
    print(f"repro bench: {message}", file=stream if stream is not None else sys.stderr)


def save_bench_payload(payload: Dict, path: str) -> None:
    """Write a bench payload as indented JSON (insertion key order,
    trailing newline) — the on-disk convention of the repo-root
    ``BENCH_*.json`` perf-trajectory files."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


class ResultStore:
    """Directory-backed key-value store for experiment payloads."""

    def __init__(self, directory: str = "results"):
        self.directory = Path(directory)

    def save(self, experiment_id: str, payload: Dict) -> Path:
        """Persist *payload* under the experiment id (overwrites)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        return path

    def load(self, experiment_id: str) -> Dict:
        path = self._path(experiment_id)
        if not path.exists():
            raise ExperimentError(f"no stored result for {experiment_id!r} in {self.directory}")
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    def exists(self, experiment_id: str) -> bool:
        return self._path(experiment_id).exists()

    def list_ids(self) -> List[str]:
        if not self.directory.exists():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def _path(self, experiment_id: str) -> Path:
        safe = experiment_id.replace("/", "_")
        if not safe:
            raise ExperimentError("experiment id must be non-empty")
        return self.directory / f"{safe}.json"

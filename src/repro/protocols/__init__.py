"""Protocols: the paper's algorithms plus standard baselines.

* Two-Choices (Theorem 1.1) — sync / counts-exact / sequential.
* OneExtraBit (Theorem 1.2) — sync agent-based and counts-exact.
* AsyncPluralityConsensus (Theorem 1.3) — the main contribution, with
  its PhaseSchedule and Sync Gadget, plus a tick-interface variant for
  the generic engines.
* Baselines: Voter, 3-Majority, Undecided-State Dynamics.
"""

from .async_plurality import AsyncPluralityConsensus, AsyncPluralityProtocol, ClockSkew
from .base import (
    CountsProtocol,
    EnsembleCountsProtocol,
    SequentialCountsProtocol,
    SequentialProtocol,
    SynchronousProtocol,
)
from .endgame import near_consensus_start, run_endgame
from .faults import ByzantineProtocol, FaultMaskedState, StubbornProtocol
from .lossy import LossyProtocol
from .one_extra_bit import (
    OneExtraBitCounts,
    OneExtraBitCountsState,
    OneExtraBitState,
    OneExtraBitSynchronous,
    default_bp_rounds,
)
from .rumor import RumorState, spread_rumor_agents, spread_rumor_counts
from .schedule import (
    ACTION_BP,
    ACTION_NAMES,
    ACTION_NOP,
    ACTION_SYNC_JUMP,
    ACTION_SYNC_SAMPLE,
    ACTION_TC_COMMIT,
    ACTION_TC_SAMPLE,
    PhaseSchedule,
    default_delta,
    default_phase_count,
    default_sync_samples,
)
from .sync_gadget import SyncSampleBuffer, jump_target, median_of_samples
from .three_majority import (
    ThreeMajorityCounts,
    ThreeMajoritySequential,
    ThreeMajoritySequentialCounts,
    ThreeMajoritySynchronous,
)
from .two_choices import (
    TwoChoicesCounts,
    TwoChoicesSequential,
    TwoChoicesSequentialCounts,
    TwoChoicesSynchronous,
)
from .two_choices_fast import two_choices_sequential_fast
from .undecided_state import (
    UndecidedStateCounts,
    UndecidedStateSequential,
    UndecidedStateSequentialCounts,
    UndecidedStateSynchronous,
)
from .voter import VoterCounts, VoterSequential, VoterSequentialCounts, VoterSynchronous

__all__ = [
    "AsyncPluralityConsensus",
    "ClockSkew",
    "AsyncPluralityProtocol",
    "CountsProtocol",
    "EnsembleCountsProtocol",
    "SequentialCountsProtocol",
    "SequentialProtocol",
    "SynchronousProtocol",
    "near_consensus_start",
    "run_endgame",
    "ByzantineProtocol",
    "FaultMaskedState",
    "StubbornProtocol",
    "LossyProtocol",
    "OneExtraBitCounts",
    "OneExtraBitCountsState",
    "OneExtraBitState",
    "OneExtraBitSynchronous",
    "default_bp_rounds",
    "ACTION_BP",
    "ACTION_NAMES",
    "ACTION_NOP",
    "ACTION_SYNC_JUMP",
    "ACTION_SYNC_SAMPLE",
    "ACTION_TC_COMMIT",
    "ACTION_TC_SAMPLE",
    "PhaseSchedule",
    "RumorState",
    "spread_rumor_agents",
    "spread_rumor_counts",
    "default_delta",
    "default_phase_count",
    "default_sync_samples",
    "SyncSampleBuffer",
    "jump_target",
    "median_of_samples",
    "ThreeMajorityCounts",
    "ThreeMajoritySequential",
    "ThreeMajoritySequentialCounts",
    "ThreeMajoritySynchronous",
    "TwoChoicesCounts",
    "TwoChoicesSequential",
    "TwoChoicesSequentialCounts",
    "TwoChoicesSynchronous",
    "two_choices_sequential_fast",
    "UndecidedStateCounts",
    "UndecidedStateSequential",
    "UndecidedStateSequentialCounts",
    "UndecidedStateSynchronous",
    "VoterCounts",
    "VoterSequential",
    "VoterSequentialCounts",
    "VoterSynchronous",
]

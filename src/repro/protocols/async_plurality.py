"""The asynchronous plurality-consensus protocol (Theorem 1.3).

This is the paper's main contribution: an adaptation of OneExtraBit to
the asynchronous (sequential / Poisson-clock) model that converges in
the optimal ``Theta(log n)`` parallel time for
``k = O(exp(log n / log log n))`` opinions and multiplicative bias
``c1 >= (1 + eps) ci``.

Structure (Section 3.1):

* **Part one** — ``Theta(log log n)`` phases, each made of a
  Two-Choices sub-phase (sample step + commit step separated by
  do-nothing blocks), a Bit-Propagation sub-phase, and a Sync-Gadget
  sub-phase (see :mod:`repro.protocols.sync_gadget`).  Nodes act
  according to their *working time*; the Sync Gadget perpetually pulls
  working times together so that all but ``o(n)`` nodes stay within
  ``Delta`` of one another.  Part one drives the plurality colour to
  ``c1 >= (1 - eps) n``.
* **Part two (endgame)** — plain asynchronous Two-Choices for
  ``Theta(log n)`` further ticks, after which a node freezes its
  colour.  Theorem-wise, all nodes hold ``C1`` before the first node
  terminates, w.h.p. (Section 3.2) — the run records both event times
  so experiment T9 can check exactly that.

Two realisations:

:class:`AsyncPluralityConsensus`
    A self-contained optimised runner for the sequential model (Python
    scalar hot loop over list state, batched RNG).  This is what the
    benchmarks drive; ``n = 10^4`` runs take seconds.
:class:`AsyncPluralityProtocol`
    The same per-tick semantics behind the generic
    :class:`~repro.protocols.base.SequentialProtocol` interface, so the
    protocol also runs on the generic sequential engine and on the
    continuous-time engine *with response delays* (experiment T12).
    A distribution-level agreement test between the two realisations
    lives in ``tests/test_async_cross_validation.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..api.registry import ParamSpec, register_protocol
from ..core.colors import ColorConfiguration, assignment_from_counts
from ..core.exceptions import ConfigurationError, ProtocolError
from ..core.results import RunResult, Trace
from ..core.rng import SeedLike, as_generator
from ..core.state import NO_COLOR, AsyncNodeState
from ..engine.base import build_result
from ..graphs.topology import Topology
from .base import SequentialProtocol
from .schedule import (
    ACTION_BP,
    ACTION_NOP,
    ACTION_SYNC_JUMP,
    ACTION_SYNC_SAMPLE,
    ACTION_TC_COMMIT,
    ACTION_TC_SAMPLE,
    PhaseSchedule,
)
from .sync_gadget import SyncSampleBuffer, jump_target

__all__ = ["ClockSkew", "AsyncPluralityConsensus", "AsyncPluralityProtocol"]


@dataclass(frozen=True)
class ClockSkew:
    """Heterogeneous Poisson clock rates (robustness extension).

    The paper's weak-synchronicity notion explicitly tolerates ``o(n)``
    poorly synchronised nodes; this knob creates them deliberately: a
    ``fraction`` of nodes tick at ``rate`` (relative to the unit rate
    of the rest), so e.g. ``ClockSkew(0.05, 0.5)`` makes 5% of the
    population run at half speed.  Ablation experiment A1 sweeps this.

    Asymmetry worth knowing: *slow* clocks are absorbed — the Sync
    Gadget and the tick-budgeted endgame simply make everyone wait —
    but a *fast* minority beyond ~1.5x can race through the endgame and
    freeze its colour before global consensus, because termination is
    counted in own ticks (the paper's model has unit rates, so this
    regime is outside its guarantees; see
    ``tests/test_clock_skew.py::test_very_fast_minority_can_terminate_prematurely``).
    """

    fraction: float = 0.0
    rate: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.fraction < 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1), got {self.fraction}")
        if self.rate <= 0.0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")

    @property
    def is_uniform(self) -> bool:
        return self.fraction == 0.0 or self.rate == 1.0

    def total_rate(self, n: int) -> float:
        """Aggregate tick rate of the population (unit-rate nodes = 1)."""
        slow = int(round(self.fraction * n))
        return slow * self.rate + (n - slow)


@dataclass(frozen=True)
class _ScheduleParams:
    """Constructor-time schedule knobs, resolved per ``n`` at run time."""

    delta_factor: float = 1.0
    phases: Optional[int] = None
    phase_factor: float = 3.0
    phase_offset: int = 2
    bp_blocks: int = 2
    min_sync_blocks: int = 2
    sync_samples: Optional[int] = None
    endgame_factor: float = 14.0
    sync_enabled: bool = True

    def compile(self, n: int) -> PhaseSchedule:
        return PhaseSchedule.compile(
            n,
            delta_factor=self.delta_factor,
            phases=self.phases,
            phase_factor=self.phase_factor,
            phase_offset=self.phase_offset,
            bp_blocks=self.bp_blocks,
            min_sync_blocks=self.min_sync_blocks,
            sync_samples=self.sync_samples,
            endgame_factor=self.endgame_factor,
            sync_enabled=self.sync_enabled,
        )


class AsyncPluralityConsensus:
    """Optimised sequential-model runner for the phased protocol.

    All keyword arguments parameterise the
    :class:`~repro.protocols.schedule.PhaseSchedule` (see DESIGN.md §4);
    ``sync_enabled=False`` disables the Sync Gadget for the T7 ablation.
    """

    def __init__(
        self,
        delta_factor: float = 1.0,
        phases: Optional[int] = None,
        phase_factor: float = 3.0,
        phase_offset: int = 2,
        bp_blocks: int = 2,
        min_sync_blocks: int = 2,
        sync_samples: Optional[int] = None,
        endgame_factor: float = 14.0,
        sync_enabled: bool = True,
    ):
        self.params = _ScheduleParams(
            delta_factor=delta_factor,
            phases=phases,
            phase_factor=phase_factor,
            phase_offset=phase_offset,
            bp_blocks=bp_blocks,
            min_sync_blocks=min_sync_blocks,
            sync_samples=sync_samples,
            endgame_factor=endgame_factor,
            sync_enabled=sync_enabled,
        )

    def schedule_for(self, n: int) -> PhaseSchedule:
        """The compiled working-time schedule used for *n* nodes."""
        return self.params.compile(n)

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(
        self,
        initial: Union[ColorConfiguration, np.ndarray],
        seed: SeedLike = None,
        max_parallel_time: Optional[float] = None,
        stop_at_consensus: bool = True,
        record_spread: bool = True,
        spread_every_parallel: float = 1.0,
        record_trace: bool = False,
        trace_every_parallel: float = 1.0,
        skew: Optional[ClockSkew] = None,
    ) -> RunResult:
        """Execute the full protocol (part one + endgame).

        Parameters
        ----------
        initial:
            Counts vector or per-node colour array.
        max_parallel_time:
            Hard time budget; the default covers the whole schedule for
            every node with generous slack.
        stop_at_consensus:
            Return as soon as consensus is observed (checked once per
            parallel time unit).  Set ``False`` to run until every node
            terminates — required when measuring the Section 3.2 claim
            that consensus precedes the first termination.
        record_spread:
            Record working-time spread and the fraction of poorly
            synchronised nodes (``|wt - median| > Delta``) once per
            ``spread_every_parallel`` time units into
            ``metadata["spread_trace"]``.
        skew:
            Optional :class:`ClockSkew` making a fraction of nodes tick
            at a non-unit rate (robustness extension; ablation A1).
            Parallel time is then measured against the aggregate rate.
        """
        rng = as_generator(seed)
        colors_arr, k = _materialize(initial, rng)
        n = colors_arr.size
        if n < 2:
            raise ConfigurationError("the protocol needs at least 2 nodes")
        schedule = self.schedule_for(n)
        part_one = schedule.part_one_length
        total_wt = schedule.total_length
        phase_len = schedule.phase_length
        actions = schedule.actions.tolist()
        sync_starts = schedule.sync_starts
        delta = schedule.delta

        skew = skew if skew is not None else ClockSkew()
        # With heterogeneous clocks, global ticks arrive at the aggregate
        # rate; `tick_rate` converts tick counts to parallel time.
        tick_rate = skew.total_rate(n)
        slow_count = int(round(skew.fraction * n))
        if max_parallel_time is None:
            # Every node needs `total_wt` own ticks; all clocks reach T
            # ticks within T + O(log n) parallel time w.h.p.  Slow nodes
            # need proportionally longer.
            slack = 1.0 / min(skew.rate, 1.0) if slow_count else 1.0
            max_parallel_time = (1.5 * total_wt + 20.0 * max(math.log(n), 1.0)) * slack
        max_ticks = int(max_parallel_time * tick_rate)

        # Hot-loop state lives in plain Python lists: scalar list access
        # is several times faster than numpy scalar indexing.
        colors: List[int] = colors_arr.tolist()
        counts: List[int] = np.bincount(colors_arr, minlength=k).tolist()
        initial_counts = list(counts)
        wt: List[int] = [0] * n
        rt: List[int] = [0] * n
        bit: List[bool] = [False] * n
        inter: List[int] = [NO_COLOR] * n
        terminated: List[bool] = [False] * n
        buffers = [SyncSampleBuffer() for _ in range(n)]

        trace = Trace() if record_trace else None
        if trace is not None:
            trace.record(0.0, counts)
        trace_stride = max(1, int(trace_every_parallel * tick_rate))
        next_trace_tick = trace_stride
        spread_trace: List[Dict] = []
        spread_stride = max(1, int(spread_every_parallel * tick_rate))
        next_spread_tick = spread_stride

        ticks = 0
        alive = n
        first_consensus_tick: Optional[int] = None
        first_termination_tick: Optional[int] = None
        # Check consensus 4x per parallel time unit: the O(k) count scan
        # is cheap and a coarser cadence would systematically date the
        # "first consensus" event later than the (exactly known) first
        # termination when comparing the two (Section 3.2).
        check_stride = max(1, int(tick_rate) // 4)
        batch = 8192
        # Neighbour-draw buffer: draws in [0, n-2], shifted around self.
        nbr = rng.integers(0, n - 1, size=4 * batch).tolist()
        nbr_ptr = 0
        nbr_len = len(nbr)

        if slow_count and not skew.is_uniform:
            # Two-tier selection: a tick belongs to the slow group with
            # probability (slow mass) / (total mass), then uniform within
            # the group — equal in law to per-node Poisson racing.
            slow_ids = rng.choice(n, size=slow_count, replace=False)
            fast_ids = np.setdiff1d(np.arange(n), slow_ids)
            p_slow = slow_count * skew.rate / tick_rate
        else:
            slow_ids = fast_ids = None
            p_slow = 0.0

        stop = False
        while not stop and alive > 0 and ticks < max_ticks:
            if slow_ids is None:
                picks = rng.integers(0, n, size=batch).tolist()
            else:
                in_slow = rng.random(batch) < p_slow
                slow_picks = slow_ids[rng.integers(0, slow_ids.size, size=batch)]
                fast_picks = fast_ids[rng.integers(0, fast_ids.size, size=batch)]
                picks = np.where(in_slow, slow_picks, fast_picks).tolist()
            for u in picks:
                ticks += 1
                if not terminated[u]:
                    if nbr_ptr + 2 > nbr_len:
                        nbr = rng.integers(0, n - 1, size=4 * batch).tolist()
                        nbr_ptr = 0
                    w = wt[u]
                    if w < part_one:
                        a = actions[w]
                        if a == ACTION_NOP:
                            wt[u] = w + 1
                            rt[u] += 1
                        elif a == ACTION_BP:
                            if not bit[u]:
                                r = nbr[nbr_ptr]
                                nbr_ptr += 1
                                v = r + 1 if r >= u else r
                                if bit[v]:
                                    c = colors[v]
                                    old = colors[u]
                                    if c != old:
                                        counts[old] -= 1
                                        counts[c] += 1
                                        colors[u] = c
                                    bit[u] = True
                            wt[u] = w + 1
                            rt[u] += 1
                        elif a == ACTION_TC_SAMPLE:
                            r = nbr[nbr_ptr]
                            v1 = r + 1 if r >= u else r
                            r = nbr[nbr_ptr + 1]
                            v2 = r + 1 if r >= u else r
                            nbr_ptr += 2
                            c1 = colors[v1]
                            inter[u] = c1 if c1 == colors[v2] else NO_COLOR
                            wt[u] = w + 1
                            rt[u] += 1
                        elif a == ACTION_TC_COMMIT:
                            ic = inter[u]
                            if ic >= 0:
                                old = colors[u]
                                if ic != old:
                                    counts[old] -= 1
                                    counts[ic] += 1
                                    colors[u] = ic
                                bit[u] = True
                            else:
                                bit[u] = False
                            inter[u] = NO_COLOR
                            wt[u] = w + 1
                            rt[u] += 1
                        elif a == ACTION_SYNC_SAMPLE:
                            r = nbr[nbr_ptr]
                            nbr_ptr += 1
                            v = r + 1 if r >= u else r
                            buffers[u].collect(w // phase_len, rt[v], rt[u])
                            wt[u] = w + 1
                            rt[u] += 1
                        else:  # ACTION_SYNC_JUMP
                            phase = w // phase_len
                            target = jump_target(buffers[u], phase, rt[u], sync_starts[phase])
                            buffers[u].clear()
                            wt[u] = w + 1 if target is None else target
                            rt[u] += 1
                    else:
                        # Endgame: plain asynchronous Two-Choices.
                        r = nbr[nbr_ptr]
                        v1 = r + 1 if r >= u else r
                        r = nbr[nbr_ptr + 1]
                        v2 = r + 1 if r >= u else r
                        nbr_ptr += 2
                        c1 = colors[v1]
                        if c1 == colors[v2]:
                            old = colors[u]
                            if c1 != old:
                                counts[old] -= 1
                                counts[c1] += 1
                                colors[u] = c1
                        w += 1
                        wt[u] = w
                        rt[u] += 1
                        if w >= total_wt:
                            terminated[u] = True
                            alive -= 1
                            if first_termination_tick is None:
                                first_termination_tick = ticks
                            if alive == 0:
                                stop = True
                                break
                if ticks % check_stride == 0:
                    if first_consensus_tick is None and max(counts) == n:
                        first_consensus_tick = ticks
                        if stop_at_consensus:
                            stop = True
                            break
                    if record_spread and ticks >= next_spread_tick:
                        next_spread_tick += spread_stride
                        spread_trace.append(
                            _spread_snapshot(ticks / tick_rate, wt, terminated, delta, alive)
                        )
                    if trace is not None and ticks >= next_trace_tick:
                        next_trace_tick += trace_stride
                        trace.record(ticks / tick_rate, counts)
                if ticks >= max_ticks:
                    stop = True
                    break

        final_counts = np.asarray(counts, dtype=np.int64)
        consensus = int(final_counts.max()) == n
        converged = consensus or (first_consensus_tick is not None)
        if trace is not None:
            trace.record(ticks / tick_rate, counts)
        metadata = {
            "engine": "async-plurality/fast",
            "protocol": "async-plurality",
            "schedule": schedule.describe(),
            "delta": schedule.delta,
            "phases": schedule.phases,
            "part_one_length": schedule.part_one_length,
            "endgame_ticks": schedule.endgame_ticks,
            "sync_enabled": schedule.sync_enabled,
            "first_consensus_parallel_time": (
                None if first_consensus_tick is None else first_consensus_tick / tick_rate
            ),
            "first_termination_parallel_time": (
                None if first_termination_tick is None else first_termination_tick / tick_rate
            ),
            "consensus_before_first_termination": (
                None
                if first_consensus_tick is None
                else (first_termination_tick is None or first_consensus_tick <= first_termination_tick)
            ),
            "terminated_nodes": n - alive,
            "spread_trace": spread_trace,
        }
        return build_result(
            converged=converged,
            initial_counts=np.asarray(initial_counts, dtype=np.int64),
            final_counts=final_counts,
            rounds=ticks,
            parallel_time=ticks / tick_rate,
            trace=trace,
            metadata=metadata,
        )


def _spread_snapshot(parallel_time: float, wt: List[int], terminated: List[bool], delta: int, alive: int) -> Dict:
    """Working-time dispersion among active nodes at one instant.

    ``poor_fraction`` uses the paper's threshold ``Delta``;
    ``poor_fraction_2x`` / ``poor_fraction_4x`` loosen it, which matters
    at laptop-scale ``n`` where the Poisson noise within a single phase
    already exceeds the asymptotic ``Delta`` (see EXPERIMENTS.md, T7).
    """
    if alive == 0:
        return {
            "time": parallel_time,
            "spread": 0,
            "spread_core": 0,
            "poor_fraction": 0.0,
            "poor_fraction_2x": 0.0,
            "poor_fraction_4x": 0.0,
        }
    active = np.array([w for w, t in zip(wt, terminated) if not t], dtype=np.int64)
    median = np.median(active)
    deviation = np.abs(active - median)
    lo, hi = np.quantile(active, [0.005, 0.995])
    return {
        "time": parallel_time,
        "spread": int(active.max() - active.min()),
        "spread_core": int(round(hi - lo)),
        "poor_fraction": float(np.mean(deviation > delta)),
        "poor_fraction_2x": float(np.mean(deviation > 2 * delta)),
        "poor_fraction_4x": float(np.mean(deviation > 4 * delta)),
    }


def _materialize(initial, rng: np.random.Generator):
    if isinstance(initial, ColorConfiguration):
        return assignment_from_counts(initial, rng=rng), initial.k
    colors = np.asarray(initial, dtype=np.int64)
    if colors.ndim != 1 or colors.size == 0:
        raise ConfigurationError("explicit colour arrays must be non-empty and 1-D")
    return colors, int(colors.max()) + 1


class AsyncPluralityProtocol(SequentialProtocol):
    """Tick-interface realisation of the phased protocol.

    Semantically identical to :class:`AsyncPluralityConsensus` but
    expressed through :class:`~repro.protocols.base.SequentialProtocol`
    so the generic engines can drive it — in particular the
    continuous-time engine with response delays (experiment T12).

    Under delayed responses, a node whose request is in flight skips
    protocol actions while its clock ticks (see
    :mod:`repro.engine.continuous`); target attributes (bit, real time)
    are read at response-completion time.
    """

    name = "async-plurality/seq"

    def __init__(self, **schedule_kwargs):
        self.params = _ScheduleParams(**schedule_kwargs)

    # -- state -----------------------------------------------------------
    def make_state(self, colors: np.ndarray, k: int) -> AsyncNodeState:
        state = AsyncNodeState(colors=np.asarray(colors, dtype=np.int64), k=k)
        state.schedule = self.params.compile(state.n)
        state.buffers = [SyncSampleBuffer() for _ in range(state.n)]
        state.pending_targets = {}
        return state

    # -- tick interface ----------------------------------------------------
    def tick_targets(self, state: AsyncNodeState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        schedule: PhaseSchedule = state.schedule
        if state.terminated[node]:
            return np.empty(0, dtype=np.int64)
        w = int(state.working_time[node])
        if w >= schedule.part_one_length:
            targets = topology.sample_neighbors(node, 2, rng)
        else:
            action = schedule.action_at(w)
            if action == ACTION_TC_SAMPLE:
                targets = topology.sample_neighbors(node, 2, rng)
            elif action == ACTION_BP and not state.bit[node]:
                targets = topology.sample_neighbors(node, 1, rng)
            elif action == ACTION_SYNC_SAMPLE:
                targets = topology.sample_neighbors(node, 1, rng)
            else:
                targets = np.empty(0, dtype=np.int64)
        state.pending_targets[node] = targets
        return targets

    def tick_apply(self, state: AsyncNodeState, node: int, observed_colors: np.ndarray) -> None:
        schedule: PhaseSchedule = state.schedule
        if state.terminated[node]:
            return
        targets = state.pending_targets.pop(node, np.empty(0, dtype=np.int64))
        w = int(state.working_time[node])
        phase_len = schedule.phase_length
        if w >= schedule.part_one_length:
            if len(observed_colors) == 2 and observed_colors[0] == observed_colors[1]:
                state.colors[node] = observed_colors[0]
            state.working_time[node] = w + 1
            state.real_time[node] += 1
            if w + 1 >= schedule.total_length:
                state.terminated[node] = True
            return
        action = schedule.action_at(w)
        if action == ACTION_TC_SAMPLE:
            if len(observed_colors) == 2 and observed_colors[0] == observed_colors[1]:
                state.intermediate[node] = observed_colors[0]
            else:
                state.intermediate[node] = NO_COLOR
        elif action == ACTION_TC_COMMIT:
            ic = int(state.intermediate[node])
            if ic != NO_COLOR:
                state.colors[node] = ic
                state.bit[node] = True
            else:
                state.bit[node] = False
            state.intermediate[node] = NO_COLOR
        elif action == ACTION_BP:
            if not state.bit[node] and len(targets):
                target = int(targets[0])
                # Bit and colour are read together at response time.
                if state.bit[target]:
                    state.colors[node] = state.colors[target]
                    state.bit[node] = True
        elif action == ACTION_SYNC_SAMPLE:
            if len(targets):
                target = int(targets[0])
                state.buffers[node].collect(
                    w // phase_len, int(state.real_time[target]), int(state.real_time[node])
                )
        elif action == ACTION_SYNC_JUMP:
            phase = w // phase_len
            target_wt = jump_target(
                state.buffers[node], phase, int(state.real_time[node]), schedule.sync_starts[phase]
            )
            state.buffers[node].clear()
            state.real_time[node] += 1
            state.working_time[node] = w + 1 if target_wt is None else target_wt
            return
        state.working_time[node] = w + 1
        state.real_time[node] += 1

    def is_absorbed(self, state: AsyncNodeState) -> bool:
        return bool(state.terminated.all())


register_protocol(
    "async-plurality",
    description="The paper's phased asynchronous protocol with the Sync Gadget (Theorem 1.3)",
    sequential=AsyncPluralityProtocol,
    params=[
        ParamSpec("delta_factor", kind="float", default=1.0, doc="working-time spread bound multiplier"),
        ParamSpec("phases", kind="int", doc="number of Two-Choices/BP phases (default: schedule-derived)"),
        ParamSpec("phase_factor", kind="float", default=3.0, doc="phase-count multiplier on log2 log2 n"),
        ParamSpec("phase_offset", kind="int", default=2, doc="additive phase-count constant"),
        ParamSpec("bp_blocks", kind="int", default=2, doc="Bit-Propagation blocks per phase"),
        ParamSpec("min_sync_blocks", kind="int", default=2, doc="minimum Sync Gadget blocks per phase"),
        ParamSpec("sync_samples", kind="int", doc="samples per Sync block (default: schedule-derived)"),
        ParamSpec("endgame_factor", kind="float", default=14.0, doc="endgame length multiplier on ln n"),
        ParamSpec("sync_enabled", kind="bool", default=True, doc="enable the Sync Gadget"),
    ],
)

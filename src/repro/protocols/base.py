"""Protocol interfaces.

The paper's processes are driven by three different machines, so a
protocol may implement up to three complementary interfaces:

:class:`SynchronousProtocol`
    Round-based, agent-level: ``round_update`` rewrites the whole state
    vector once per synchronous round (Theorems 1.1 and 1.2 substrate).
:class:`CountsProtocol`
    Round-based on ``K_n`` at the level of colour *counts*.  On the
    complete graph with uniform sampling the round transition of every
    protocol here depends only on the counts vector, so a round can be
    drawn *exactly* from a handful of multinomials — this is what lets
    the benchmarks sweep ``n`` up to ``10^9``.
:class:`SequentialProtocol`
    Tick-based: one uniformly random node acts per tick (the paper's
    sequential model, equivalent in run time to the Poisson-clock model
    it cites Mosk-Aoyama & Shah for).  The interface splits a tick into
    *target selection* and *apply*, which lets the continuous-time
    engine inject response delays (the Discussion-section extension)
    without protocols knowing about it.

Protocols are stateless policy objects; all mutable simulation state
lives in :class:`~repro.core.state.NodeArrayState` (or a subclass), so
one protocol instance can drive many concurrent runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.exceptions import ProtocolError
from ..core.state import NodeArrayState
from ..graphs.topology import Topology

__all__ = [
    "SynchronousProtocol",
    "CountsProtocol",
    "SequentialProtocol",
]


class SynchronousProtocol(ABC):
    """Agent-level, round-based protocol."""

    #: human-readable protocol name used in tables and result stores.
    name: str = "synchronous-protocol"

    @abstractmethod
    def round_update(self, state: NodeArrayState, topology: Topology, rng: np.random.Generator) -> None:
        """Advance *state* by one synchronous round, in place.

        All nodes sample simultaneously from the *pre-round* state and
        then switch simultaneously, as the paper's synchronous model
        requires; implementations must therefore read from a snapshot
        (or be written so reads complete before any write).
        """

    def make_state(self, colors: np.ndarray, k: int) -> NodeArrayState:
        """Build the state object this protocol operates on."""
        return NodeArrayState(colors=np.asarray(colors, dtype=np.int64), k=k)

    def is_absorbed(self, state: NodeArrayState) -> bool:
        """True when no future round can change the state."""
        return state.is_consensus()


class CountsProtocol(ABC):
    """Exact counts-level protocol on the complete graph.

    The internal *counts state* is protocol-specific (e.g. OneExtraBit
    tracks counts for every ``(colour, bit)`` pair plus its position in
    the phase schedule); :meth:`color_counts` projects it back to the
    plain colour histogram used for reporting.
    """

    name: str = "counts-protocol"

    @abstractmethod
    def init_counts(self, config: ColorConfiguration) -> Any:
        """Build the internal counts state for an initial configuration."""

    @abstractmethod
    def step(self, counts_state: Any, rng: np.random.Generator) -> Any:
        """Advance by one synchronous round; returns the new state.

        Implementations draw the next state from the exact distribution
        of the agent-based round transition on ``K_n``.
        """

    @abstractmethod
    def color_counts(self, counts_state: Any) -> np.ndarray:
        """Project the internal state to a colour-counts vector."""

    def is_absorbed(self, counts_state: Any) -> bool:
        """True when the projected configuration is a fixed point."""
        counts = self.color_counts(counts_state)
        return int(counts.max()) == int(counts.sum())


class SequentialProtocol(ABC):
    """Tick-based protocol: one node acts per tick.

    Subclasses implement :meth:`tick_targets` / :meth:`tick_apply`; the
    default :meth:`seq_tick` composes them with an instantaneous
    observation, which is the paper's base model ("once a node contacts
    another node, it receives that node's response without any delay").
    """

    name: str = "sequential-protocol"

    def make_state(self, colors: np.ndarray, k: int) -> NodeArrayState:
        """Build the state object this protocol operates on."""
        return NodeArrayState(colors=np.asarray(colors, dtype=np.int64), k=k)

    @abstractmethod
    def tick_targets(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        """Nodes the ticking node wants to observe (may be empty)."""

    @abstractmethod
    def tick_apply(self, state: NodeArrayState, node: int, observed_colors: np.ndarray) -> None:
        """Update *node* given the observed colours of its targets."""

    def seq_tick(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> None:
        """One tick with instantaneous responses (sequential model)."""
        targets = self.tick_targets(state, node, topology, rng)
        observed = state.colors[targets] if len(targets) else np.empty(0, dtype=np.int64)
        self.tick_apply(state, node, observed)

    def is_absorbed(self, state: NodeArrayState) -> bool:
        """True when no future tick can change the state."""
        return state.is_consensus()

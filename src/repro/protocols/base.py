"""Protocol interfaces.

The paper's processes are driven by three different machines, so a
protocol may implement up to three complementary interfaces:

:class:`SynchronousProtocol`
    Round-based, agent-level: ``round_update`` rewrites the whole state
    vector once per synchronous round (Theorems 1.1 and 1.2 substrate).
:class:`CountsProtocol`
    Round-based on ``K_n`` at the level of colour *counts*.  On the
    complete graph with uniform sampling the round transition of every
    protocol here depends only on the counts vector, so a round can be
    drawn *exactly* from a handful of multinomials — this is what lets
    the benchmarks sweep ``n`` up to ``10^9``.
:class:`SequentialProtocol`
    Tick-based: one uniformly random node acts per tick (the paper's
    sequential model, equivalent in run time to the Poisson-clock model
    it cites Mosk-Aoyama & Shah for).  The interface splits a tick into
    *target selection* and *apply*, which lets the continuous-time
    engine inject response delays (the Discussion-section extension)
    without protocols knowing about it.
:class:`SequentialCountsProtocol`
    Tick-based on ``K_n`` at the level of colour *counts*: the exact
    conditional law of a single tick given the histogram, expressed as
    a row-stochastic transition matrix.  This is the asynchronous
    counterpart of :class:`CountsProtocol` and what powers the batched
    tick engines in :mod:`repro.engine.counts_async` (paper-scale
    asynchronous sweeps at ``n`` up to ``10^8`` and beyond).
:class:`EnsembleCountsProtocol`
    Round-based on ``K_n`` for *R replications at once*: the state is
    an ``(R, m)`` matrix of histograms and one step advances every row
    by one synchronous round through shared vectorised multinomial
    draws.  Each row's marginal law is identical to :meth:`step` of the
    matching :class:`CountsProtocol`; this is what powers the ensemble
    engines in :mod:`repro.engine.ensemble` (trial replication at the
    cost of one run).  :class:`SequentialCountsProtocol` carries the
    tick-side ensemble hooks (:meth:`tick_transition_matrices` and
    friends) directly, with generic defaults.

Protocols are stateless policy objects; all mutable simulation state
lives in :class:`~repro.core.state.NodeArrayState` (or a subclass), so
one protocol instance can drive many concurrent runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.exceptions import ProtocolError
from ..core.hazard import apply_hazard_free
from ..core.state import NodeArrayState
from ..graphs.topology import Topology

__all__ = [
    "SynchronousProtocol",
    "CountsProtocol",
    "SequentialProtocol",
    "SequentialCountsProtocol",
    "EnsembleCountsProtocol",
    "TickFootprint",
    "self_excluded_sample_probabilities",
    "self_excluded_sample_probabilities_ensemble",
]


@dataclass(frozen=True)
class TickFootprint:
    """Declared read/write footprint of one sequential tick.

    Declaring a footprint on a :class:`SequentialProtocol` asserts the
    contract the hazard-batched fast paths rely on (see
    :mod:`repro.core.hazard` and :mod:`repro.engine.sparse_async`):

    * :meth:`~SequentialProtocol.tick_targets` draws exactly *samples*
      i.i.d. uniform neighbours of the acting node — the identities are
      state-independent, so they may be presampled for a whole block
      through one vectorised topology call;
    * the tick *writes* nothing but the acting node
      (``writes_self_only``; protocols that push state into their
      targets must leave it False, which keeps them on the per-tick
      loop);
    * the tick may *read* the acting node's own colour plus the
      observed target colours, and nothing else (``reads_own`` is
      informational — the hazard check always counts the acting node as
      read, so a False value never weakens it).

    Protocols whose sampling is state-dependent (phase schedules,
    lossy observation channels, ...) leave the footprint ``None`` and
    keep the loop semantics of :meth:`~SequentialProtocol.seq_tick`.
    """

    samples: int
    writes_self_only: bool = True
    reads_own: bool = True


class SynchronousProtocol(ABC):
    """Agent-level, round-based protocol."""

    #: human-readable protocol name used in tables and result stores.
    name: str = "synchronous-protocol"

    @abstractmethod
    def round_update(self, state: NodeArrayState, topology: Topology, rng: np.random.Generator) -> None:
        """Advance *state* by one synchronous round, in place.

        All nodes sample simultaneously from the *pre-round* state and
        then switch simultaneously, as the paper's synchronous model
        requires; implementations must therefore read from a snapshot
        (or be written so reads complete before any write).
        """

    def make_state(self, colors: np.ndarray, k: int) -> NodeArrayState:
        """Build the state object this protocol operates on."""
        return NodeArrayState(colors=np.asarray(colors, dtype=np.int64), k=k)

    def is_absorbed(self, state: NodeArrayState) -> bool:
        """True when no future round can change the state."""
        return state.is_consensus()


class CountsProtocol(ABC):
    """Exact counts-level protocol on the complete graph.

    The internal *counts state* is protocol-specific (e.g. OneExtraBit
    tracks counts for every ``(colour, bit)`` pair plus its position in
    the phase schedule); :meth:`color_counts` projects it back to the
    plain colour histogram used for reporting.
    """

    name: str = "counts-protocol"

    @abstractmethod
    def init_counts(self, config: ColorConfiguration) -> Any:
        """Build the internal counts state for an initial configuration."""

    @abstractmethod
    def step(self, counts_state: Any, rng: np.random.Generator) -> Any:
        """Advance by one synchronous round; returns the new state.

        Implementations draw the next state from the exact distribution
        of the agent-based round transition on ``K_n``.
        """

    @abstractmethod
    def color_counts(self, counts_state: Any) -> np.ndarray:
        """Project the internal state to a colour-counts vector."""

    def is_absorbed(self, counts_state: Any) -> bool:
        """True when the projected configuration is a fixed point."""
        counts = self.color_counts(counts_state)
        return int(counts.max()) == int(counts.sum())


class _EnsembleStateHooks:
    """Shared state hooks of the ensemble interfaces.

    Both ensemble families — round-based
    (:class:`EnsembleCountsProtocol`) and tick-based
    (:class:`SequentialCountsProtocol`) — carry their R replications as
    an ``(R, m)`` histogram matrix; these defaults cover initialising,
    projecting and absorption-testing that matrix for every protocol
    whose internal counts state is the plain label histogram.
    """

    def init_ensemble(self, config: ColorConfiguration, n_reps: int) -> np.ndarray:
        """``(n_reps, m)`` stacked initial histograms (all rows equal)."""
        row = np.asarray(self.init_counts(config), dtype=np.int64)  # type: ignore[attr-defined]
        return np.repeat(row[None, :], n_reps, axis=0)

    def color_counts_ensemble(self, states: np.ndarray) -> np.ndarray:
        """Project the ``(R, m)`` internal states to reported counts."""
        return states

    def is_absorbed_ensemble(self, states: np.ndarray) -> np.ndarray:
        """Row-wise fixed-point test (``bool[R]``)."""
        return states.max(axis=1) == states.sum(axis=1)


class EnsembleCountsProtocol(_EnsembleStateHooks, ABC):
    """Round-based ensemble hook: R histogram chains per numpy batch.

    Mixed into a :class:`CountsProtocol` whose internal counts state is
    the plain label histogram, this interface advances an ``(R, m)``
    matrix of *independent* replications by one synchronous round per
    :meth:`step_ensemble` call.  The contract binding it to the
    single-run protocol is exactness per row:

    * every row of the result is drawn from the same law as
      :meth:`CountsProtocol.step` applied to that row, and
    * with ``R == 1`` the implementation must consume the generator
      *identically* to :meth:`CountsProtocol.step` (same RNG calls in
      the same order, with zero-size colour classes skipped the same
      way), so an ensemble of one replays a single run value-for-value
      from a shared seed.

    Vectorised ``numpy`` multinomial/binomial calls with stacked
    ``n``/``pvals`` arguments satisfy both clauses: the generator draws
    row by row, so each row is an independent exact draw and the
    one-row call is bit-identical to the scalar call.
    """

    @abstractmethod
    def step_ensemble(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance every row of *states* by one synchronous round."""


class SequentialProtocol(ABC):
    """Tick-based protocol: one node acts per tick.

    Subclasses implement :meth:`tick_targets` / :meth:`tick_apply`; the
    default :meth:`seq_tick` composes them with an instantaneous
    observation, which is the paper's base model ("once a node contacts
    another node, it receives that node's response without any delay").
    """

    name: str = "sequential-protocol"

    #: declared per-tick read/write footprint, or ``None`` when the
    #: tick's sampling or write pattern cannot be summarised (the batch
    #: fast paths then fall back to :meth:`seq_tick_batch_loop`).
    tick_footprint: Optional[TickFootprint] = None

    #: name of a compiled tick rule in :mod:`repro.core.hazard_kernel`
    #: (``RULE_IDS``), or ``None`` when no compiled form exists.  Naming
    #: a rule asserts that the rule is *semantically identical* to
    #: :meth:`tick_apply` — the compiled kernels run it one tick at a
    #: time, so a correct declaration is bit-identical to the Python
    #: loop by construction.  Only consulted when ``REPRO_KERNEL``
    #: activates a compiled kernel; the footprint's sample count is
    #: cross-checked before the kernel engages.
    tick_kernel: Optional[str] = None

    def make_state(self, colors: np.ndarray, k: int) -> NodeArrayState:
        """Build the state object this protocol operates on."""
        return NodeArrayState(colors=np.asarray(colors, dtype=np.int64), k=k)

    @abstractmethod
    def tick_targets(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        """Nodes the ticking node wants to observe (may be empty)."""

    @abstractmethod
    def tick_apply(self, state: NodeArrayState, node: int, observed_colors: np.ndarray) -> None:
        """Update *node* given the observed colours of its targets."""

    def seq_tick(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> None:
        """One tick with instantaneous responses (sequential model)."""
        targets = self.tick_targets(state, node, topology, rng)
        observed = state.colors[targets] if len(targets) else np.empty(0, dtype=np.int64)
        self.tick_apply(state, node, observed)

    def tick_values(
        self, state: NodeArrayState, own: np.ndarray, observed: np.ndarray
    ) -> Optional[np.ndarray]:
        """Vectorised value rule: the post-tick colour of every actor.

        *own* is ``int64[B]`` (the acting nodes' current colours),
        *observed* the ``(B, samples)`` matrix of their targets'
        colours; the result row ``t`` must equal the colour tick ``t``
        would leave its actor with — including "keeps its colour",
        expressed as ``own[t]`` — when :meth:`tick_apply` runs on the
        same observations.  The rule must be **pure**: no state
        mutation, no RNG (randomised updates cannot use this hook).
        The hazard-batched paths use it to evaluate whole blocks
        optimistically and to detect actual writes (``values != own``);
        returning ``None`` (the default) routes them through the
        conservative :meth:`tick_apply_batch` instead.
        """
        return None

    def tick_apply_batch(self, state: NodeArrayState, nodes: np.ndarray, observed: np.ndarray) -> None:
        """Apply one tick per row of *nodes* / *observed* at once.

        Only called on *hazard-free* blocks (no row reads or writes a
        node another row actually writes — see
        :mod:`repro.core.hazard`), so all reads may come from the
        current state and all writes may be scattered in one pass; the
        result must be bit-identical to looping :meth:`tick_apply` row
        by row.  *observed* is the ``(B, samples)`` matrix of the
        targets' colours at apply time.  The default applies the
        :meth:`tick_values` rule when the protocol has one and loops
        over :meth:`tick_apply` otherwise.
        """
        own = state.colors[nodes]
        values = self.tick_values(state, own, observed)
        if values is None:
            for i in range(nodes.shape[0]):
                self.tick_apply(state, int(nodes[i]), observed[i])
            return
        # Fault-masked states (repro.protocols.faults) carry a boolean
        # ``frozen`` mask of nodes that never update; suppressing their
        # writes here keeps the scatter bit-identical to the tick_apply
        # loop, which checks the same mask.
        frozen = getattr(state, "frozen", None)
        if frozen is not None:
            values = np.where(frozen[nodes], own, values)
        changed = values != own
        state.colors[nodes[changed]] = values[changed]

    def seq_tick_batch(self, state: NodeArrayState, nodes: np.ndarray, topology: Topology, rng: np.random.Generator) -> None:
        """Apply one instantaneous tick per entry of *nodes*, in order.

        Equal in law to calling :meth:`seq_tick` once per node: target
        *identities* are state-independent, so every tick's targets are
        presampled through one vectorised topology call and the block
        is applied as hazard-free chunks — bit-identical to the
        sequential loop on the same draws, because each tick's colour
        reads still see all earlier ticks' writes (see
        :mod:`repro.core.hazard`).  Protocols without a declared
        :class:`TickFootprint` fall back to
        :meth:`seq_tick_batch_loop`, one Python tick per node.
        """
        footprint = self.tick_footprint
        if footprint is None or not footprint.writes_self_only:
            self.seq_tick_batch_loop(state, nodes, topology, rng)
            return
        nodes = np.asarray(nodes, dtype=np.int64)
        targets = topology.sample_neighbors_block(nodes, footprint.samples, rng)
        apply_hazard_free(self, state, nodes, targets)

    def seq_tick_batch_loop(self, state: NodeArrayState, nodes: np.ndarray, topology: Topology, rng: np.random.Generator) -> None:
        """One Python :meth:`seq_tick` per node — the reference loop.

        The historical (seed) implementation of :meth:`seq_tick_batch`;
        kept as the fallback for footprint-less protocols, as the
        correctness oracle the batch-path tests pin against, and as the
        baseline the speedup benchmarks measure from.  Note the RNG
        *stream* differs from the batch path (per-tick draws here, one
        block draw there), so the two paths agree in law, not values.
        """
        for node in nodes:
            self.seq_tick(state, int(node), topology, rng)

    def as_sequential_counts(self) -> Optional["SequentialCountsProtocol"]:
        """Counts-level realisation of this tick rule on ``K_n``.

        Returns ``None`` when no exact counts-level form is known (the
        default); protocols whose tick law depends on the colour
        histogram only override this so
        :func:`repro.engine.dispatch.fastest_engine` can route runs on
        the complete graph through the batched counts engines.
        """
        return None

    def is_absorbed(self, state: NodeArrayState) -> bool:
        """True when no future tick can change the state."""
        return state.is_consensus()


class SequentialCountsProtocol(_EnsembleStateHooks, ABC):
    """Exact counts-level form of a sequential tick rule on ``K_n``.

    A tick of the sequential model picks a uniformly random acting node
    and lets it update from sampled neighbour colours.  On the complete
    graph with uniform sampling the conditional law of the tick given
    the colour histogram ``c`` factors as

    1. the acting node has label ``i`` with probability ``c_i / n``;
    2. given ``i``, the node ends the tick with label ``j`` with
       probability ``P[i, j]`` — a function of ``c`` alone.

    Implementations supply the row-stochastic matrix ``P`` via
    :meth:`tick_transition_matrix`; the engines in
    :mod:`repro.engine.counts_async` compose it into exact single-tick
    chains (batch size 1) or frozen-rate batched multinomial updates
    (the fast path — see the module docstring for the exactness
    argument and the error budget of batching).

    The label space may be wider than the colour space (Undecided-State
    appends an "undecided" bucket); :meth:`color_counts` projects the
    internal histogram to whatever the stop conditions should see.
    """

    name: str = "sequential-counts-protocol"

    @abstractmethod
    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        """Label histogram (``int64[m]``) for an initial configuration."""

    @abstractmethod
    def tick_transition_matrix(self, counts: np.ndarray) -> np.ndarray:
        """Row-stochastic ``float[m, m]``: ``P[i, j]`` is the probability
        that an acting node with label ``i`` ends the tick with label
        ``j``, given the current histogram *counts*.

        Rows of *empty* label classes are never drawn from and their
        content is ignored — the engines overwrite them with identity
        rows before sampling, so implementations need not special-case
        them.
        """

    def color_counts(self, counts: np.ndarray) -> np.ndarray:
        """Project the internal histogram to the reported counts."""
        return counts

    def is_absorbed(self, counts: np.ndarray) -> bool:
        """True when the histogram is a fixed point of the tick chain."""
        return int(counts.max()) == int(counts.sum())

    # ------------------------------------------------------------------
    # ensemble hooks (R replications per numpy batch) — the state-side
    # defaults come from _EnsembleStateHooks
    # ------------------------------------------------------------------
    def tick_transition_matrices(self, states: np.ndarray) -> np.ndarray:
        """Stacked ``float[R, m, m]`` transition matrices, one per row
        of *states* — each slice must equal
        :meth:`tick_transition_matrix` of that row so the ensemble tick
        engines draw every replication from the exact single-run law.
        The default stacks per-row calls; protocols override it with a
        fully vectorised computation (bit-equal per row, which keeps
        one-replication ensembles value-for-value reproducible).
        """
        return np.stack(
            [np.asarray(self.tick_transition_matrix(row), dtype=float) for row in states]
        )


def self_excluded_sample_probabilities(counts: np.ndarray) -> np.ndarray:
    """``Q[i, j]``: probability a node of label ``i`` samples label ``j``.

    On ``K_n`` a node samples uniformly among its ``n - 1`` neighbours,
    i.e. everyone but itself, so a label-``i`` node sees label-``j``
    mass ``c_j - [i == j]``.  Rows of empty classes are clipped to
    valid (all-zero on the diagonal deficit) — callers overwrite them.
    """
    counts = np.asarray(counts, dtype=float)
    n = counts.sum()
    q = np.repeat(counts[None, :], counts.size, axis=0)
    np.fill_diagonal(q, counts - 1.0)
    q /= n - 1.0
    return np.clip(q, 0.0, None)


def self_excluded_sample_probabilities_ensemble(states: np.ndarray) -> np.ndarray:
    """Stacked ``Q[r, i, j]`` for an ``(R, m)`` matrix of histograms.

    Row-for-row bit-equal to
    :func:`self_excluded_sample_probabilities` (same operations in the
    same order), which is what lets the ensemble engines replay a
    single run exactly when ``R == 1``.
    """
    states = np.asarray(states, dtype=float)
    m = states.shape[1]
    n = states.sum(axis=1)
    q = np.repeat(states[:, None, :], m, axis=1)
    idx = np.arange(m)
    q[:, idx, idx] = states - 1.0
    q /= (n - 1.0)[:, None, None]
    return np.clip(q, 0.0, None)

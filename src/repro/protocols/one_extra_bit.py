"""The OneExtraBit protocol (Theorem 1.2, synchronous memory model).

Section 2 of the paper: to beat the ``Omega(k)`` lower bound of plain
Two-Choices, each node carries **one extra bit** and the process runs
in *phases*.  A phase consists of

1. one **Two-Choices round** — sample two uniform neighbours; if their
   colours coincide, adopt that colour; the bit is set to ``True`` iff
   the two samples coincided (i.e. the node (re-)adopted a colour this
   round).  This concentrates the number of bit-set nodes with colour
   ``C_j`` around ``c_j^2 / n``.
2. ``R = Theta(log k + log log n)`` **Bit-Propagation rounds** — every
   node whose bit is unset samples one uniform neighbour per round; if
   the sampled node's bit is set, the sampler adopts its colour and
   sets its own bit (so it starts answering queries too).

After Bit-Propagation the colour shares among bit-set nodes are close
to ``c_j^2 / x`` (``x`` = total bits after the Two-Choices round), so
the ratio ``c_1 / c_j`` squares once per phase — the quadratic
amplification that experiment T5 measures.  Nodes that never meet a
bit-set neighbour within the ``R`` rounds simply keep their colour (a
low-probability event that the analysis absorbs).

Bit semantics note: we set the bit at the Two-Choices round iff the two
samples *coincided*, not iff the colour literally changed.  This
matches the paper's stated concentration ``c_1^2 / n`` for bit-set
``C_1`` nodes (the probability both samples show ``C_1``), which counts
nodes that re-adopted their own colour.

Both an agent-based and an exact counts-based realisation are provided;
the counts state tracks ``(A_j, B_j)`` — bit-set / bit-unset nodes per
colour — and the position inside the phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.registry import ParamSpec, register_protocol
from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.state import NodeArrayState
from ..graphs.topology import Topology
from .base import CountsProtocol, SynchronousProtocol

__all__ = [
    "default_bp_rounds",
    "OneExtraBitState",
    "OneExtraBitSynchronous",
    "OneExtraBitCountsState",
    "OneExtraBitCounts",
]


def default_bp_rounds(n: int, k: int, extra: int = 2) -> int:
    """The paper's ``Theta(log k + log log n)`` Bit-Propagation length.

    ``log2 k`` rounds double the bit-set population from its ``~n/k``
    floor up to ``Theta(n)``; ``log2 log2 n`` more cover the saturation
    tail; *extra* constant rounds absorb small-``n`` effects.
    """
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    log_k = np.log2(max(k, 2))
    log_log_n = np.log2(max(np.log2(n), 2.0))
    return int(np.ceil(log_k) + np.ceil(log_log_n)) + int(extra)


@dataclass
class OneExtraBitState(NodeArrayState):
    """Agent state: colours + the extra bit + phase position."""

    bit: np.ndarray = None
    round_index: int = 0

    def __post_init__(self):
        super().__post_init__()
        if self.bit is None:
            self.bit = np.zeros(self.n, dtype=bool)
        if self.bit.shape != (self.n,):
            raise ConfigurationError(f"bit must have shape ({self.n},)")


class OneExtraBitSynchronous(SynchronousProtocol):
    """Agent-based OneExtraBit.

    Parameters
    ----------
    bp_rounds:
        Bit-Propagation rounds per phase; ``None`` selects the paper's
        ``Theta(log k + log log n)`` default at state-creation time
        (needs ``n`` and ``k``, hence resolved lazily).
    """

    name = "one-extra-bit/sync"

    def __init__(self, bp_rounds: int = None):
        if bp_rounds is not None and bp_rounds < 1:
            raise ConfigurationError(f"bp_rounds must be >= 1, got {bp_rounds}")
        self._bp_rounds = bp_rounds

    def make_state(self, colors: np.ndarray, k: int) -> OneExtraBitState:
        return OneExtraBitState(colors=np.asarray(colors, dtype=np.int64), k=k)

    def bp_rounds_for(self, n: int, k: int) -> int:
        return self._bp_rounds if self._bp_rounds is not None else default_bp_rounds(n, k)

    def round_update(self, state: OneExtraBitState, topology: Topology, rng: np.random.Generator) -> None:
        phase_length = 1 + self.bp_rounds_for(state.n, state.k)
        position = state.round_index % phase_length
        if position == 0:
            self._two_choices_round(state, topology, rng)
        else:
            self._bit_propagation_round(state, topology, rng)
        state.round_index += 1

    def _two_choices_round(self, state: OneExtraBitState, topology: Topology, rng: np.random.Generator) -> None:
        nodes = np.arange(state.n, dtype=np.int64)
        pairs = topology.sample_neighbor_pairs(nodes, rng)
        first = state.colors[pairs[:, 0]]
        second = state.colors[pairs[:, 1]]
        agree = first == second
        state.colors = np.where(agree, first, state.colors)
        state.bit = agree.copy()

    def _bit_propagation_round(self, state: OneExtraBitState, topology: Topology, rng: np.random.Generator) -> None:
        seekers = np.flatnonzero(~state.bit)
        if seekers.size == 0:
            return
        targets = topology.sample_neighbors_many(seekers, rng)
        # Reads come from the pre-round snapshot: simultaneous updates.
        target_bit = state.bit[targets]
        target_color = state.colors[targets]
        hits = np.flatnonzero(target_bit)
        winners = seekers[hits]
        state.colors[winners] = target_color[hits]
        state.bit[winners] = True


@dataclass
class OneExtraBitCountsState:
    """Counts state: bit-set / bit-unset histograms + phase position."""

    bit_set: np.ndarray
    bit_unset: np.ndarray
    round_index: int = 0

    @property
    def total(self) -> np.ndarray:
        return self.bit_set + self.bit_unset


class OneExtraBitCounts(CountsProtocol):
    """Exact counts-level OneExtraBit on ``K_n``."""

    name = "one-extra-bit/counts"

    def __init__(self, bp_rounds: int = None):
        if bp_rounds is not None and bp_rounds < 1:
            raise ConfigurationError(f"bp_rounds must be >= 1, got {bp_rounds}")
        self._bp_rounds = bp_rounds

    def bp_rounds_for(self, n: int, k: int) -> int:
        return self._bp_rounds if self._bp_rounds is not None else default_bp_rounds(n, k)

    def init_counts(self, config: ColorConfiguration) -> OneExtraBitCountsState:
        counts = np.asarray(config.counts, dtype=np.int64)
        return OneExtraBitCountsState(
            bit_set=np.zeros_like(counts),
            bit_unset=counts.copy(),
            round_index=0,
        )

    def step(self, counts_state: OneExtraBitCountsState, rng: np.random.Generator) -> OneExtraBitCountsState:
        totals = counts_state.total
        n = int(totals.sum())
        k = totals.size
        phase_length = 1 + self.bp_rounds_for(n, k)
        position = counts_state.round_index % phase_length
        if position == 0:
            new_state = self._two_choices_step(counts_state, rng)
        else:
            new_state = self._bit_propagation_step(counts_state, rng)
        new_state.round_index = counts_state.round_index + 1
        return new_state

    def _two_choices_step(self, counts_state: OneExtraBitCountsState, rng: np.random.Generator) -> OneExtraBitCountsState:
        totals = counts_state.total
        n = int(totals.sum())
        k = totals.size
        new_set = np.zeros(k, dtype=np.int64)
        new_unset = np.zeros(k, dtype=np.int64)
        base = totals.astype(float)
        for i in range(k):
            group = int(totals[i])
            if group == 0:
                continue
            probs_one = base.copy()
            probs_one[i] -= 1.0  # self-exclusion
            probs_one /= n - 1
            adopt = probs_one * probs_one
            keep = max(0.0, 1.0 - float(adopt.sum()))
            pvals = np.concatenate([adopt, [keep]])
            pvals /= pvals.sum()
            draws = rng.multinomial(group, pvals)
            new_set += draws[:k]
            new_unset[i] += draws[k]
        return OneExtraBitCountsState(bit_set=new_set, bit_unset=new_unset)

    def _bit_propagation_step(self, counts_state: OneExtraBitCountsState, rng: np.random.Generator) -> OneExtraBitCountsState:
        bit_set = counts_state.bit_set.astype(np.int64).copy()
        bit_unset = counts_state.bit_unset.astype(np.int64).copy()
        totals = counts_state.total
        n = int(totals.sum())
        k = totals.size
        # A seeker samples one of its n-1 neighbours; the seeker itself
        # is bit-unset, so the bit-set mass among neighbours is exactly
        # `bit_set` (pre-round snapshot for simultaneity).
        snapshot_set = counts_state.bit_set.astype(float)
        hit_probs = snapshot_set / (n - 1)
        stay = max(0.0, 1.0 - float(hit_probs.sum()))
        pvals = np.concatenate([hit_probs, [stay]])
        pvals /= pvals.sum()
        new_set = bit_set
        new_unset = np.zeros(k, dtype=np.int64)
        for i in range(k):
            group = int(bit_unset[i])
            if group == 0:
                continue
            draws = rng.multinomial(group, pvals)
            new_set += draws[:k]
            new_unset[i] += draws[k]
        return OneExtraBitCountsState(bit_set=new_set, bit_unset=new_unset)

    def color_counts(self, counts_state: OneExtraBitCountsState) -> np.ndarray:
        return counts_state.total


register_protocol(
    "one-extra-bit",
    description="Two-Choices phases + Bit-Propagation on one memory bit (Theorem 1.2)",
    counts=OneExtraBitCounts,
    synchronous=OneExtraBitSynchronous,
    params=[
        ParamSpec(
            "bp_rounds",
            kind="int",
            doc="Bit-Propagation rounds per phase (default: the Theta(log k + log log n) schedule)",
        ),
    ],
)

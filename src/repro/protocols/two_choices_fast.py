"""Exact event-skipping simulation of *sequential* Two-Choices on ``K_n``.

The sequential model spends most ticks doing nothing: a tick changes
the state only when the acting node's two samples agree on a colour
different from its own.  On the complete graph the probability of that
event — and the distribution of *which* change happens — depends on the
colour counts alone, so the simulator can jump straight from change to
change:

1. with counts ``c``, a tick is a change ``i -> j`` with probability
   ``W_ij = (c_i / n) * (c_j / (n - 1))^2`` for ``j != i`` (the actor is
   colour ``i``; both its samples, drawn from the other ``n - 1``
   nodes, are colour ``j``);
2. the number of ticks until the next change is geometric with success
   probability ``p = sum_ij W_ij``;
3. the change itself is drawn proportionally to ``W``.

Each iteration costs ``O(k^2)`` and the number of changes to consensus
is ``O(n)``-ish, independent of how many idle ticks the plain
simulation would grind through — asynchronous Two-Choices at
``n = 10^6`` takes seconds.  The law of (state trajectory, tick count)
is *identical* to the plain sequential engine's; the tests check the
agreement distributionally.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.results import RunResult, Trace
from ..core.rng import SeedLike, as_generator
from ..engine.base import StopCondition, build_result, consensus_reached

__all__ = ["two_choices_sequential_fast"]


def two_choices_sequential_fast(
    initial: ColorConfiguration,
    seed: SeedLike = None,
    max_parallel_time: Optional[float] = None,
    stop: StopCondition = consensus_reached,
    record_trace: bool = False,
    trace_every_parallel: float = 1.0,
) -> RunResult:
    """Run sequential Two-Choices to consensus by event skipping.

    Parameters mirror :class:`~repro.engine.sequential.SequentialEngine`;
    ``rounds`` in the result is the *tick* count (including the skipped
    idle ticks) and ``parallel_time = ticks / n``.
    """
    if not isinstance(initial, ColorConfiguration):
        raise ConfigurationError("two_choices_sequential_fast requires a ColorConfiguration")
    rng = as_generator(seed)
    counts = np.asarray(initial.counts, dtype=np.int64).copy()
    n = int(counts.sum())
    k = counts.size
    if max_parallel_time is None:
        max_parallel_time = 50.0 * max(np.log(n), 1.0) * (n / max(int(counts.max()), 1))
    max_ticks = int(max_parallel_time * n)

    trace = Trace() if record_trace else None
    if trace is not None:
        trace.record(0.0, counts)
    trace_stride = max(1, int(trace_every_parallel * n))
    next_trace = trace_stride

    initial_counts = counts.copy()
    ticks = 0
    converged = stop(counts)
    while not converged and ticks < max_ticks:
        c = counts.astype(float)
        # W[i, j] = (c_i / n) * (c_j / (n-1))^2, diagonal removed.
        weights = np.outer(c / n, (c / (n - 1)) ** 2)
        np.fill_diagonal(weights, 0.0)
        p_change = float(weights.sum())
        if p_change <= 0.0:
            break  # absorbing (consensus)
        # Geometric number of ticks up to and including the change.
        wait = int(rng.geometric(min(p_change, 1.0)))
        if ticks + wait > max_ticks:
            ticks = max_ticks
            break
        ticks += wait
        flat = weights.ravel() / p_change
        index = int(rng.choice(flat.size, p=flat))
        source, target = divmod(index, k)
        counts[source] -= 1
        counts[target] += 1
        if trace is not None and ticks >= next_trace:
            trace.record(ticks / n, counts)
            next_trace += trace_stride
        converged = stop(counts)
    if trace is not None:
        trace.record(ticks / n, counts)

    return build_result(
        converged=converged,
        initial_counts=initial_counts,
        final_counts=counts,
        rounds=ticks,
        parallel_time=ticks / n,
        trace=trace,
        metadata={"engine": "sequential-fast", "protocol": "two-choices/seq-fast"},
    )

"""The Two-Choices plurality-consensus protocol.

Cooper, Elsässer & Radzik's process (the paper's reference [2]) and the
object of Theorem 1.1: a node samples two neighbours uniformly at
random, with replacement, and adopts their colour if and only if the
two sampled colours coincide.

Three interchangeable realisations are provided:

* :class:`TwoChoicesSynchronous` — agent-based synchronous rounds on
  any topology (every node acts simultaneously from the pre-round
  state).
* :class:`TwoChoicesCounts` — the exact counts-level transition on
  ``K_n``: a node of colour ``i`` adopts colour ``j`` with probability
  ``((c_j - [i == j]) / (n - 1))^2`` and keeps its colour otherwise, so
  a round is a sum of per-colour-class multinomials.
* :class:`TwoChoicesSequential` — the tick-based rule used by the
  sequential and continuous asynchronous engines (and by the endgame of
  the paper's main protocol).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.state import NodeArrayState
from ..graphs.topology import Topology
from .base import CountsProtocol, SequentialProtocol, SynchronousProtocol

__all__ = ["TwoChoicesSynchronous", "TwoChoicesCounts", "TwoChoicesSequential"]


class TwoChoicesSynchronous(SynchronousProtocol):
    """Agent-based synchronous Two-Choices."""

    name = "two-choices/sync"

    def round_update(self, state: NodeArrayState, topology: Topology, rng: np.random.Generator) -> None:
        nodes = np.arange(state.n, dtype=np.int64)
        pairs = topology.sample_neighbor_pairs(nodes, rng)
        first = state.colors[pairs[:, 0]]
        second = state.colors[pairs[:, 1]]
        agree = first == second
        # All reads come from the pre-round snapshot (`first`/`second`
        # were gathered before any write), so the simultaneous-update
        # semantics of the synchronous model hold.
        state.colors = np.where(agree, first, state.colors)


class TwoChoicesCounts(CountsProtocol):
    """Exact counts-level Two-Choices on ``K_n``.

    The counts state is the plain ``int64[k]`` histogram.
    """

    name = "two-choices/counts"

    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        return np.asarray(config.counts, dtype=np.int64)

    def step(self, counts_state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = counts_state
        n = int(counts.sum())
        k = counts.size
        new_counts = np.zeros(k, dtype=np.int64)
        base = counts.astype(float)
        for i in range(k):
            group = int(counts[i])
            if group == 0:
                continue
            # Sampling excludes the caller itself: a colour-i node sees
            # colour-j mass (c_j - [i == j]) among its n-1 neighbours.
            probs_one = base.copy()
            probs_one[i] -= 1.0
            probs_one /= n - 1
            adopt = probs_one * probs_one
            keep = max(0.0, 1.0 - float(adopt.sum()))
            pvals = np.concatenate([adopt, [keep]])
            pvals /= pvals.sum()
            draws = rng.multinomial(group, pvals)
            new_counts += draws[:k]
            new_counts[i] += draws[k]
        return new_counts

    def color_counts(self, counts_state: np.ndarray) -> np.ndarray:
        return counts_state


class TwoChoicesSequential(SequentialProtocol):
    """Tick-based Two-Choices for the asynchronous engines."""

    name = "two-choices/seq"

    def tick_targets(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        return topology.sample_neighbors(node, 2, rng)

    def tick_apply(self, state: NodeArrayState, node: int, observed_colors: np.ndarray) -> None:
        if len(observed_colors) == 2 and observed_colors[0] == observed_colors[1]:
            state.colors[node] = observed_colors[0]

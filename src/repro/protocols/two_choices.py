"""The Two-Choices plurality-consensus protocol.

Cooper, Elsässer & Radzik's process (the paper's reference [2]) and the
object of Theorem 1.1: a node samples two neighbours uniformly at
random, with replacement, and adopts their colour if and only if the
two sampled colours coincide.

Three interchangeable realisations are provided:

* :class:`TwoChoicesSynchronous` — agent-based synchronous rounds on
  any topology (every node acts simultaneously from the pre-round
  state).
* :class:`TwoChoicesCounts` — the exact counts-level transition on
  ``K_n``: a node of colour ``i`` adopts colour ``j`` with probability
  ``((c_j - [i == j]) / (n - 1))^2`` and keeps its colour otherwise, so
  a round is a sum of per-colour-class multinomials.
* :class:`TwoChoicesSequential` — the tick-based rule used by the
  sequential and continuous asynchronous engines (and by the endgame of
  the paper's main protocol).
* :class:`TwoChoicesSequentialCounts` — the exact counts-level *tick*
  law on ``K_n`` for the batched asynchronous engines
  (:mod:`repro.engine.counts_async`): an acting node of colour ``i``
  switches to ``j != i`` with probability ``((c_j - [i == j]) / (n - 1))^2``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..api.registry import register_protocol
from ..core.colors import ColorConfiguration
from ..core.state import NodeArrayState
from ..graphs.topology import Topology
from .base import (
    CountsProtocol,
    EnsembleCountsProtocol,
    SequentialCountsProtocol,
    SequentialProtocol,
    SynchronousProtocol,
    TickFootprint,
    self_excluded_sample_probabilities,
    self_excluded_sample_probabilities_ensemble,
)

__all__ = [
    "TwoChoicesSynchronous",
    "TwoChoicesCounts",
    "TwoChoicesSequential",
    "TwoChoicesSequentialCounts",
]


class TwoChoicesSynchronous(SynchronousProtocol):
    """Agent-based synchronous Two-Choices."""

    name = "two-choices/sync"

    def round_update(self, state: NodeArrayState, topology: Topology, rng: np.random.Generator) -> None:
        nodes = np.arange(state.n, dtype=np.int64)
        pairs = topology.sample_neighbor_pairs(nodes, rng)
        first = state.colors[pairs[:, 0]]
        second = state.colors[pairs[:, 1]]
        agree = first == second
        # All reads come from the pre-round snapshot (`first`/`second`
        # were gathered before any write), so the simultaneous-update
        # semantics of the synchronous model hold.
        state.colors = np.where(agree, first, state.colors)


class TwoChoicesCounts(CountsProtocol, EnsembleCountsProtocol):
    """Exact counts-level Two-Choices on ``K_n``.

    The counts state is the plain ``int64[k]`` histogram.
    """

    name = "two-choices/counts"

    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        return np.asarray(config.counts, dtype=np.int64)

    def step(self, counts_state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = counts_state
        n = int(counts.sum())
        k = counts.size
        new_counts = np.zeros(k, dtype=np.int64)
        base = counts.astype(float)
        # One (k+1)-slot pvals buffer reused across all colour classes:
        # slots 0..k-1 hold the adopt probabilities, slot k the keep
        # mass.  No per-class copies or concatenations.
        pvals = np.empty(k + 1)
        adopt = pvals[:k]
        for i in range(k):
            group = int(counts[i])
            if group == 0:
                continue
            # Sampling excludes the caller itself: a colour-i node sees
            # colour-j mass (c_j - [i == j]) among its n-1 neighbours.
            np.copyto(adopt, base)
            adopt[i] -= 1.0
            adopt /= n - 1
            np.multiply(adopt, adopt, out=adopt)
            keep = 1.0 - float(adopt.sum())
            if keep >= 0.0:
                pvals[k] = keep
            else:
                # Float error pushed the adopt mass past one; clip and
                # renormalise (only then is the division needed).
                pvals[k] = 0.0
                pvals /= pvals.sum()
            draws = rng.multinomial(group, pvals)
            new_counts += draws[:k]
            new_counts[i] += draws[k]
        return new_counts

    def step_ensemble(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance R replications one round (one multinomial per class).

        Mirrors :meth:`step` operation-for-operation per row — same
        adopt/keep probabilities, same clip-and-renormalise branch, one
        *stacked* multinomial per colour class over the rows where the
        class is non-empty — so each row's law is exact and a one-row
        ensemble consumes the generator identically to :meth:`step`.
        """
        states = np.asarray(states, dtype=np.int64)
        reps, k = states.shape
        n = int(states[0].sum())
        new_counts = np.zeros_like(states)
        base = states.astype(float)
        pvals = np.empty((reps, k + 1))
        adopt = pvals[:, :k]
        for i in range(k):
            groups = states[:, i]
            acting = np.flatnonzero(groups > 0)
            if acting.size == 0:
                continue
            np.copyto(adopt, base)
            adopt[:, i] -= 1.0
            adopt /= n - 1
            np.multiply(adopt, adopt, out=adopt)
            pvals[:, k] = 1.0 - adopt.sum(axis=1)
            clipped = pvals[:, k] < 0.0
            if clipped.any():
                pvals[clipped, k] = 0.0
                pvals[clipped] /= pvals[clipped].sum(axis=1, keepdims=True)
            draws = rng.multinomial(groups[acting], pvals[acting])
            new_counts[acting] += draws[:, :k]
            new_counts[acting, i] += draws[:, k]
        return new_counts

    def color_counts(self, counts_state: np.ndarray) -> np.ndarray:
        return counts_state


class TwoChoicesSequential(SequentialProtocol):
    """Tick-based Two-Choices for the asynchronous engines."""

    name = "two-choices/seq"
    # Two state-independent uniform samples; writes only the acting
    # node; the decision never reads the actor's own colour.
    tick_footprint = TickFootprint(samples=2, reads_own=False)
    tick_kernel = "two-choices"

    def tick_targets(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        return topology.sample_neighbors(node, 2, rng)

    def tick_apply(self, state: NodeArrayState, node: int, observed_colors: np.ndarray) -> None:
        if len(observed_colors) == 2 and observed_colors[0] == observed_colors[1]:
            state.colors[node] = observed_colors[0]

    def tick_values(self, state: NodeArrayState, own: np.ndarray, observed: np.ndarray) -> np.ndarray:
        first = observed[:, 0]
        return np.where(first == observed[:, 1], first, own)

    def as_sequential_counts(self) -> "TwoChoicesSequentialCounts":
        return TwoChoicesSequentialCounts()


class TwoChoicesSequentialCounts(SequentialCountsProtocol):
    """Exact counts-level tick law of sequential Two-Choices on ``K_n``.

    ``P[i, j] = q_j^2`` for ``j != i`` where ``q`` is the self-excluded
    sample distribution of a colour-``i`` node; the diagonal carries the
    keep mass (own colour, or the two samples disagreed).
    """

    name = "two-choices/seq-counts"

    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        return np.asarray(config.counts, dtype=np.int64)

    def tick_transition_matrix(self, counts: np.ndarray) -> np.ndarray:
        q = self_excluded_sample_probabilities(counts)
        transition = q * q
        np.fill_diagonal(transition, 0.0)
        np.fill_diagonal(transition, np.clip(1.0 - transition.sum(axis=1), 0.0, 1.0))
        return transition

    def tick_transition_matrices(self, states: np.ndarray) -> np.ndarray:
        q = self_excluded_sample_probabilities_ensemble(states)
        transition = q * q
        idx = np.arange(transition.shape[-1])
        transition[:, idx, idx] = 0.0
        transition[:, idx, idx] = np.clip(1.0 - transition.sum(axis=-1), 0.0, 1.0)
        return transition


register_protocol(
    "two-choices",
    description="Sample two uniform neighbours; switch iff their colours agree (Theorem 1.1)",
    counts=TwoChoicesCounts,
    synchronous=TwoChoicesSynchronous,
    sequential=TwoChoicesSequential,
)

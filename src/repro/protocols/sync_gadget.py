"""The Sync Gadget (weak perpetual synchronisation).

The paper's novel gadget (Section 3.1, "Weak Perpetual
Synchronization"): at the end of every phase each node

1. during the *sampling sub-phase* (``log^3 log n`` ticks) samples one
   uniform neighbour per tick and collects that neighbour's **real
   time** (total ticks the neighbour ever performed);
2. *ages* every collected sample by one for each of its own subsequent
   ticks, so old samples remain comparable to fresh ones;
3. at the **jump step** — after tactical waiting at the end of the
   sub-phase — sets its **working time** to the *median* of the aged
   samples.

Because the median of the population's real times tracks the global
tick count, the jump pulls stragglers forward and speeders back, which
keeps all but ``o(n)`` nodes within ``Delta`` of one another — the weak
synchronicity the rest of the protocol relies on.

Implementation notes
--------------------
*Ageing without per-tick work.*  Collecting sample ``s`` when the
collector's own real time is ``r0`` and jumping when it is ``r1``
yields the aged value ``s + (r1 - r0)``.  We therefore store the offset
``s - r0`` and add ``r1`` at the jump — O(1) per sample, O(0) per tick.

*Backward-jump clamp.*  A speeder may be told to move its working time
backwards.  Un-clamped, it could re-execute the (non-idempotent)
Two-Choices or Bit-Propagation steps of the phase it just finished; we
therefore clamp the jump target from below to the start of the current
sync sub-phase, so at worst the node repeats sampling and tactical
waiting ("proper waiting time" in the paper's words).

*Stale-buffer guard.*  A node that jumps over a phase boundary could
carry samples from an earlier phase into a later sync sub-phase.  Each
buffer is tagged with the phase it was collected in and is discarded on
mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["SyncSampleBuffer", "median_of_samples", "jump_target"]


@dataclass
class SyncSampleBuffer:
    """Aged real-time samples collected during one sync sub-phase."""

    phase: int = -1
    offsets: List[int] = field(default_factory=list)

    def collect(self, phase: int, sampled_real_time: int, own_real_time: int) -> None:
        """Record one neighbour's real time (stored as an ageing offset).

        Starting a new phase implicitly clears samples from any earlier
        phase (the stale-buffer guard).
        """
        if phase != self.phase:
            self.phase = phase
            self.offsets = []
        self.offsets.append(int(sampled_real_time) - int(own_real_time))

    def aged_samples(self, own_real_time: int) -> List[int]:
        """All samples aged to the caller's current real time."""
        return [offset + int(own_real_time) for offset in self.offsets]

    def clear(self) -> None:
        self.phase = -1
        self.offsets = []

    def __len__(self) -> int:
        return len(self.offsets)


def median_of_samples(samples: List[int]) -> int:
    """Lower median (keeps working times integral, matches the paper's
    order-statistic robustness against a minority of poorly
    synchronised nodes)."""
    ordered = sorted(samples)
    return ordered[(len(ordered) - 1) // 2]


def jump_target(
    buffer: SyncSampleBuffer,
    phase: int,
    own_real_time: int,
    sync_start: int,
) -> Optional[int]:
    """Working time to jump to, or ``None`` to skip the jump.

    Returns ``None`` when the buffer holds no samples for this phase —
    e.g. the node jumped straight into the waiting region — in which
    case the caller leaves its working time untouched.
    """
    if buffer.phase != phase or not buffer.offsets:
        return None
    median = median_of_samples(buffer.aged_samples(own_real_time))
    return max(median, int(sync_start))

"""Stubborn and Byzantine fault injection for sequential protocols.

The paper's guarantees assume every node follows the protocol.  This
module breaks that assumption in the two classic ways:

:class:`StubbornProtocol`
    A seed-pinned minority fraction of nodes *never updates* — each
    stubborn node keeps whatever colour the initial configuration gave
    it — but is still sampled by its neighbours, so its frozen opinion
    keeps feeding the dynamics forever.
:class:`ByzantineProtocol`
    A seed-pinned fraction of *adversarial* nodes that report a chosen
    colour whenever they are observed (and never update).  The default
    adversary is the worst case for plurality consensus: it reports the
    initial runner-up colour, propping up the strongest challenger.

Mechanics: the faulty node set is materialised once per run as a
boolean *frozen mask* on a :class:`FaultMaskedState`.  A Byzantine
node's stored colour **is** its report colour (set at state
construction), so observation needs no interception at all — the only
behavioural change is that frozen nodes never write.  That write
suppression is honoured at every layer that can write a node:

* :meth:`~repro.protocols.base.SequentialProtocol.tick_apply` here
  (checks the mask before delegating),
* the default :meth:`~repro.protocols.base.SequentialProtocol.
  tick_apply_batch` scatter, and
* the hazard-batched fast path (:func:`repro.core.hazard.
  apply_hazard_free` forces frozen actors' optimistic values back to
  their own colour before the actual-write test).

Because the mask only ever *shrinks* the write set deterministically,
the hazard-free-prefix exactness argument is untouched and the batched
paths stay bit-identical to the per-tick loop.  The wrappers therefore
delegate the inner protocol's :class:`~repro.protocols.base.
TickFootprint` and ``tick_values`` unchanged — a wrapped Two-Choices
still rides the sparse/hazard fast path.  Compiled kernels do not know
the mask, so the wrappers never declare ``tick_kernel`` and the hazard
core refuses kernels for masked states.

Consensus accounting: faulty nodes hold their colour by construction,
so full consensus over *all* nodes is unreachable whenever two faulty
nodes disagree.  :meth:`FaultMaskedState.counts` therefore reports
**honest nodes only** — stop conditions, traces and results all measure
honest consensus, the quantity the robustness campaigns sweep.

Composition: wrappers nest freely (``stubborn ∘ byzantine``, with or
without :class:`~repro.protocols.lossy.LossyProtocol` anywhere in the
chain).  Each wrapper draws its fault node set from its own tagged
:class:`numpy.random.SeedSequence` stream —
``SeedSequence(fault_seed, spawn_key=(TAG,))`` with a distinct TAG per
wrapper type — so the chosen sets, and hence the masked state, are
independent of nesting order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..api.registry import ParamSpec, register_fault
from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.state import NodeArrayState
from ..graphs.topology import Topology
from .base import SequentialProtocol, TickFootprint
from .lossy import LossyProtocol

__all__ = [
    "FaultMaskedState",
    "StubbornProtocol",
    "ByzantineProtocol",
]

#: Spawn-key tags keeping each wrapper type's fault-set stream disjoint
#: ("STUB" / "BYZA" in ASCII) — the source of composition
#: order-independence documented above.
_STUBBORN_TAG = 0x53545542
_BYZANTINE_TAG = 0x42595A41


@dataclass
class FaultMaskedState(NodeArrayState):
    """Node state with a boolean mask of nodes that never update.

    ``frozen[v]`` is True for stubborn/Byzantine nodes: their colours
    are fixed at construction and every write layer suppresses writes
    to them (see the module docstring).  ``counts`` /
    ``is_consensus`` report **honest nodes only**, so "consensus" means
    honest consensus throughout the engines and stop conditions.
    """

    frozen: np.ndarray = None

    def __post_init__(self):
        super().__post_init__()
        if self.frozen is None:
            self.frozen = np.zeros(self.n, dtype=bool)
        self.frozen = np.asarray(self.frozen, dtype=bool)
        if self.frozen.shape != (self.n,):
            raise ConfigurationError(
                f"frozen mask must have shape ({self.n},), got {self.frozen.shape}"
            )
        if bool(self.frozen.all()):
            raise ConfigurationError("all nodes are faulty; no honest node left to converge")

    def counts(self) -> np.ndarray:
        """Colour histogram over honest (non-frozen) nodes."""
        return np.bincount(self.colors[~self.frozen], minlength=self.k)

    def configuration(self) -> ColorConfiguration:
        """Honest-only counts snapshot (traces and result stats)."""
        return ColorConfiguration(self.counts().tolist())

    def is_consensus(self) -> bool:
        """True iff every honest node holds the same colour."""
        honest = self.colors[~self.frozen]
        return bool(np.all(honest == honest[0]))

    def copy(self) -> "FaultMaskedState":
        return FaultMaskedState(colors=self.colors.copy(), k=self.k, frozen=self.frozen.copy())


def _fault_mask(n: int, fraction: float, fault_seed: int, tag: int) -> np.ndarray:
    """Seed-pinned fault node set as a boolean mask.

    A pure function of ``(n, fraction, fault_seed, tag)`` — independent
    of the engine RNG and of any other wrapper's draws, which is what
    makes composed wrappers nesting-order independent.
    """
    count = int(np.floor(fraction * n))
    mask = np.zeros(n, dtype=bool)
    if count:
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=int(fault_seed), spawn_key=(tag,))
        )
        mask[rng.choice(n, size=count, replace=False)] = True
    return mask


class _FaultWrapper(SequentialProtocol):
    """Shared plumbing of the mask-based fault wrappers.

    Delegates the tick interface to the wrapped protocol; the only
    behavioural change is the frozen mask installed by
    :meth:`make_state` (subclass hook :meth:`_apply_faults`) and the
    write suppression keyed off it.
    """

    # Bare annotation (no value): the instance attribute below delegates
    # the inner protocol's footprint, and the annotation opts this class
    # into the REPRO-P001/P002 purity lint on tick_values.
    tick_footprint: Optional[TickFootprint]

    def __init__(self, inner: SequentialProtocol, fraction: float, fault_seed: int):
        if not isinstance(inner, SequentialProtocol):
            raise ConfigurationError(
                f"fault wrappers wrap sequential protocols, got {type(inner).__name__}"
            )
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1), got {fraction}")
        self.inner = inner
        self.fraction = float(fraction)
        self.fault_seed = int(fault_seed)
        # Footprint and compiled-kernel declarations: the footprint
        # passes through unchanged (the wrapper neither samples nor
        # writes differently), but tick_kernel stays None — compiled
        # per-tick loops do not consult the frozen mask.
        self.tick_footprint = inner.tick_footprint

    def _apply_faults(self, state: FaultMaskedState, colors: np.ndarray) -> None:
        """Install this wrapper's faulty nodes into *state* (subclass hook).

        *colors* is the original initial assignment, before any wrapper
        recoloured anything — the reference every wrapper's chosen
        colours are computed from, whatever the nesting order.
        """
        raise NotImplementedError

    def make_state(self, colors: np.ndarray, k: int) -> FaultMaskedState:
        """Build the inner state, lift it to a masked state, add faults."""
        state = self.inner.make_state(colors, k)
        if not isinstance(state, FaultMaskedState):
            if type(state) is not NodeArrayState:
                raise ConfigurationError(
                    f"{self.inner.name} uses a custom state ({type(state).__name__}); "
                    "fault wrappers support protocols on plain NodeArrayState"
                )
            state = FaultMaskedState(colors=state.colors, k=state.k)
        self._apply_faults(state, np.asarray(colors, dtype=np.int64))
        if bool(state.frozen.all()):
            raise ConfigurationError("all nodes are faulty; no honest node left to converge")
        return state

    def tick_targets(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        """Delegate target selection (frozen nodes still sample — and
        consume the same RNG draws — so wrapping never perturbs the
        engine stream layout)."""
        return self.inner.tick_targets(state, node, topology, rng)

    def tick_apply(self, state: NodeArrayState, node: int, observed_colors: np.ndarray) -> None:
        """A frozen actor's tick is a no-op; honest ticks delegate."""
        frozen = getattr(state, "frozen", None)
        if frozen is not None and frozen[node]:
            return
        self.inner.tick_apply(state, node, observed_colors)

    def tick_values(self, state: NodeArrayState, own: np.ndarray, observed: np.ndarray) -> Optional[np.ndarray]:
        """Delegate the pure value rule; frozen actors are forced back
        to their own colour by the callers that know the acting nodes
        (:func:`repro.core.hazard.apply_hazard_free` and the default
        ``tick_apply_batch``), not here — this hook never sees node
        identities."""
        return self.inner.tick_values(state, own, observed)

    def is_absorbed(self, state: NodeArrayState) -> bool:
        """Delegate absorption (honest consensus under a masked state)."""
        return self.inner.is_absorbed(state)


class StubbornProtocol(_FaultWrapper):
    """Freeze a seed-pinned fraction of nodes at their initial colours.

    Stubborn nodes keep whatever colour the initial configuration
    assigned them, never update, and are still sampled by everyone
    else.  ``fraction`` is the faulty share of ``n`` (``floor(f * n)``
    nodes); ``fault_seed`` pins the set.
    """

    def __init__(self, inner: SequentialProtocol, fraction: float, fault_seed: int = 0):
        super().__init__(inner, fraction, fault_seed)
        self.name = f"{inner.name}+stubborn({fraction:g})"

    def _apply_faults(self, state: FaultMaskedState, colors: np.ndarray) -> None:
        state.frozen |= _fault_mask(state.n, self.fraction, self.fault_seed, _STUBBORN_TAG)


class ByzantineProtocol(_FaultWrapper):
    """Adversarial nodes that report a chosen colour and never update.

    The faulty nodes' stored colours are *rewritten* to the report
    colour at state construction — an observation of a Byzantine node
    then reads the adversarial colour with zero interception cost.
    ``color=None`` (the default) picks the worst-case report for
    plurality consensus: the runner-up colour of the initial
    assignment (the adversary props up the strongest challenger).
    """

    def __init__(
        self,
        inner: SequentialProtocol,
        fraction: float,
        color: Optional[int] = None,
        fault_seed: int = 0,
    ):
        super().__init__(inner, fraction, fault_seed)
        if color is not None and color < 0:
            raise ConfigurationError(f"color must be a colour index >= 0, got {color}")
        self.color = None if color is None else int(color)
        target = "worst-case" if color is None else f"{color}"
        self.name = f"{inner.name}+byzantine({fraction:g}->{target})"

    def _report_color(self, colors: np.ndarray, k: int) -> int:
        if self.color is not None:
            if self.color >= k:
                raise ConfigurationError(
                    f"byzantine report colour {self.color} out of range 0..{k - 1}"
                )
            return self.color
        counts = np.bincount(colors, minlength=k)
        # Runner-up of the *original* assignment: second-largest count
        # (ties broken by lower colour index, matching sort stability).
        order = np.argsort(-counts, kind="stable")
        return int(order[1]) if k > 1 else int(order[0])

    def _apply_faults(self, state: FaultMaskedState, colors: np.ndarray) -> None:
        mask = _fault_mask(state.n, self.fraction, self.fault_seed, _BYZANTINE_TAG)
        state.colors[mask] = self._report_color(colors, state.k)
        state.frozen |= mask


# ---------------------------------------------------------------------------
# registry entries — every fault configuration a serializable spec field
# ---------------------------------------------------------------------------
_FRACTION = ParamSpec("fraction", kind="float", required=True, doc="faulty share of n (in [0, 1))")
_FAULT_SEED = ParamSpec("fault_seed", kind="int", default=0, doc="seed pinning the faulty node set")


@register_fault(
    "loss",
    params=[ParamSpec("p", kind="float", required=True, doc="per-observation drop probability")],
    description="Drop each observation independently with probability p",
)
def _loss(inner: SequentialProtocol, p: float) -> LossyProtocol:
    """Registry adapter for :class:`~repro.protocols.lossy.LossyProtocol`."""
    return LossyProtocol(inner, p)


register_fault(
    "stubborn",
    StubbornProtocol,
    params=[_FRACTION, _FAULT_SEED],
    description="A seed-pinned fraction of nodes never updates but is still sampled",
)
register_fault(
    "byzantine",
    ByzantineProtocol,
    params=[
        _FRACTION,
        ParamSpec("color", kind="int", doc="reported colour (default: the initial runner-up)"),
        _FAULT_SEED,
    ],
    description="Adversarial nodes report a chosen colour when observed and never update",
)

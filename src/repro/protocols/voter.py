"""The Voter model (pull voting) — classic baseline.

A node samples a single neighbour and adopts its colour
unconditionally.  Voter solves *consensus* but not *plurality*
consensus: on ``K_n`` the probability that colour ``j`` wins equals its
initial fraction ``c_j / n``, and the expected time to consensus is
``Theta(n)`` — both properties the introduction's motivation for
Two-Choices implicitly contrasts against, and both measurable with this
implementation (experiment T11).
"""

from __future__ import annotations

import numpy as np

from ..api.registry import register_protocol
from ..core.colors import ColorConfiguration
from ..core.state import NodeArrayState
from ..graphs.topology import Topology
from .base import (
    CountsProtocol,
    EnsembleCountsProtocol,
    SequentialCountsProtocol,
    SequentialProtocol,
    SynchronousProtocol,
    TickFootprint,
    self_excluded_sample_probabilities,
    self_excluded_sample_probabilities_ensemble,
)

__all__ = ["VoterSynchronous", "VoterCounts", "VoterSequential", "VoterSequentialCounts"]


class VoterSynchronous(SynchronousProtocol):
    """Agent-based synchronous pull voting."""

    name = "voter/sync"

    def round_update(self, state: NodeArrayState, topology: Topology, rng: np.random.Generator) -> None:
        nodes = np.arange(state.n, dtype=np.int64)
        targets = topology.sample_neighbors_many(nodes, rng)
        state.colors = state.colors[targets]


class VoterCounts(CountsProtocol, EnsembleCountsProtocol):
    """Exact counts-level synchronous voter on ``K_n``."""

    name = "voter/counts"

    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        return np.asarray(config.counts, dtype=np.int64)

    def step(self, counts_state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = counts_state
        n = int(counts.sum())
        k = counts.size
        new_counts = np.zeros(k, dtype=np.int64)
        base = counts.astype(float)
        for i in range(k):
            group = int(counts[i])
            if group == 0:
                continue
            probs = base.copy()
            probs[i] -= 1.0  # self-exclusion
            probs /= n - 1
            probs = np.clip(probs, 0.0, None)
            probs /= probs.sum()
            new_counts += rng.multinomial(group, probs)
        return new_counts

    def step_ensemble(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance R replications one round (mirrors :meth:`step` per
        row; one stacked multinomial per non-empty colour class)."""
        states = np.asarray(states, dtype=np.int64)
        reps, k = states.shape
        n = int(states[0].sum())
        new_counts = np.zeros_like(states)
        base = states.astype(float)
        probs = np.empty((reps, k))
        for i in range(k):
            groups = states[:, i]
            acting = np.flatnonzero(groups > 0)
            if acting.size == 0:
                continue
            np.copyto(probs, base)
            probs[:, i] -= 1.0  # self-exclusion
            probs /= n - 1
            np.clip(probs, 0.0, None, out=probs)
            probs /= probs.sum(axis=1, keepdims=True)
            new_counts[acting] += rng.multinomial(groups[acting], probs[acting])
        return new_counts

    def color_counts(self, counts_state: np.ndarray) -> np.ndarray:
        return counts_state


class VoterSequential(SequentialProtocol):
    """Tick-based pull voting for the asynchronous engines."""

    name = "voter/seq"
    # One state-independent uniform sample; adopts it unconditionally.
    tick_footprint = TickFootprint(samples=1, reads_own=False)
    tick_kernel = "voter"

    def tick_targets(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        return topology.sample_neighbors(node, 1, rng)

    def tick_apply(self, state: NodeArrayState, node: int, observed_colors: np.ndarray) -> None:
        if len(observed_colors):
            state.colors[node] = observed_colors[0]

    def tick_values(self, state: NodeArrayState, own: np.ndarray, observed: np.ndarray) -> np.ndarray:
        return observed[:, 0]

    def as_sequential_counts(self) -> "VoterSequentialCounts":
        return VoterSequentialCounts()


class VoterSequentialCounts(SequentialCountsProtocol):
    """Exact counts-level tick law of sequential Voter on ``K_n``.

    The acting node simply adopts its sample, so ``P[i] = q`` — the
    self-excluded sample distribution of a colour-``i`` node.
    """

    name = "voter/seq-counts"

    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        return np.asarray(config.counts, dtype=np.int64)

    def tick_transition_matrix(self, counts: np.ndarray) -> np.ndarray:
        return self_excluded_sample_probabilities(counts)

    def tick_transition_matrices(self, states: np.ndarray) -> np.ndarray:
        return self_excluded_sample_probabilities_ensemble(states)


register_protocol(
    "voter",
    description="Adopt one uniform neighbour's colour unconditionally (Theta(n) baseline)",
    counts=VoterCounts,
    synchronous=VoterSynchronous,
    sequential=VoterSequential,
)

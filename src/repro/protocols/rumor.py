"""Rumour spreading: push, pull, and push–pull broadcast.

The paper's speed-up comes from combining Two-Choices "with the speed
of broadcasting" (Section 2) — Bit-Propagation *is* a pull-style rumour
spreading of the bit.  This module implements the three classic
broadcast primitives as standalone protocols so the substrate can be
validated independently (experiment S1: informed counts double per
round; completion in Θ(log n) rounds):

* **push** — every informed node tells one uniform neighbour;
* **pull** — every uninformed node asks one uniform neighbour;
* **push–pull** — both per round (Karp et al.'s `log₃ n + O(log log n)`
  classic).

Agent-based variants run on any topology; the counts-level variant is
exact on ``K_n``: pull infections are a binomial draw, and push
infections sample the occupancy law directly (``m`` uniform throws into
the uninformed set, counting distinct bins hit — simulated exactly in
O(m)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.results import RunResult, Trace
from ..core.rng import SeedLike, as_generator
from ..engine.base import build_result
from ..graphs.topology import Topology

__all__ = ["RumorState", "spread_rumor_agents", "spread_rumor_counts"]

_MODES = ("push", "pull", "push-pull")


@dataclass
class RumorState:
    """Informed/uninformed bitmap over the node set."""

    informed: np.ndarray

    def __post_init__(self):
        self.informed = np.asarray(self.informed, dtype=bool)
        if self.informed.ndim != 1 or self.informed.size == 0:
            raise ConfigurationError("informed must be a non-empty 1-D bool array")
        if not self.informed.any():
            raise ConfigurationError("at least one node must start informed")

    @property
    def n(self) -> int:
        return self.informed.size

    @property
    def count(self) -> int:
        return int(self.informed.sum())

    def all_informed(self) -> bool:
        return bool(self.informed.all())


def _check_mode(mode: str) -> None:
    if mode not in _MODES:
        raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")


def _push_round_agents(state: RumorState, topology: Topology, rng: np.random.Generator) -> None:
    informed_nodes = np.flatnonzero(state.informed)
    targets = topology.sample_neighbors_many(informed_nodes, rng)
    state.informed[targets] = True


def _pull_round_agents(state: RumorState, topology: Topology, rng: np.random.Generator, snapshot: np.ndarray) -> None:
    uninformed_nodes = np.flatnonzero(~state.informed)
    if uninformed_nodes.size == 0:
        return
    targets = topology.sample_neighbors_many(uninformed_nodes, rng)
    hits = snapshot[targets]
    state.informed[uninformed_nodes[hits]] = True


def spread_rumor_agents(
    topology: Topology,
    mode: str = "push-pull",
    source: int = 0,
    max_rounds: int = 10_000,
    seed: SeedLike = None,
    record_trace: bool = True,
) -> RunResult:
    """Run broadcast rounds until everyone is informed.

    Returns a :class:`RunResult` whose two "colours" are
    ``(informed, uninformed)`` counts; ``rounds``/``parallel_time`` is
    the number of synchronous rounds used; the optional trace records
    the informed count per round (the doubling curve).
    """
    _check_mode(mode)
    rng = as_generator(seed)
    n = topology.n
    if not 0 <= source < n:
        raise ConfigurationError(f"source {source} out of range 0..{n - 1}")
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    state = RumorState(informed=informed)
    trace = Trace() if record_trace else None
    if trace is not None:
        trace.record(0, [state.count, n - state.count])

    rounds = 0
    while not state.all_informed() and rounds < max_rounds:
        snapshot = state.informed.copy()
        if mode in ("push", "push-pull"):
            _push_round_agents(state, topology, rng)
        if mode in ("pull", "push-pull"):
            _pull_round_agents(state, topology, rng, snapshot)
        rounds += 1
        if trace is not None:
            trace.record(rounds, [state.count, n - state.count])

    count = state.count
    return build_result(
        converged=state.all_informed(),
        initial_counts=np.array([1, n - 1]),
        final_counts=np.array([count, n - count]),
        rounds=rounds,
        parallel_time=float(rounds),
        trace=trace,
        metadata={"engine": "rumor/agents", "protocol": f"rumor/{mode}"},
    )


def _push_round_counts(informed: int, n: int, rng: np.random.Generator) -> int:
    """Newly informed nodes from one push round on ``K_n`` (exact).

    Each of the ``informed`` nodes throws one ball at a uniform
    neighbour; a throw lands in the uninformed set with probability
    ``U / (n - 1)``, and distinct uninformed targets become informed.
    """
    uninformed = n - informed
    if uninformed == 0:
        return 0
    hits = rng.binomial(informed, uninformed / (n - 1))
    if hits == 0:
        return 0
    # Occupancy: `hits` uniform throws into `uninformed` bins; the
    # number of distinct bins hit is sampled exactly by simulation.
    return int(np.unique(rng.integers(0, uninformed, size=hits)).size)


def _pull_round_counts(informed: int, n: int, rng: np.random.Generator) -> int:
    """Newly informed nodes from one pull round on ``K_n`` (exact)."""
    uninformed = n - informed
    if uninformed == 0:
        return 0
    # Each uninformed node asks one uniform neighbour; it gets the
    # rumour iff the neighbour is informed: Binomial(U, I/(n-1)).
    return int(rng.binomial(uninformed, informed / (n - 1)))


def spread_rumor_counts(
    n: int,
    mode: str = "push-pull",
    initial_informed: int = 1,
    max_rounds: int = 10_000,
    seed: SeedLike = None,
    record_trace: bool = True,
) -> RunResult:
    """Exact counts-level broadcast on ``K_n`` (scales to huge ``n``)."""
    _check_mode(mode)
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if not 1 <= initial_informed <= n:
        raise ConfigurationError(f"initial_informed must be in 1..{n}")
    rng = as_generator(seed)
    informed = initial_informed
    trace = Trace() if record_trace else None
    if trace is not None:
        trace.record(0, [informed, n - informed])

    rounds = 0
    while informed < n and rounds < max_rounds:
        snapshot = informed
        if mode in ("push", "push-pull"):
            informed += _push_round_counts(snapshot, n, rng)
        if mode in ("pull", "push-pull"):
            # Pull reads the same pre-round snapshot (simultaneity).
            gained = _pull_round_counts(snapshot, n, rng)
            informed = min(n, informed + _pull_overlap_correction(snapshot, informed, gained, n, rng))
        rounds += 1
        if trace is not None:
            trace.record(rounds, [informed, n - informed])

    return build_result(
        converged=informed == n,
        initial_counts=np.array([initial_informed, n - initial_informed]),
        final_counts=np.array([informed, n - informed]),
        rounds=rounds,
        parallel_time=float(rounds),
        trace=trace,
        metadata={"engine": "rumor/counts", "protocol": f"rumor/{mode}"},
    )


def _pull_overlap_correction(snapshot: int, informed_after_push: int, pull_gains: int, n: int, rng: np.random.Generator) -> int:
    """Resolve push/pull overlap in a combined round, exactly.

    ``pull_gains`` uninformed nodes learned the rumour by pulling; some
    of them may be the same nodes that were just pushed to.  Each
    pulled node is a uniform member of the pre-round uninformed set, of
    which ``informed_after_push - snapshot`` were already pushed to, so
    the number of *new* nodes among the pullers is hypergeometric.
    """
    if pull_gains == 0:
        return 0
    uninformed_before = n - snapshot
    pushed = informed_after_push - snapshot
    if pushed == 0:
        return pull_gains
    fresh = rng.hypergeometric(uninformed_before - pushed, pushed, pull_gains)
    return int(fresh)

"""The 3-Majority dynamics — standard plurality-consensus baseline.

A node samples three neighbours (uniformly, with replacement) and
adopts the majority colour among the three samples; if all three
samples are distinct it adopts the first sample's colour (the common
random-tie-break variant, e.g. Becchetti et al., SODA'16).

The counts-level transition on ``K_n`` is exact: with per-group sample
probabilities ``q_j`` the adopted colour is ``j`` with probability

    P(adopt j) = q_j^3 + 3 q_j^2 (1 - q_j) + q_j * [(1 - q_j)^2 - (S2 - q_j^2)]

where ``S2 = sum_a q_a^2`` — the three terms are "all three ``j``",
"exactly two ``j``", and "all distinct with first sample ``j``".
"""

from __future__ import annotations

import numpy as np

from ..api.registry import register_protocol
from ..core.colors import ColorConfiguration
from ..core.state import NodeArrayState
from ..graphs.topology import Topology
from .base import (
    CountsProtocol,
    EnsembleCountsProtocol,
    SequentialCountsProtocol,
    SequentialProtocol,
    SynchronousProtocol,
    TickFootprint,
    self_excluded_sample_probabilities,
    self_excluded_sample_probabilities_ensemble,
)

__all__ = [
    "ThreeMajoritySynchronous",
    "ThreeMajorityCounts",
    "ThreeMajoritySequential",
    "ThreeMajoritySequentialCounts",
]


def _adoption_probabilities(q: np.ndarray) -> np.ndarray:
    """P(adopted colour = j) for one node with sample distribution *q*.

    Vectorised over rows when *q* is 2-D (one row per actor colour);
    the three terms are "all three j", "exactly two j", and "all three
    distinct with first sample j" (see the module docstring).
    """
    s2 = np.sum(q * q, axis=-1, keepdims=True)
    adopt = q**3 + 3.0 * q**2 * (1.0 - q) + q * ((1.0 - q) ** 2 - (s2 - q**2))
    return np.clip(adopt, 0.0, None)


def _majority_of_three(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Vectorised majority with first-sample tie-break."""
    out = a.copy()
    # b wins when it pairs with c against a lone a.
    out = np.where((b == c) & (a != b), b, out)
    return out


class ThreeMajoritySynchronous(SynchronousProtocol):
    """Agent-based synchronous 3-Majority."""

    name = "three-majority/sync"

    def round_update(self, state: NodeArrayState, topology: Topology, rng: np.random.Generator) -> None:
        nodes = np.arange(state.n, dtype=np.int64)
        first = state.colors[topology.sample_neighbors_many(nodes, rng)]
        second = state.colors[topology.sample_neighbors_many(nodes, rng)]
        third = state.colors[topology.sample_neighbors_many(nodes, rng)]
        state.colors = _majority_of_three(first, second, third)


class ThreeMajorityCounts(CountsProtocol, EnsembleCountsProtocol):
    """Exact counts-level 3-Majority on ``K_n``."""

    name = "three-majority/counts"

    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        return np.asarray(config.counts, dtype=np.int64)

    def step(self, counts_state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = counts_state
        n = int(counts.sum())
        k = counts.size
        new_counts = np.zeros(k, dtype=np.int64)
        base = counts.astype(float)
        # One sample-distribution buffer reused across colour classes
        # (no per-class copies), like the TwoChoicesCounts pvals buffer.
        q = np.empty(k)
        for i in range(k):
            group = int(counts[i])
            if group == 0:
                continue
            np.copyto(q, base)
            q[i] -= 1.0  # self-exclusion
            q /= n - 1
            np.clip(q, 0.0, None, out=q)
            adopt = _adoption_probabilities(q)
            total = float(adopt.sum())
            # Unlike Two-Choices, 3-Majority always adopts a sampled
            # colour, so the adopt probabilities sum to one exactly
            # (up to float error, renormalised here).
            adopt /= total
            new_counts += rng.multinomial(group, adopt)
        return new_counts

    def step_ensemble(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance R replications one round (mirrors :meth:`step` per
        row; one stacked multinomial per non-empty colour class)."""
        states = np.asarray(states, dtype=np.int64)
        reps, k = states.shape
        n = int(states[0].sum())
        new_counts = np.zeros_like(states)
        base = states.astype(float)
        q = np.empty((reps, k))
        for i in range(k):
            groups = states[:, i]
            acting = np.flatnonzero(groups > 0)
            if acting.size == 0:
                continue
            np.copyto(q, base)
            q[:, i] -= 1.0  # self-exclusion
            q /= n - 1
            np.clip(q, 0.0, None, out=q)
            adopt = _adoption_probabilities(q)
            adopt /= adopt.sum(axis=1, keepdims=True)
            new_counts[acting] += rng.multinomial(groups[acting], adopt[acting])
        return new_counts

    def color_counts(self, counts_state: np.ndarray) -> np.ndarray:
        return counts_state


class ThreeMajoritySequential(SequentialProtocol):
    """Tick-based 3-Majority for the asynchronous engines."""

    name = "three-majority/seq"
    # Three state-independent uniform samples; always adopts one of
    # them, so the actor's own colour is never read.
    tick_footprint = TickFootprint(samples=3, reads_own=False)
    tick_kernel = "three-majority"

    def tick_targets(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        return topology.sample_neighbors(node, 3, rng)

    def tick_apply(self, state: NodeArrayState, node: int, observed_colors: np.ndarray) -> None:
        if len(observed_colors) != 3:
            return
        a, b, c = (int(x) for x in observed_colors)
        if b == c and a != b:
            state.colors[node] = b
        else:
            state.colors[node] = a

    def tick_values(self, state: NodeArrayState, own: np.ndarray, observed: np.ndarray) -> np.ndarray:
        return _majority_of_three(observed[:, 0], observed[:, 1], observed[:, 2])

    def as_sequential_counts(self) -> "ThreeMajoritySequentialCounts":
        return ThreeMajoritySequentialCounts()


class ThreeMajoritySequentialCounts(SequentialCountsProtocol):
    """Exact counts-level tick law of sequential 3-Majority on ``K_n``.

    A tick always adopts one of the three sampled colours, so the
    transition row of an acting colour-``i`` node is the adoption
    distribution itself (which may return mass to ``i``).
    """

    name = "three-majority/seq-counts"

    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        return np.asarray(config.counts, dtype=np.int64)

    def tick_transition_matrix(self, counts: np.ndarray) -> np.ndarray:
        q = self_excluded_sample_probabilities(counts)
        transition = _adoption_probabilities(q)
        # The adoption law is exhaustive; renormalise float error away.
        totals = transition.sum(axis=1, keepdims=True)
        np.divide(transition, totals, out=transition, where=totals > 0)
        return transition

    def tick_transition_matrices(self, states: np.ndarray) -> np.ndarray:
        q = self_excluded_sample_probabilities_ensemble(states)
        transition = _adoption_probabilities(q)
        totals = transition.sum(axis=-1, keepdims=True)
        np.divide(transition, totals, out=transition, where=totals > 0)
        return transition


register_protocol(
    "three-majority",
    description="Sample three uniform neighbours; adopt the majority colour (random tie-break)",
    counts=ThreeMajorityCounts,
    synchronous=ThreeMajoritySynchronous,
    sequential=ThreeMajoritySequential,
)

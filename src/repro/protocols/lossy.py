"""Message-loss failure injection for sequential protocols.

The paper's model assumes every contact succeeds.  Real gossip loses
messages; :class:`LossyProtocol` wraps any
:class:`~repro.protocols.base.SequentialProtocol` and drops each
observation independently with probability ``loss_probability`` before
the inner protocol sees it.

The wrapped protocol's own robustness decides what a dropped
observation means: Two-Choices receiving fewer than two colours adopts
nothing (its agreement check fails closed), Voter receiving nothing
keeps its opinion, 3-Majority receiving fewer than three samples keeps
its opinion.  The observable effect is a clean slowdown — with
per-observation loss ``p``, a Two-Choices tick completes with
probability ``(1-p)²``, so consensus time inflates by ``1/(1-p)²``
(measured in the tests).
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.rng import as_generator
from ..core.state import NodeArrayState
from ..graphs.topology import Topology
from .base import SequentialProtocol

__all__ = ["LossyProtocol"]


class LossyProtocol(SequentialProtocol):
    """Drop each observation with probability ``loss_probability``.

    The wrapper is transparent to the engines: it delegates state
    construction and absorption checks to the inner protocol and only
    filters the observed colours between ``tick_targets`` and
    ``tick_apply``.
    """

    def __init__(self, inner: SequentialProtocol, loss_probability: float):
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self.inner = inner
        self.loss_probability = float(loss_probability)
        self.name = f"{inner.name}+loss({loss_probability:g})"
        self._rng_for_loss = None

    def make_state(self, colors: np.ndarray, k: int) -> NodeArrayState:
        """Delegate state construction to the wrapped protocol."""
        return self.inner.make_state(colors, k)

    def tick_targets(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        """Delegate target selection (losses happen on the way back)."""
        # Remember the engine's generator so seq_tick-independent paths
        # (the continuous engine calls tick_apply directly) still have
        # a stream to draw loss events from.
        self._rng_for_loss = rng
        return self.inner.tick_targets(state, node, topology, rng)

    def tick_apply(self, state: NodeArrayState, node: int, observed_colors: np.ndarray) -> None:
        """Drop observations i.i.d., then hand the survivors down.

        Fallback contract: loss events draw from the engine generator
        captured in :meth:`tick_targets`.  If ``tick_apply`` is called
        before any ``tick_targets`` (possible only when a caller drives
        the hook directly, outside an engine), the stream is coerced via
        :func:`repro.core.rng.as_generator`, whose ``None`` branch is
        the repo's single sanctioned OS-entropy fallback — such a run
        is unseeded by construction and makes no replay promise.
        """
        if len(observed_colors) and self.loss_probability > 0.0:
            rng = as_generator(self._rng_for_loss)
            keep = rng.random(len(observed_colors)) >= self.loss_probability
            observed_colors = observed_colors[keep]
        self.inner.tick_apply(state, node, observed_colors)

    def is_absorbed(self, state: NodeArrayState) -> bool:
        """Delegate absorption to the wrapped protocol."""
        return self.inner.is_absorbed(state)

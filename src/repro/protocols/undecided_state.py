"""Undecided-State Dynamics (USD) — third-state baseline.

The population-protocol classic (Angluin et al.; analysed for gossip
plurality consensus by Becchetti et al., SODA'15): nodes are *decided*
(hold a colour) or *undecided*.  A node samples one neighbour:

* a decided node that samples a *different decided* colour becomes
  undecided (conflicting evidence);
* a decided node that samples its own colour or an undecided node keeps
  its colour;
* an undecided node adopts the colour of a sampled decided node and
  stays undecided when it samples another undecided node.

State encoding: colours ``0..k-1`` plus the extra label ``k`` for
"undecided"; counts vectors reported by these protocols therefore have
``k + 1`` entries with the undecided bucket **last**.  Note the
all-undecided configuration is absorbing — it is reached only with
vanishing probability from biased starts, but budget-bounded callers
should check for it (``is_absorbed`` does).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..api.registry import register_protocol
from ..core.colors import ColorConfiguration
from ..core.state import NodeArrayState
from ..graphs.topology import Topology
from .base import (
    CountsProtocol,
    EnsembleCountsProtocol,
    SequentialCountsProtocol,
    SequentialProtocol,
    SynchronousProtocol,
    TickFootprint,
    self_excluded_sample_probabilities,
    self_excluded_sample_probabilities_ensemble,
)

__all__ = [
    "UndecidedStateSynchronous",
    "UndecidedStateCounts",
    "UndecidedStateSequential",
    "UndecidedStateSequentialCounts",
]


def _make_state_with_undecided(colors: np.ndarray, k: int) -> NodeArrayState:
    """Widen the label space by one to make room for the undecided label."""
    return NodeArrayState(colors=np.asarray(colors, dtype=np.int64), k=k + 1)


def _absorbed_rows(states: np.ndarray) -> np.ndarray:
    """Row-wise USD absorption (``bool[R]``): one decided colour with no
    undecided mass, or everyone undecided."""
    support = np.count_nonzero(states[:, :-1], axis=1)
    return ((support <= 1) & (states[:, -1] == 0)) | (support == 0)


class UndecidedStateSynchronous(SynchronousProtocol):
    """Agent-based synchronous USD."""

    name = "undecided-state/sync"

    def make_state(self, colors: np.ndarray, k: int) -> NodeArrayState:
        return _make_state_with_undecided(colors, k)

    def round_update(self, state: NodeArrayState, topology: Topology, rng: np.random.Generator) -> None:
        undecided = state.k - 1
        nodes = np.arange(state.n, dtype=np.int64)
        sampled = state.colors[topology.sample_neighbors_many(nodes, rng)]
        own = state.colors
        own_undecided = own == undecided
        sample_undecided = sampled == undecided
        # Decided nodes: conflict with a different decided colour.
        conflict = ~own_undecided & ~sample_undecided & (sampled != own)
        # Undecided nodes: adopt any decided sample.
        adopt = own_undecided & ~sample_undecided
        new = own.copy()
        new[conflict] = undecided
        new[adopt] = sampled[adopt]
        state.colors = new

    def is_absorbed(self, state: NodeArrayState) -> bool:
        counts = state.counts()
        support = int(np.count_nonzero(counts[:-1]))
        # Absorbing states: one decided colour plus possibly undecided
        # mass of zero, or everyone undecided.
        return (support <= 1 and counts[-1] == 0) or support == 0


class UndecidedStateCounts(CountsProtocol, EnsembleCountsProtocol):
    """Exact counts-level USD on ``K_n``.

    Counts state: ``int64[k + 1]`` with the undecided bucket last.
    """

    name = "undecided-state/counts"

    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        return np.asarray(list(config.counts) + [0], dtype=np.int64)

    def step(self, counts_state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = counts_state
        n = int(counts.sum())
        k = counts.size - 1
        undecided = int(counts[k])
        new_counts = np.zeros(k + 1, dtype=np.int64)
        base = counts.astype(float)
        for i in range(k):
            group = int(counts[i])
            if group == 0:
                continue
            # A decided node stays iff it samples its own colour (with
            # self-exclusion) or an undecided node — two scalars, no
            # per-class distribution array needed.
            stay = (base[i] - 1.0) / (n - 1) + base[k] / (n - 1)
            stay = min(max(stay, 0.0), 1.0)
            keepers = int(rng.binomial(group, stay))
            new_counts[i] += keepers
            new_counts[k] += group - keepers
        if undecided > 0:
            q = base.copy()
            q[k] -= 1.0
            q /= n - 1
            q = np.clip(q, 0.0, None)
            q /= q.sum()
            draws = rng.multinomial(undecided, q)
            new_counts += draws
        return new_counts

    def step_ensemble(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance R replications one round (mirrors :meth:`step` per
        row: a stacked binomial per decided class, then one stacked
        multinomial for the undecided movers)."""
        states = np.asarray(states, dtype=np.int64)
        reps, width = states.shape
        k = width - 1
        n = int(states[0].sum())
        new_counts = np.zeros_like(states)
        base = states.astype(float)
        for i in range(k):
            groups = states[:, i]
            acting = np.flatnonzero(groups > 0)
            if acting.size == 0:
                continue
            stay = (base[:, i] - 1.0) / (n - 1) + base[:, k] / (n - 1)
            np.clip(stay, 0.0, 1.0, out=stay)
            keepers = rng.binomial(groups[acting], stay[acting])
            new_counts[acting, i] += keepers
            new_counts[acting, k] += groups[acting] - keepers
        moving = np.flatnonzero(states[:, k] > 0)
        if moving.size:
            q = base.copy()
            q[:, k] -= 1.0
            q /= n - 1
            np.clip(q, 0.0, None, out=q)
            q /= q.sum(axis=1, keepdims=True)
            draws = rng.multinomial(states[moving, k], q[moving])
            new_counts[moving] += draws
        return new_counts

    def color_counts(self, counts_state: np.ndarray) -> np.ndarray:
        return counts_state

    def is_absorbed(self, counts_state: np.ndarray) -> bool:
        support = int(np.count_nonzero(counts_state[:-1]))
        return (support <= 1 and counts_state[-1] == 0) or support == 0

    def is_absorbed_ensemble(self, states: np.ndarray) -> np.ndarray:
        return _absorbed_rows(states)


class UndecidedStateSequential(SequentialProtocol):
    """Tick-based USD for the asynchronous engines."""

    name = "undecided-state/seq"
    # One state-independent uniform sample; the update also reads the
    # acting node's own colour (decided vs undecided branch).
    tick_footprint = TickFootprint(samples=1, reads_own=True)
    tick_kernel = "undecided-state"

    def make_state(self, colors: np.ndarray, k: int) -> NodeArrayState:
        return _make_state_with_undecided(colors, k)

    def tick_targets(self, state: NodeArrayState, node: int, topology: Topology, rng: np.random.Generator) -> np.ndarray:
        return topology.sample_neighbors(node, 1, rng)

    def tick_apply(self, state: NodeArrayState, node: int, observed_colors: np.ndarray) -> None:
        if not len(observed_colors):
            return
        undecided = state.k - 1
        own = int(state.colors[node])
        seen = int(observed_colors[0])
        if own == undecided:
            if seen != undecided:
                state.colors[node] = seen
        elif seen != undecided and seen != own:
            state.colors[node] = undecided

    def is_absorbed(self, state: NodeArrayState) -> bool:
        counts = state.counts()
        support = int(np.count_nonzero(counts[:-1]))
        return (support <= 1 and counts[-1] == 0) or support == 0

    def tick_values(self, state: NodeArrayState, own: np.ndarray, observed: np.ndarray) -> np.ndarray:
        undecided = state.k - 1
        seen = observed[:, 0]
        decided_seen = seen != undecided
        own_undecided = own == undecided
        values = np.where(own_undecided & decided_seen, seen, own)
        clash = ~own_undecided & decided_seen & (seen != own)
        return np.where(clash, undecided, values)

    def as_sequential_counts(self) -> "UndecidedStateSequentialCounts":
        return UndecidedStateSequentialCounts()


class UndecidedStateSequentialCounts(SequentialCountsProtocol):
    """Exact counts-level tick law of sequential USD on ``K_n``.

    Label space: colours ``0..k-1`` plus the undecided bucket last,
    matching the other USD realisations.  With ``q`` the self-excluded
    sample distribution of an acting label-``i`` node:

    * decided ``i``: stays with probability ``q_i + q_undecided``, turns
      undecided otherwise (a different decided sample);
    * undecided: adopts decided ``j`` with probability ``q_j``, stays
      undecided with probability ``q_undecided``.
    """

    name = "undecided-state/seq-counts"

    def init_counts(self, config: ColorConfiguration) -> np.ndarray:
        return np.asarray(list(config.counts) + [0], dtype=np.int64)

    def tick_transition_matrix(self, counts: np.ndarray) -> np.ndarray:
        m = np.asarray(counts).size
        undecided = m - 1
        q = self_excluded_sample_probabilities(counts)
        transition = np.zeros((m, m))
        stay = np.clip(q.diagonal() + q[:, undecided], 0.0, 1.0)
        idx = np.arange(undecided)
        transition[idx, idx] = stay[:undecided]
        transition[idx, undecided] = 1.0 - stay[:undecided]
        transition[undecided, :] = q[undecided]
        return transition

    def tick_transition_matrices(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states)
        reps, m = states.shape
        undecided = m - 1
        q = self_excluded_sample_probabilities_ensemble(states)
        transition = np.zeros((reps, m, m))
        idx = np.arange(undecided)
        stay = np.clip(q[:, idx, idx] + q[:, :undecided, undecided], 0.0, 1.0)
        transition[:, idx, idx] = stay
        transition[:, idx, undecided] = 1.0 - stay
        transition[:, undecided, :] = q[:, undecided, :]
        return transition

    def is_absorbed(self, counts: np.ndarray) -> bool:
        support = int(np.count_nonzero(counts[:-1]))
        return (support <= 1 and counts[-1] == 0) or support == 0

    def is_absorbed_ensemble(self, states: np.ndarray) -> np.ndarray:
        return _absorbed_rows(states)


register_protocol(
    "undecided-state",
    description="Undecided-State Dynamics: clash with a disagreeing neighbour, then re-adopt",
    counts=UndecidedStateCounts,
    synchronous=UndecidedStateSynchronous,
    sequential=UndecidedStateSequential,
)

"""Working-time schedule for the asynchronous phased protocol.

Section 3.1 of the paper: the algorithm operates in multiple phases,
each split into three sub-phases built from *blocks* of length
``Delta = Theta(log n / log log n)``; between the critical instructions
there are *do-nothing blocks* ("tactical waiting") so that all
well-synchronised nodes — whose working times differ by at most
``Delta`` — execute every critical instruction in the intended order.

The brief announcement gives the architecture but no pseudo-code, so
this module pins down a concrete layout (every constant is a
constructor argument; DESIGN.md section 4 records the rationale):

* **Two-Choices sub-phase** — 4 blocks ``[sample | wait | commit | wait]``.
  The sample and the commit each occupy a *single working-time slot*
  (the first slot of their block); the two wait blocks guarantee that
  every well-synchronised node finishes sampling before any of them
  commits, and finishes committing before Bit-Propagation starts.
* **Bit-Propagation sub-phase** — ``bp_blocks`` blocks in which every
  slot is a Bit-Propagation step (sample one neighbour; adopt colour
  and bit from a bit-carrying node).
* **Sync-Gadget sub-phase** — sized to fit ``sync_samples ~
  (log log n)^3`` sampling slots, at least one waiting slot, and the
  final **jump** slot, rounded up to whole blocks (at least
  ``min_sync_blocks``).

A schedule compiles to a flat ``int8`` array ``actions`` indexed by
working time — the per-tick dispatch in the simulator is one array
lookup.  Working times beyond :attr:`part_one_length` are the endgame
(plain asynchronous Two-Choices for ``endgame_ticks`` slots, then
termination).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.exceptions import ScheduleError

__all__ = [
    "ACTION_NOP",
    "ACTION_TC_SAMPLE",
    "ACTION_TC_COMMIT",
    "ACTION_BP",
    "ACTION_SYNC_SAMPLE",
    "ACTION_SYNC_JUMP",
    "ACTION_NAMES",
    "default_delta",
    "default_phase_count",
    "default_sync_samples",
    "PhaseSchedule",
]

ACTION_NOP = 0
ACTION_TC_SAMPLE = 1
ACTION_TC_COMMIT = 2
ACTION_BP = 3
ACTION_SYNC_SAMPLE = 4
ACTION_SYNC_JUMP = 5

ACTION_NAMES = {
    ACTION_NOP: "nop",
    ACTION_TC_SAMPLE: "tc-sample",
    ACTION_TC_COMMIT: "tc-commit",
    ACTION_BP: "bit-propagation",
    ACTION_SYNC_SAMPLE: "sync-sample",
    ACTION_SYNC_JUMP: "sync-jump",
}


def default_delta(n: int, delta_factor: float = 1.0) -> int:
    """The paper's block length ``Delta = Theta(log n / log log n)``."""
    if n < 2:
        raise ScheduleError(f"n must be >= 2, got {n}")
    log_n = max(math.log(n), 1.0)
    log_log_n = max(math.log(log_n), 1.0)
    return max(1, round(delta_factor * log_n / log_log_n))


def default_phase_count(n: int, phase_factor: float = 3.0, phase_offset: int = 2) -> int:
    """``Theta(log log n)`` phases (quadratic bias amplification)."""
    if n < 2:
        raise ScheduleError(f"n must be >= 2, got {n}")
    log_log_n = max(math.log(max(math.log(n), 1.0)), 1.0)
    return int(math.ceil(phase_factor * log_log_n)) + int(phase_offset)


def default_sync_samples(n: int) -> int:
    """The Sync Gadget's ``log^3 log n`` sampling ticks."""
    if n < 2:
        raise ScheduleError(f"n must be >= 2, got {n}")
    log_log_n = max(math.log(max(math.log(n), 1.0)), 1.5)
    return int(math.ceil(log_log_n**3))


@dataclass(frozen=True)
class PhaseSchedule:
    """Compiled working-time layout for part one of the protocol.

    Build with :meth:`compile`; the dataclass fields are the compiled
    artefacts (a flat action array plus phase landmarks).
    """

    n: int
    delta: int
    phases: int
    bp_blocks: int
    sync_blocks: int
    sync_samples: int
    endgame_ticks: int
    sync_enabled: bool
    actions: np.ndarray = field(repr=False)
    phase_starts: tuple
    sync_starts: tuple
    jump_slots: tuple

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        n: int,
        delta_factor: float = 1.0,
        phases: int = None,
        phase_factor: float = 3.0,
        phase_offset: int = 2,
        bp_blocks: int = 2,
        min_sync_blocks: int = 2,
        sync_samples: int = None,
        endgame_factor: float = 14.0,
        sync_enabled: bool = True,
    ) -> "PhaseSchedule":
        """Compute the layout for a system of *n* nodes.

        Parameters mirror DESIGN.md section 4; passing explicit
        ``phases`` or ``sync_samples`` overrides the ``Theta(.)``
        defaults (useful in unit tests).
        """
        if n < 2:
            raise ScheduleError(f"n must be >= 2, got {n}")
        if bp_blocks < 1:
            raise ScheduleError(f"bp_blocks must be >= 1, got {bp_blocks}")
        if min_sync_blocks < 1:
            raise ScheduleError(f"min_sync_blocks must be >= 1, got {min_sync_blocks}")
        delta = default_delta(n, delta_factor)
        if phases is None:
            phases = default_phase_count(n, phase_factor, phase_offset)
        if phases < 1:
            raise ScheduleError(f"phases must be >= 1, got {phases}")
        if sync_samples is None:
            sync_samples = default_sync_samples(n)
        if sync_samples < 1:
            raise ScheduleError(f"sync_samples must be >= 1, got {sync_samples}")
        # The sync sub-phase must fit sampling + >=1 wait + the jump.
        sync_blocks = max(min_sync_blocks, math.ceil((sync_samples + 2) / delta))
        sync_len = sync_blocks * delta
        if sync_samples > sync_len - 2:
            sync_samples = sync_len - 2
        endgame_ticks = max(1, int(math.ceil(endgame_factor * max(math.log(n), 1.0))))

        tc_len = 4 * delta
        bp_len = bp_blocks * delta
        phase_len = tc_len + bp_len + sync_len
        actions = np.zeros(phases * phase_len, dtype=np.int8)
        phase_starts: List[int] = []
        sync_starts: List[int] = []
        jump_slots: List[int] = []
        for p in range(phases):
            start = p * phase_len
            phase_starts.append(start)
            actions[start] = ACTION_TC_SAMPLE
            actions[start + 2 * delta] = ACTION_TC_COMMIT
            bp_start = start + tc_len
            actions[bp_start:bp_start + bp_len] = ACTION_BP
            sync_start = bp_start + bp_len
            sync_starts.append(sync_start)
            jump = sync_start + sync_len - 1
            jump_slots.append(jump)
            if sync_enabled:
                actions[sync_start:sync_start + sync_samples] = ACTION_SYNC_SAMPLE
                actions[jump] = ACTION_SYNC_JUMP
        return cls(
            n=n,
            delta=delta,
            phases=phases,
            bp_blocks=bp_blocks,
            sync_blocks=sync_blocks,
            sync_samples=sync_samples,
            endgame_ticks=endgame_ticks,
            sync_enabled=sync_enabled,
            actions=actions,
            phase_starts=tuple(phase_starts),
            sync_starts=tuple(sync_starts),
            jump_slots=tuple(jump_slots),
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def phase_length(self) -> int:
        """Working-time slots per phase."""
        return (4 + self.bp_blocks + self.sync_blocks) * self.delta

    @property
    def part_one_length(self) -> int:
        """Total working-time slots of part one (all phases)."""
        return self.phases * self.phase_length

    @property
    def total_length(self) -> int:
        """Part one plus the endgame budget."""
        return self.part_one_length + self.endgame_ticks

    def phase_of(self, working_time: int) -> int:
        """Phase index containing *working_time* (clamped to the last)."""
        if working_time < 0:
            raise ScheduleError(f"working time must be >= 0, got {working_time}")
        return min(working_time // self.phase_length, self.phases - 1)

    def action_at(self, working_time: int) -> int:
        """Action code for a working-time slot (NOP beyond part one)."""
        if 0 <= working_time < self.actions.size:
            return int(self.actions[working_time])
        return ACTION_NOP

    def in_endgame(self, working_time: int) -> bool:
        """True for slots belonging to part two."""
        return working_time >= self.part_one_length

    def describe(self) -> str:
        """Human-readable summary used by the CLI and the examples."""
        return (
            f"PhaseSchedule(n={self.n}, delta={self.delta}, phases={self.phases}, "
            f"phase_length={self.phase_length}, part_one={self.part_one_length}, "
            f"sync_samples={self.sync_samples}, endgame={self.endgame_ticks}, "
            f"sync_enabled={self.sync_enabled})"
        )

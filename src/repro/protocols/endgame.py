"""The endgame (part two) in isolation.

Section 3.2: once part one has driven the plurality to
``c1 >= (1 - eps) n``, the nodes run plain asynchronous Two-Choices;
martingale/drift arguments show every node adopts ``C1`` before the
first node finishes part two, w.h.p.

This module runs exactly that second part on its own, from an explicit
near-consensus start, so the claim can be measured directly
(experiment T9) without simulating part one first.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.colors import ColorConfiguration
from ..core.results import RunResult
from ..core.rng import SeedLike, as_generator
from ..engine.base import build_result

__all__ = ["near_consensus_start", "run_endgame"]


def near_consensus_start(n: int, k: int, epsilon: float) -> ColorConfiguration:
    """The part-one handover state: ``c1 = (1 - eps) n``, rest split evenly.

    ``k`` counts *all* colour classes (including the plurality); the
    ``eps * n`` minority nodes are spread as evenly as possible over
    the ``k - 1`` runner-up colours.
    """
    if k < 2:
        raise ValueError(f"need k >= 2 colours, got {k}")
    if not 0.0 < epsilon < 0.5:
        raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
    minority = int(round(epsilon * n))
    minority = max(k - 1, minority)  # every colour keeps >= 1 supporter
    counts = [n - minority]
    share, remainder = divmod(minority, k - 1)
    for j in range(k - 1):
        counts.append(share + (1 if j < remainder else 0))
    return ColorConfiguration(counts)


def run_endgame(
    initial: ColorConfiguration,
    endgame_factor: float = 10.0,
    seed: SeedLike = None,
    max_parallel_time: Optional[float] = None,
) -> RunResult:
    """Run part two: asynchronous Two-Choices with per-node termination.

    Every node executes plain Two-Choices on each of its ticks and
    freezes after ``ceil(endgame_factor * ln n)`` own ticks.  The
    result's metadata records when consensus happened relative to the
    first termination (the Section 3.2 claim), and
    ``metadata["consensus_before_first_termination"]`` is the per-run
    verdict.

    The run always continues until every node has terminated (the claim
    is about orderings, so an early exit would bias it).
    """
    rng = as_generator(seed)
    n = initial.n
    k = initial.k
    budget = max(1, int(math.ceil(endgame_factor * max(math.log(n), 1.0))))
    if max_parallel_time is None:
        max_parallel_time = 3.0 * budget + 20.0 * max(math.log(n), 1.0)
    max_ticks = int(max_parallel_time * n)

    from ..core.colors import assignment_from_counts

    colors = assignment_from_counts(initial, rng=rng).tolist()
    counts = np.bincount(colors, minlength=k).tolist()
    initial_counts = list(counts)
    remaining = [budget] * n
    alive = n
    ticks = 0
    first_consensus_tick = None
    first_termination_tick = None
    batch = 8192
    nbr = rng.integers(0, n - 1, size=2 * batch).tolist()
    nbr_ptr = 0
    nbr_len = len(nbr)

    while alive > 0 and ticks < max_ticks:
        picks = rng.integers(0, n, size=batch).tolist()
        for u in picks:
            ticks += 1
            if remaining[u] > 0:
                if nbr_ptr + 2 > nbr_len:
                    nbr = rng.integers(0, n - 1, size=2 * batch).tolist()
                    nbr_ptr = 0
                r = nbr[nbr_ptr]
                v1 = r + 1 if r >= u else r
                r = nbr[nbr_ptr + 1]
                v2 = r + 1 if r >= u else r
                nbr_ptr += 2
                c1 = colors[v1]
                if c1 == colors[v2]:
                    old = colors[u]
                    if c1 != old:
                        counts[old] -= 1
                        counts[c1] += 1
                        colors[u] = c1
                remaining[u] -= 1
                if remaining[u] == 0:
                    alive -= 1
                    if first_termination_tick is None:
                        first_termination_tick = ticks
                    if alive == 0:
                        break
            if first_consensus_tick is None and ticks % n == 0 and max(counts) == n:
                first_consensus_tick = ticks
        if alive == 0:
            break

    final_counts = np.asarray(counts, dtype=np.int64)
    consensus = int(final_counts.max()) == n
    if consensus and first_consensus_tick is None:
        first_consensus_tick = ticks
    return build_result(
        converged=consensus,
        initial_counts=np.asarray(initial_counts, dtype=np.int64),
        final_counts=final_counts,
        rounds=ticks,
        parallel_time=ticks / n,
        metadata={
            "engine": "endgame",
            "protocol": "endgame/two-choices",
            "endgame_ticks": budget,
            "first_consensus_parallel_time": (
                None if first_consensus_tick is None else first_consensus_tick / n
            ),
            "first_termination_parallel_time": (
                None if first_termination_tick is None else first_termination_tick / n
            ),
            "consensus_before_first_termination": (
                first_consensus_tick is not None
                and (first_termination_tick is None or first_consensus_tick <= first_termination_tick)
            ),
        },
    )

"""Robustness campaigns: phase-transition maps under fault injection.

The paper's guarantees are stated for fault-free nodes; the robustness
suite measures how the protocols degrade when that assumption is
broken.  Each campaign is a product grid over exactly two axes of
:class:`~repro.api.spec.SimulationSpec`:

* ``faults`` — one wrapper stack per swept *fault rate* (loss
  probability for the ``loss`` wrapper, faulty-node fraction for
  ``stubborn`` / ``byzantine``), with rate ``0.0`` expanding to *no*
  wrapper at all so the fault-free column shares its cache key with
  ordinary runs of the same spec;
* an *initial bias* axis — the additive gap of a two-colour split
  (``initial_params.gap``) for the main maps, or the Zipf exponent
  (``initial_params.alpha``) for the many-colour sampled-heavy-tail
  leg.

Every point is an ordinary replicated :func:`repro.api.simulate` spec,
so the campaigns inherit the whole determinism story: per-point seeds
derive from the campaign master seed, results are content-addressed
cacheable, and serial / process / warm-cache executions are
value-identical.  :func:`phase_map` folds a finished campaign back into
rate-major matrices (consensus rate, plurality rate, mean parallel
time) — the "phase-transition map" shape ``BENCH_robustness.json`` and
EXPERIMENTS.md quote — and :func:`critical_rates` extracts the
empirical phase boundary per bias column.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from ..api.campaign import CampaignResult, CampaignSpec, SweepSpec
from ..api.spec import SimulationSpec
from ..core.exceptions import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "FAULT_RATE_PARAM",
    "fault_axis",
    "robustness_campaign",
    "zipf_robustness_campaign",
    "phase_map",
    "critical_rates",
]

#: the fault wrappers the robustness suite sweeps, in report order.
FAULT_KINDS = ("loss", "stubborn", "byzantine")

#: which registry parameter the swept "fault rate" addresses, per kind.
FAULT_RATE_PARAM = {"loss": "p", "stubborn": "fraction", "byzantine": "fraction"}


def fault_axis(
    fault: str, rates: Sequence[float], fault_seed: int = 0
) -> List[List[Dict[str, Any]]]:
    """``faults``-field axis values: one wrapper stack per swept rate.

    Rate ``0.0`` expands to the empty stack — the exact fault-free
    spec, not a degenerate wrapper — so the zero column of every phase
    map shares its cache key with plain runs of the same workload.
    """
    if fault not in FAULT_RATE_PARAM:
        raise ConfigurationError(
            f"unknown fault kind {fault!r}; expected one of {', '.join(FAULT_KINDS)}"
        )
    param = FAULT_RATE_PARAM[fault]
    values: List[List[Dict[str, Any]]] = []
    for rate in rates:
        rate = float(rate)
        if rate < 0.0 or rate >= 1.0:
            raise ConfigurationError(f"fault rates must lie in [0, 1), got {rate}")
        if rate == 0.0:
            values.append([])
            continue
        params: Dict[str, Any] = {param: rate}
        if fault != "loss":
            # Pin the faulty-node draw so the map is a pure function of
            # the campaign spec (the wrapper would default to 0 anyway;
            # stating it keeps the spec self-describing).
            params["fault_seed"] = int(fault_seed)
        values.append([{"name": fault, "params": params}])
    if not values:
        raise ConfigurationError("need at least one fault rate")
    return values


def robustness_campaign(
    protocol: str,
    fault: str,
    rates: Sequence[float],
    gaps: Sequence[int],
    n: int = 400,
    reps: int = 6,
    seed: int = 20170725,
    max_steps: Optional[int] = None,
    fault_seed: int = 0,
) -> CampaignSpec:
    """One (protocol, fault kind) phase map: rate (outer) x gap (inner).

    The workload is the classic two-colour split on ``K_n`` with an
    explicit additive gap; *max_steps* caps the cells past the phase
    boundary, where the honest nodes never settle and the run would
    otherwise burn the engine's full default budget.
    """
    if not gaps:
        raise ConfigurationError("need at least one initial gap")
    base = SimulationSpec(
        protocol=protocol,
        n=int(n),
        topology="complete",
        initial="two-colors",
        initial_params={"gap": int(gaps[0])},
        reps=int(reps),
        max_steps=max_steps,
    )
    sweep = SweepSpec(
        axes={
            "faults": fault_axis(fault, rates, fault_seed=fault_seed),
            "initial_params.gap": [int(gap) for gap in gaps],
        }
    )
    return CampaignSpec(
        base=base, sweep=sweep, seed=int(seed), name=f"robustness/{protocol}/{fault}"
    )


def zipf_robustness_campaign(
    protocol: str,
    fault: str,
    rates: Sequence[float],
    alphas: Sequence[float],
    n: int = 400,
    k: int = 8,
    reps: int = 6,
    seed: int = 20170725,
    init_seed: int = 20170725,
    max_steps: Optional[int] = None,
    fault_seed: int = 0,
) -> CampaignSpec:
    """The many-colour leg: rate x Zipf exponent over sampled initials.

    The initial configuration is one seeded multinomial draw over Zipf
    weights (``zipf-sampled``), so colours may come out empty and the
    realised plurality margin is rough — exactly the landscape the
    deterministic two-colour maps cannot probe.  *init_seed* pins the
    draw; leaving it unset would fall back to OS entropy and break the
    campaign's replay contract.
    """
    if not alphas:
        raise ConfigurationError("need at least one Zipf exponent")
    base = SimulationSpec(
        protocol=protocol,
        n=int(n),
        topology="complete",
        initial="zipf-sampled",
        initial_params={"k": int(k), "alpha": float(alphas[0]), "init_seed": int(init_seed)},
        reps=int(reps),
        max_steps=max_steps,
    )
    sweep = SweepSpec(
        axes={
            "faults": fault_axis(fault, rates, fault_seed=fault_seed),
            "initial_params.alpha": [float(alpha) for alpha in alphas],
        }
    )
    return CampaignSpec(
        base=base,
        sweep=sweep,
        seed=int(seed),
        name=f"robustness-zipf/{protocol}/{fault}",
    )


def _finite(value: float) -> Optional[float]:
    """Strict-JSON cell value: non-finite statistics become ``None``."""
    value = float(value)
    return value if math.isfinite(value) else None


def phase_map(
    result: CampaignResult, rates: Sequence[float], biases: Sequence[Any]
) -> Dict[str, Any]:
    """Fold a robustness campaign into rate-major phase matrices.

    *rates* and *biases* must be the axis values the campaign was built
    from (rate is the outer axis, bias the inner — the insertion order
    of :func:`robustness_campaign`).  Row ``i``, column ``j`` of each
    matrix is the grid cell at ``(rates[i], biases[j])``:

    * ``consensus_rate`` — fraction of replications that reached (and
      held, at a stop check) honest consensus within the budget;
    * ``plurality_rate`` — fraction where the initial plurality colour
      won;
    * ``mean_parallel_time`` — mean time to consensus over the
      converged replications (``None`` when none converged).
    """
    rates = [float(rate) for rate in rates]
    biases = list(biases)
    expected = len(rates) * len(biases)
    if result.size != expected:
        raise ConfigurationError(
            f"campaign has {result.size} point(s) but the rate x bias grid "
            f"has {expected}; pass the axis values the campaign was built from"
        )
    consensus: List[List[float]] = []
    plurality: List[List[float]] = []
    times: List[List[Optional[float]]] = []
    points = iter(result.points)
    for _ in rates:
        consensus.append([])
        plurality.append([])
        times.append([])
        for _ in biases:
            summary = next(points).result.summary()
            consensus[-1].append(float(summary["converged_rate"]))
            plurality[-1].append(float(summary["plurality_rate"]))
            times[-1].append(_finite(summary["mean_parallel_time"]))
    return {
        "rates": rates,
        "biases": biases,
        "consensus_rate": consensus,
        "plurality_rate": plurality,
        "mean_parallel_time": times,
    }


def critical_rates(
    map_payload: Dict[str, Any], stat: str = "plurality_rate", threshold: float = 0.5
) -> List[Optional[float]]:
    """Empirical phase boundary per bias column.

    For each bias, the largest swept rate whose cell still has
    ``stat >= threshold`` — scanning from rate 0 upward and stopping at
    the first failure, so an isolated noisy cell above the boundary
    does not inflate it.  ``None`` when even the fault-free cell fails.
    """
    if stat not in ("consensus_rate", "plurality_rate"):
        raise ConfigurationError(
            f"stat must be 'consensus_rate' or 'plurality_rate', got {stat!r}"
        )
    rates = map_payload["rates"]
    matrix = map_payload[stat]
    out: List[Optional[float]] = []
    for column in range(len(map_payload["biases"])):
        boundary: Optional[float] = None
        for row, rate in enumerate(rates):
            if matrix[row][column] >= threshold:
                boundary = rate
            else:
                break
        out.append(boundary)
    return out

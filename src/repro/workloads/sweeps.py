"""Parameter-grid helpers and replicated sweeps for the experiments."""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from ..core.colors import ColorConfiguration
from ..core.exceptions import ConfigurationError
from ..core.rng import SeedLike, spawn_seed_sequences
from .initial import benchmark_split

__all__ = ["log_spaced_ints", "powers_of_two", "linear_ints", "convergence_time_sweep"]


def log_spaced_ints(low: int, high: int, count: int) -> List[int]:
    """*count* distinct integers, geometrically spaced in ``[low, high]``.

    Used for ``n`` sweeps where the theorems predict logarithmic or
    power-law behaviour — equal spacing in log-space gives every decade
    equal weight in the slope fits.
    """
    if low < 1 or high < low:
        raise ConfigurationError(f"need 1 <= low <= high, got {low}..{high}")
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if count == 1:
        return [low]
    ratio = (high / low) ** (1.0 / (count - 1))
    values = []
    for i in range(count):
        value = int(round(low * ratio**i))
        if not values or value > values[-1]:
            values.append(value)
    values[-1] = high
    return sorted(set(values))


def powers_of_two(low: int, high: int) -> List[int]:
    """All powers of two in ``[low, high]``."""
    if low < 1 or high < low:
        raise ConfigurationError(f"need 1 <= low <= high, got {low}..{high}")
    exponent = max(0, math.ceil(math.log2(low)))
    values = []
    while 2**exponent <= high:
        values.append(2**exponent)
        exponent += 1
    if not values:
        raise ConfigurationError(f"no power of two in [{low}, {high}]")
    return values


def linear_ints(low: int, high: int, step: int) -> List[int]:
    """Arithmetic grid ``low, low+step, ... <= high``."""
    if step < 1:
        raise ConfigurationError(f"step must be >= 1, got {step}")
    if high < low:
        raise ConfigurationError(f"need low <= high, got {low}..{high}")
    return list(range(low, high + 1, step))


def convergence_time_sweep(
    protocol,
    ns: List[int],
    reps: int,
    model: str = "sequential",
    make_config: Optional[Callable[[int], ColorConfiguration]] = None,
    seed: SeedLike = 20170725,
    initial: str = "benchmark-split",
    initial_params: Optional[Dict] = None,
    executor: str = "serial",
    cache=None,
    workers: Optional[int] = None,
) -> Dict[int, list]:
    """Replicated convergence-time sweep over an ``n``-grid on ``K_n``.

    For every ``n`` in *ns* this runs *reps* independent replications
    of *protocol* under *model* — the whole T-series workload shape
    ("estimate a convergence time distribution at each grid point") at
    the cost of one run per grid point.  Returns
    ``{n: [RunResult, ...]}`` in replication order; each grid point
    consumes an independent child stream of the master *seed*.

    *protocol* may be a registered protocol *name* (the declarative
    path: the whole ``n``-grid becomes one
    :class:`~repro.api.campaign.CampaignSpec` — an ``n`` axis zipped
    with explicit per-point seeds — run through
    :func:`repro.api.run_campaign`, with *initial* / *initial_params*
    naming the initial condition) or a protocol *object* (the original
    PR-2 path, kept as a value-for-value shim: routed through
    :func:`repro.engine.dispatch.fastest_engine` with ``n_reps=reps``
    so eligible (protocol, ``K_n``) pairs take the ensemble-vectorised
    engines, with *make_config* mapping ``n`` to the configuration).
    Both paths draw every replication from the same law; the spec path
    derives per-grid-point integer seeds (so its specs stay
    serializable) while the object path spawns ``SeedSequence``
    children, so only the object path replays pre-API sweeps
    bit-for-bit.  The campaign routing is value-for-value with the
    pre-campaign spec path (asserted in ``tests/test_sweeps.py``).

    *executor*, *cache* and *workers* apply to the spec path only and
    are forwarded to :func:`repro.api.run_campaign` — ``cache`` gives
    skip-completed resume across invocations, ``executor="process"``
    fans grid points over worker processes.  The defaults (serial, no
    cache) preserve the historical single-process behaviour.

    *make_config* maps ``n`` to the initial configuration (default: a
    60/40 two-colour split, the engine benchmark workload); passing it
    forces the object path.
    """
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    spec_initial_requested = initial != "benchmark-split" or initial_params is not None
    if spec_initial_requested and (make_config is not None or not isinstance(protocol, str)):
        # The object path builds configurations through make_config and
        # would silently ignore these; refuse rather than sweep the
        # wrong workload.
        raise ConfigurationError(
            "initial/initial_params apply to the spec path only (string protocol, "
            "no make_config); pass make_config to shape the object path"
        )

    if isinstance(protocol, str) and make_config is None:
        from ..api import CampaignSpec, SimulationSpec, SweepSpec, run_campaign
        from ..core.rng import spawn_seeds

        if not ns:
            return {}
        base = SimulationSpec(
            protocol=protocol,
            n=int(ns[0]),
            model=model,
            initial=initial,
            initial_params=dict(initial_params or {}),
            reps=reps,
        )
        # The historical per-grid-point seeds, pinned as an explicit
        # zipped axis so the campaign reproduces the pre-campaign spec
        # path value-for-value (seed derivation included).
        campaign = CampaignSpec(
            base=base,
            sweep=SweepSpec(
                axes={"n": [int(n) for n in ns], "seed": spawn_seeds(seed, len(ns))},
                mode="zip",
            ),
            seed=int(seed) if isinstance(seed, int) else 0,
            name=f"convergence-time-sweep/{protocol}/{model}",
        )
        result = run_campaign(campaign, executor=executor, cache=cache, workers=workers)
        return {int(point.overrides["n"]): point.result.runs for point in result.points}

    from ..engine.dispatch import fastest_engine
    from ..engine.ensemble import run_replicated
    from ..graphs.complete import CompleteGraph

    if isinstance(protocol, str):
        from ..api import PROTOCOLS

        protocol = PROTOCOLS.get(protocol).build(model)
    if make_config is None:
        make_config = benchmark_split
    out = {}
    for n, child in zip(ns, spawn_seed_sequences(seed, len(ns))):
        engine = fastest_engine(protocol, CompleteGraph(n), model=model, n_reps=reps)
        out[int(n)] = run_replicated(engine, make_config(n), reps, seed=child)
    return out

"""Parameter-grid helpers for the experiment sweeps."""

from __future__ import annotations

import math
from typing import List

from ..core.exceptions import ConfigurationError

__all__ = ["log_spaced_ints", "powers_of_two", "linear_ints"]


def log_spaced_ints(low: int, high: int, count: int) -> List[int]:
    """*count* distinct integers, geometrically spaced in ``[low, high]``.

    Used for ``n`` sweeps where the theorems predict logarithmic or
    power-law behaviour — equal spacing in log-space gives every decade
    equal weight in the slope fits.
    """
    if low < 1 or high < low:
        raise ConfigurationError(f"need 1 <= low <= high, got {low}..{high}")
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if count == 1:
        return [low]
    ratio = (high / low) ** (1.0 / (count - 1))
    values = []
    for i in range(count):
        value = int(round(low * ratio**i))
        if not values or value > values[-1]:
            values.append(value)
    values[-1] = high
    return sorted(set(values))


def powers_of_two(low: int, high: int) -> List[int]:
    """All powers of two in ``[low, high]``."""
    if low < 1 or high < low:
        raise ConfigurationError(f"need 1 <= low <= high, got {low}..{high}")
    exponent = max(0, math.ceil(math.log2(low)))
    values = []
    while 2**exponent <= high:
        values.append(2**exponent)
        exponent += 1
    if not values:
        raise ConfigurationError(f"no power of two in [{low}, {high}]")
    return values


def linear_ints(low: int, high: int, step: int) -> List[int]:
    """Arithmetic grid ``low, low+step, ... <= high``."""
    if step < 1:
        raise ConfigurationError(f"step must be >= 1, got {step}")
    if high < low:
        raise ConfigurationError(f"need low <= high, got {low}..{high}")
    return list(range(low, high + 1, step))

"""Workload generators: initial configurations and sweep grids."""

from .initial import (
    additive_gap,
    balanced,
    dirichlet_random,
    multiplicative_bias,
    power_law,
    theorem_1_1_gap,
    two_colors,
)
from .sweeps import linear_ints, log_spaced_ints, powers_of_two

__all__ = [
    "additive_gap",
    "balanced",
    "dirichlet_random",
    "multiplicative_bias",
    "power_law",
    "theorem_1_1_gap",
    "two_colors",
    "linear_ints",
    "log_spaced_ints",
    "powers_of_two",
]

"""Workload generators: initial configurations and sweep grids."""

from .initial import (
    additive_gap,
    balanced,
    benchmark_split,
    dirichlet_random,
    multiplicative_bias,
    power_law,
    theorem_1_1_gap,
    two_colors,
)
from .robustness import (
    critical_rates,
    fault_axis,
    phase_map,
    robustness_campaign,
    zipf_robustness_campaign,
)
from .sweeps import convergence_time_sweep, linear_ints, log_spaced_ints, powers_of_two

__all__ = [
    "additive_gap",
    "balanced",
    "dirichlet_random",
    "multiplicative_bias",
    "power_law",
    "theorem_1_1_gap",
    "two_colors",
    "benchmark_split",
    "convergence_time_sweep",
    "critical_rates",
    "fault_axis",
    "linear_ints",
    "log_spaced_ints",
    "phase_map",
    "powers_of_two",
    "robustness_campaign",
    "zipf_robustness_campaign",
]

"""Initial opinion configurations for every experiment.

The theorems are parameterised by the initial bias structure; these
generators produce exactly the configurations the statements quantify
over:

* :func:`additive_gap` — balanced runners-up with an explicit additive
  gap ``c1 - c2`` (Theorem 1.1, including its worst case
  ``c2 = ... = ck``).
* :func:`multiplicative_bias` — ``c1 = ratio * c2`` with balanced
  runners-up (Theorem 1.3's ``c1 >= (1 + eps) ci``).
* :func:`balanced` — no bias at all (lower-bound studies).
* :func:`power_law` / :func:`dirichlet_random` — skewed landscapes for
  the example applications and robustness checks.

All generators return counts sorted in descending order (colour 0 is
the plurality) that sum exactly to ``n``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..api.registry import ParamSpec, register_initial
from ..core.colors import ColorConfiguration, zipf_counts
from ..core.exceptions import ConfigurationError
from ..core.rng import SeedLike, as_generator

__all__ = [
    "balanced",
    "additive_gap",
    "multiplicative_bias",
    "theorem_1_1_gap",
    "power_law",
    "dirichlet_random",
    "two_colors",
    "benchmark_split",
]


def _validate(n: int, k: int) -> None:
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if n < k:
        raise ConfigurationError(f"need n >= k so every colour has a supporter (n={n}, k={k})")


def _exact_sum(counts: np.ndarray, n: int) -> ColorConfiguration:
    """Fix rounding drift, keep order descending, and validate."""
    counts = np.asarray(counts, dtype=np.int64)
    drift = n - int(counts.sum())
    counts[0] += drift
    counts = np.sort(counts)[::-1]
    if counts[-1] < 1:
        raise ConfigurationError(
            f"configuration leaves a colour empty: {counts.tolist()} (reduce bias or k)"
        )
    return ColorConfiguration(counts.tolist())


def balanced(n: int, k: int) -> ColorConfiguration:
    """As equal as possible: ``c1 - ck <= 1`` (zero-bias baseline)."""
    _validate(n, k)
    share, remainder = divmod(n, k)
    counts = np.full(k, share, dtype=np.int64)
    counts[:remainder] += 1
    return ColorConfiguration(counts.tolist())


def additive_gap(n: int, k: int, gap: int) -> ColorConfiguration:
    """``c1 = c2 + gap`` with ``c2 = ... = ck`` (Theorem 1.1's regime).

    The balanced runners-up make this the hardest instance for a given
    gap — exactly the configuration the lower bound is proved on.
    """
    _validate(n, k)
    if gap < 0:
        raise ConfigurationError(f"gap must be non-negative, got {gap}")
    if k == 1:
        return ColorConfiguration([n])
    rest = (n - gap) // k
    if rest < 1:
        raise ConfigurationError(f"gap={gap} too large for n={n}, k={k}")
    counts = np.full(k, rest, dtype=np.int64)
    counts[0] = n - rest * (k - 1)
    if counts[0] - rest < gap:
        raise ConfigurationError(f"cannot realise gap={gap} with n={n}, k={k}")
    return _exact_sum(counts, n)


def theorem_1_1_gap(n: int, k: int, z: float = 1.0) -> ColorConfiguration:
    """Theorem 1.1's threshold instance: gap exactly ``z sqrt(n log n)``."""
    gap = int(math.ceil(z * math.sqrt(n * max(math.log(n), 1.0))))
    return additive_gap(n, k, gap)


def multiplicative_bias(n: int, k: int, ratio: float) -> ColorConfiguration:
    """``c1 ~ ratio * c2`` with ``c2 = ... = ck`` (Theorem 1.3's regime)."""
    _validate(n, k)
    if ratio < 1.0:
        raise ConfigurationError(f"ratio must be >= 1, got {ratio}")
    if k == 1:
        return ColorConfiguration([n])
    # Solve ratio * c + (k - 1) * c = n for the runner-up size c.
    c = int(n / (ratio + (k - 1)))
    if c < 1:
        raise ConfigurationError(f"ratio={ratio} too large for n={n}, k={k}")
    counts = np.full(k, c, dtype=np.int64)
    counts[0] = n - c * (k - 1)
    return _exact_sum(counts, n)


def power_law(n: int, k: int, alpha: float = 1.0) -> ColorConfiguration:
    """Zipf-like support: ``c_j`` proportional to ``(j + 1)^(-alpha)``."""
    _validate(n, k)
    if alpha < 0:
        raise ConfigurationError(f"alpha must be non-negative, got {alpha}")
    weights = (np.arange(1, k + 1, dtype=float)) ** (-alpha)
    raw = weights / weights.sum() * (n - k)
    counts = np.floor(raw).astype(np.int64) + 1  # everyone keeps >= 1
    return _exact_sum(counts, n)


def dirichlet_random(n: int, k: int, concentration: float = 1.0, seed: SeedLike = None) -> ColorConfiguration:
    """Random shares drawn from a symmetric Dirichlet distribution."""
    _validate(n, k)
    if concentration <= 0:
        raise ConfigurationError(f"concentration must be positive, got {concentration}")
    rng = as_generator(seed)
    shares = rng.dirichlet(np.full(k, concentration))
    counts = np.floor(shares * (n - k)).astype(np.int64) + 1
    return _exact_sum(counts, n)


def two_colors(n: int, gap: int) -> ColorConfiguration:
    """The classic ``k = 2`` setting with an explicit gap."""
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if gap < 0:
        raise ConfigurationError(f"gap must be non-negative, got {gap}")
    c1 = (n + gap + 1) // 2
    c2 = n - c1
    if c2 < 1:
        raise ConfigurationError(f"gap={gap} too large for n={n}")
    return ColorConfiguration([c1, c2])


def benchmark_split(n: int) -> ColorConfiguration:
    """The 60/40 two-colour split of the engine benchmarks.

    The canonical workload of ``BENCH_engines.json`` and the default of
    :func:`repro.workloads.sweeps.convergence_time_sweep` — one shared
    definition so the benchmark tables, the looped-vs-ensemble
    comparison and the sweep default cannot drift apart.
    """
    majority = int(round(0.6 * n))
    return ColorConfiguration([majority, n - majority])


_K = ParamSpec("k", kind="int", required=True, doc="number of colours")

register_initial(
    "balanced",
    balanced,
    params=[_K],
    description="As equal as possible: c1 - ck <= 1 (zero-bias baseline)",
)
register_initial(
    "additive-gap",
    additive_gap,
    params=[_K, ParamSpec("gap", kind="int", required=True, doc="additive bias c1 - c2")],
    description="c1 = c2 + gap with balanced runners-up (Theorem 1.1's regime)",
)
register_initial(
    "theorem-1-1-gap",
    theorem_1_1_gap,
    params=[_K, ParamSpec("z", kind="float", default=1.0, doc="gap multiplier on sqrt(n log n)")],
    description="Theorem 1.1's threshold instance: gap exactly z * sqrt(n log n)",
)
register_initial(
    "multiplicative-bias",
    multiplicative_bias,
    params=[_K, ParamSpec("ratio", kind="float", required=True, doc="bias ratio c1 / c2")],
    description="c1 ~ ratio * c2 with balanced runners-up (Theorem 1.3's regime)",
)
register_initial(
    "power-law",
    power_law,
    params=[_K, ParamSpec("alpha", kind="float", default=1.0, doc="Zipf exponent")],
    description="Zipf-like support: c_j proportional to (j + 1)^(-alpha)",
)
register_initial(
    "two-colors",
    two_colors,
    params=[ParamSpec("gap", kind="int", required=True, doc="additive bias c1 - c2")],
    description="The classic k = 2 setting with an explicit gap",
)
register_initial(
    "benchmark-split",
    benchmark_split,
    description="The 60/40 two-colour split of the engine benchmarks",
)


@register_initial(
    "dirichlet",
    params=[
        _K,
        ParamSpec("concentration", kind="float", default=1.0, doc="symmetric Dirichlet parameter"),
        ParamSpec("init_seed", kind="int", doc="seed for the random shares"),
    ],
    description="Random shares drawn from a symmetric Dirichlet distribution",
)
def _dirichlet_of_n(n: int, k: int, concentration: float = 1.0, init_seed: int = None) -> ColorConfiguration:
    """Registry adapter for :func:`dirichlet_random` (seed renamed so a
    spec's master seed and the configuration's own seed stay distinct)."""
    return dirichlet_random(n, k, concentration=concentration, seed=init_seed)


@register_initial(
    "zipf-sampled",
    params=[
        _K,
        ParamSpec("alpha", kind="float", default=1.0, doc="Zipf exponent"),
        ParamSpec("init_seed", kind="int", doc="seed for the multinomial draw"),
    ],
    description="One multinomial draw over Zipf weights (sampled heavy tail; colours may be empty)",
)
def _zipf_sampled_of_n(n: int, k: int, alpha: float = 1.0, init_seed: int = None) -> ColorConfiguration:
    """Registry adapter for :func:`repro.core.colors.zipf_counts`
    (seed renamed so a spec's master seed and the configuration's own
    seed stay distinct, matching the ``dirichlet`` idiom)."""
    from ..core.rng import as_generator

    return zipf_counts(n, k, alpha=alpha, rng=as_generator(init_seed))

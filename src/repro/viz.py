"""Terminal-first visualisation helpers.

The library is offline- and CI-friendly, so its "plots" are plain
text: sparklines for traces, horizontal bars for comparisons, and a
log–log scatter grid for scaling sweeps.  The examples and the CLI use
these; everything returns strings so tests can assert on them.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .core.exceptions import ConfigurationError

__all__ = ["sparkline", "hbar_chart", "scatter_loglog"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], peak: Optional[float] = None) -> str:
    """Eight-level block rendering of a series (empty input -> '')."""
    values = [float(v) for v in values]
    if not values:
        return ""
    top = float(peak) if peak is not None else max(values)
    if top <= 0:
        return " " * len(values)
    out = []
    for value in values:
        level = min(8, max(0, int(round(8 * value / top))))
        out.append(_BLOCKS[level])
    return "".join(out)


def hbar_chart(labels: Sequence[str], values: Sequence[float], width: int = 40) -> str:
    """Labelled horizontal bars, scaled to the maximum value."""
    labels = [str(label) for label in labels]
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ConfigurationError(f"{len(labels)} labels but {len(values)} values")
    if not values:
        return ""
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    top = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "" if top <= 0 else "#" * max(0, int(round(width * value / top)))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:g}")
    return "\n".join(lines)


def scatter_loglog(
    x: Sequence[float],
    y: Sequence[float],
    rows: int = 12,
    cols: int = 48,
    marker: str = "*",
) -> str:
    """ASCII scatter plot with logarithmic axes.

    Useful for eyeballing the scaling sweeps (T1/T2/T6): a power law is
    a straight line, a logarithm is a flattening curve.
    """
    x = [float(v) for v in x]
    y = [float(v) for v in y]
    if len(x) != len(y) or not x:
        raise ConfigurationError("x and y must be equal-length, non-empty")
    if any(v <= 0 for v in x) or any(v <= 0 for v in y):
        raise ConfigurationError("log axes need strictly positive data")
    if rows < 2 or cols < 2:
        raise ConfigurationError("grid must be at least 2x2")
    lx = [math.log10(v) for v in x]
    ly = [math.log10(v) for v in y]
    x_lo, x_hi = min(lx), max(lx)
    y_lo, y_hi = min(ly), max(ly)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    grid = [[" "] * cols for _ in range(rows)]
    for px, py in zip(lx, ly):
        col = int(round((px - x_lo) / x_span * (cols - 1)))
        row = rows - 1 - int(round((py - y_lo) / y_span * (rows - 1)))
        grid[row][col] = marker
    lines = ["".join(row_cells) for row_cells in grid]
    header = f"y: {10 ** y_lo:.3g} .. {10 ** y_hi:.3g} (log)"
    footer = f"x: {10 ** x_lo:.3g} .. {10 ** x_hi:.3g} (log)"
    return "\n".join([header] + ["|" + line for line in lines] + [footer])

"""Deterministic mean-field dynamics of the synchronous protocols.

On ``K_n`` the expected one-round update of the colour *fractions*
``p_j = c_j / n`` has a closed form for every protocol in this library;
iterating it gives the ``n -> infinity`` deterministic trajectory that
the stochastic processes concentrate around (law of large numbers).
This module provides those maps, their iteration, and a deterministic
rounds-to-dominance predictor — the quantitative backbone behind
the round counts measured in experiments T1/T2/T4.

The maps (self-sampling corrections vanish as ``n -> infinity``):

* **voter**:        ``p_j' = p_j``                      (a martingale — no drift)
* **two-choices**:  ``p_j' = p_j (1 - S2) + p_j²``       with ``S2 = Σ p_i²``
* **3-majority**:   ``p_j' = p_j + p_j (p_j - S2)``      (same drift as two-choices!)
* **usd**:          on the extended simplex with an undecided mass ``u``:
  decided ``p_j' = p_j (p_j + u)``, plus undecided adopting ``u·p_j``.

The well-known coincidence that 3-majority and two-choices share the
same mean-field drift (they differ only in noise) is checked in the
tests.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.exceptions import ConfigurationError

__all__ = [
    "voter_map",
    "two_choices_map",
    "three_majority_map",
    "undecided_state_map",
    "iterate_map",
    "rounds_to_dominance",
    "MEAN_FIELD_MAPS",
]


def _validate_simplex(p: np.ndarray) -> np.ndarray:
    p = np.asarray(p, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise ConfigurationError("fractions must be a non-empty 1-D vector")
    if (p < -1e-12).any():
        raise ConfigurationError("fractions must be non-negative")
    total = p.sum()
    if abs(total - 1.0) > 1e-9:
        raise ConfigurationError(f"fractions must sum to 1, got {total}")
    return np.clip(p, 0.0, 1.0)


def voter_map(p: Sequence[float]) -> np.ndarray:
    """Pull voting drifts nowhere: the expected fractions are fixed."""
    return _validate_simplex(p).copy()


def two_choices_map(p: Sequence[float]) -> np.ndarray:
    """``p_j' = p_j (1 - S2) + p_j²``: keep unless both samples agree on
    some colour (probability ``S2``), adopt your own colour's square."""
    p = _validate_simplex(p)
    s2 = float(np.sum(p * p))
    return p * (1.0 - s2) + p * p


def three_majority_map(p: Sequence[float]) -> np.ndarray:
    """Adopt the majority of three samples (first-sample tie-break).

    ``P(adopt j) = q³ + 3q²(1-q) + q((1-q)² - (S2 - q²))`` reduces to
    ``p_j + p_j (p_j - S2)`` — the same drift as Two-Choices.
    """
    p = _validate_simplex(p)
    s2 = float(np.sum(p * p))
    return p + p * (p - s2)


def undecided_state_map(p_extended: Sequence[float]) -> np.ndarray:
    """USD on the extended simplex ``(p_1..p_k, u)``.

    A decided-``j`` node stays decided iff it samples its own colour or
    an undecided node; an undecided node adopts the colour it samples.
    """
    p = _validate_simplex(p_extended)
    if p.size < 2:
        raise ConfigurationError("usd map needs at least one colour plus the undecided slot")
    colors, u = p[:-1], p[-1]
    new_colors = colors * (colors + u) + u * colors
    new_u = 1.0 - float(new_colors.sum())
    return np.append(new_colors, max(0.0, new_u))


MEAN_FIELD_MAPS = {
    "voter": voter_map,
    "two-choices": two_choices_map,
    "three-majority": three_majority_map,
    "undecided-state": undecided_state_map,
}


def iterate_map(
    step: Callable[[np.ndarray], np.ndarray],
    initial: Sequence[float],
    rounds: int,
) -> np.ndarray:
    """Iterate a mean-field map; returns a ``(rounds + 1, k)`` trajectory."""
    if rounds < 0:
        raise ConfigurationError(f"rounds must be non-negative, got {rounds}")
    trajectory = [np.asarray(initial, dtype=float)]
    for _ in range(rounds):
        trajectory.append(step(trajectory[-1]))
    return np.vstack(trajectory)


def rounds_to_dominance(
    step: Callable[[np.ndarray], np.ndarray],
    initial: Sequence[float],
    threshold: float = 0.99,
    max_rounds: int = 100_000,
) -> Optional[int]:
    """Deterministic rounds until the leading fraction reaches *threshold*.

    Returns ``None`` when the map stalls (e.g. the voter martingale, or
    an exactly tied start on a symmetric map).
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    state = np.asarray(initial, dtype=float)
    for round_index in range(max_rounds + 1):
        if float(state.max()) >= threshold:
            return round_index
        advanced = step(state)
        if np.allclose(advanced, state, atol=1e-15):
            return None
        state = advanced
    return None

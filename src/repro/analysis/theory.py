"""Closed-form predictions from the paper's theorems.

Every experiment compares a measured series against the corresponding
function here (up to a constant factor, fitted — not assumed — by the
harness).  Keeping them in one module makes the "paper-vs-measured"
bookkeeping in EXPERIMENTS.md mechanical.

Logarithms are natural throughout; the theorems are stated up to
constants, so the base only rescales the fitted constant.
"""

from __future__ import annotations

import math

from ..core.exceptions import ConfigurationError

__all__ = [
    "two_choices_rounds",
    "two_choices_required_gap",
    "two_choices_lower_bound",
    "critical_gap",
    "one_extra_bit_rounds",
    "one_extra_bit_required_gap",
    "async_parallel_time",
    "async_max_opinions",
    "sequential_tick_spread",
    "delta",
    "sync_gadget_samples",
    "quadratic_amplification",
]


def _check_n(n: int) -> None:
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")


def two_choices_rounds(n: int, c1: int) -> float:
    """Theorem 1.1 upper bound shape: ``(n / c1) * log n`` rounds."""
    _check_n(n)
    if not 0 < c1 <= n:
        raise ConfigurationError(f"c1 must be in 1..{n}, got {c1}")
    return (n / c1) * math.log(n)


def two_choices_required_gap(n: int, z: float = 1.0) -> float:
    """Theorem 1.1 bias precondition: ``z * sqrt(n log n)``."""
    _check_n(n)
    return z * math.sqrt(n * math.log(n))


def two_choices_lower_bound(n: int, c1: int) -> float:
    """Theorem 1.1 lower bound shape: ``n / c1 + log n`` rounds.

    With balanced runners-up (``c2 = ... = ck``) and ``c1 ~ n / k``
    this is the ``Omega(k)`` wall the OneExtraBit protocol beats.
    """
    _check_n(n)
    if not 0 < c1 <= n:
        raise ConfigurationError(f"c1 must be in 1..{n}, got {c1}")
    return n / c1 + math.log(n)


def critical_gap(n: int) -> float:
    """The ``O(sqrt n)`` gap at which C2 wins with constant probability."""
    _check_n(n)
    return math.sqrt(n)


def one_extra_bit_rounds(n: int, k: int, c1: int, c2: int) -> float:
    """Theorem 1.2 shape:
    ``(log(c1 / (c1 - c2)) + log log n) * (log k + log log n)``.
    """
    _check_n(n)
    if not 0 < c2 < c1 <= n:
        raise ConfigurationError(f"need 0 < c2 < c1 <= n, got c1={c1}, c2={c2}")
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    log_log_n = math.log(max(math.log(n), math.e))
    phase_count = math.log(c1 / (c1 - c2)) + log_log_n
    phase_length = math.log(k) + log_log_n
    return max(phase_count, 1.0) * max(phase_length, 1.0)


def one_extra_bit_required_gap(n: int, z: float = 1.0) -> float:
    """Theorem 1.2 bias precondition: ``z * sqrt(n) * log^{3/2} n``."""
    _check_n(n)
    return z * math.sqrt(n) * math.log(n) ** 1.5


def async_parallel_time(n: int) -> float:
    """Theorem 1.3 shape: ``Theta(log n)`` parallel time — also the
    universal lower bound (some node stays unselected for
    ``Omega(log n)`` time in the sequential model)."""
    _check_n(n)
    return math.log(n)


def async_max_opinions(n: int) -> float:
    """Theorem 1.3's admissible opinions: ``exp(log n / log log n)``."""
    _check_n(n)
    log_n = math.log(n)
    return math.exp(log_n / max(math.log(log_n), 1.0))


def sequential_tick_spread(n: int) -> float:
    """Section 3: numbers of ticks of different nodes differ by up to
    ``O(log n)`` over ``Theta(log n)`` time without synchronisation."""
    _check_n(n)
    return math.log(n)


def delta(n: int) -> float:
    """The weak-synchronicity tolerance ``Theta(log n / log log n)``."""
    _check_n(n)
    log_n = math.log(n)
    return log_n / max(math.log(log_n), 1.0)


def sync_gadget_samples(n: int) -> float:
    """The Sync Gadget's sampling length ``log^3 log n``."""
    _check_n(n)
    return max(math.log(max(math.log(n), math.e)), 1.0) ** 3


def quadratic_amplification(ratio: float) -> float:
    """Per-phase growth of ``c1 / cj``: the paper's
    ``c1'/cj' >= (1 - o(1)) (c1/cj)^2``."""
    if ratio <= 0:
        raise ConfigurationError(f"ratio must be positive, got {ratio}")
    return ratio * ratio

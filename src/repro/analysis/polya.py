"""Pólya urn model — the analysis device behind Bit-Propagation.

The paper (Section 3.1): "By modeling the process as a Pólya urn
process and by using martingale techniques, we show that the
distribution of colors among the nodes which set a bit after the
Two-Choices sub-phase remains almost unchanged at the end of the
Bit-Propagation sub-phase."

The correspondence: the *bit-set* nodes are the balls in the urn, with
ball colours = node colours.  When a bit-less node finds a bit-set node
and adopts its colour-and-bit, the urn gains one ball whose colour was
drawn proportionally to the current urn composition — exactly a Pólya
urn with unit reinforcement.  The colour *fractions* inside the urn are
therefore martingales: Bit-Propagation grows the bit-set population
without (in expectation) changing its colour mix, which is the property
the whole phase construction rests on (experiment T8 measures it).

This module implements the generalised urn (arbitrary reinforcement
matrix diagonal) together with the exact moments used by the tests.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.rng import SeedLike, as_generator

__all__ = ["PolyaUrn", "limit_beta_parameters", "limit_fraction_variance"]


class PolyaUrn:
    """A ``k``-colour Pólya urn with constant reinforcement.

    Parameters
    ----------
    initial:
        Positive initial ball counts per colour.
    reinforcement:
        Balls of the drawn colour added back *in addition to* returning
        the drawn ball (the classical urn has ``reinforcement=1``).
    """

    def __init__(self, initial: Sequence[int], reinforcement: int = 1):
        counts = np.asarray(list(initial), dtype=np.int64)
        if counts.ndim != 1 or counts.size < 1:
            raise ConfigurationError("initial must be a non-empty 1-D sequence")
        if (counts < 0).any() or counts.sum() <= 0:
            raise ConfigurationError("initial counts must be non-negative with a positive total")
        if reinforcement < 1:
            raise ConfigurationError(f"reinforcement must be >= 1, got {reinforcement}")
        self.counts = counts.copy()
        self.initial = counts.copy()
        self.reinforcement = int(reinforcement)
        self.draws = 0

    @property
    def k(self) -> int:
        return self.counts.size

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def fractions(self) -> np.ndarray:
        """Current colour fractions (the martingale coordinates)."""
        return self.counts / self.counts.sum()

    def step(self, rng: np.random.Generator) -> int:
        """Draw one ball, reinforce its colour; returns the drawn colour."""
        probs = self.counts / self.counts.sum()
        color = int(rng.choice(self.k, p=probs))
        self.counts[color] += self.reinforcement
        self.draws += 1
        return color

    def run(self, steps: int, seed: SeedLike = None, record_every: int = 0) -> Optional[np.ndarray]:
        """Perform *steps* draws.

        With ``record_every > 0`` returns a ``(snapshots, k)`` matrix of
        colour fractions (including the initial state); otherwise
        returns ``None`` and only mutates the urn.
        """
        if steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {steps}")
        rng = as_generator(seed)
        history: List[np.ndarray] = []
        if record_every > 0:
            history.append(self.fractions())
        for i in range(steps):
            self.step(rng)
            if record_every > 0 and (i + 1) % record_every == 0:
                history.append(self.fractions())
        if record_every > 0:
            return np.vstack(history)
        return None

    def reset(self) -> None:
        """Restore the initial composition."""
        self.counts = self.initial.copy()
        self.draws = 0


def limit_beta_parameters(initial: Sequence[int], color: int, reinforcement: int = 1):
    """Parameters of the limiting Beta law of one colour's fraction.

    For the classical urn the fraction of colour ``j`` converges a.s.
    to a ``Beta(a_j / r, (A - a_j) / r)`` random variable, where ``a_j``
    is the initial count of ``j``, ``A`` the initial total and ``r`` the
    reinforcement.
    """
    counts = np.asarray(list(initial), dtype=float)
    if not 0 <= color < counts.size:
        raise ConfigurationError(f"colour {color} out of range")
    a = counts[color] / reinforcement
    b = (counts.sum() - counts[color]) / reinforcement
    return a, b


def limit_fraction_variance(initial: Sequence[int], color: int, reinforcement: int = 1) -> float:
    """Variance of the limiting fraction, ``p (1 - p) / (A / r + 1)``.

    This upper-bounds the variance after any finite number of draws
    (the fraction is a bounded martingale, so variances increase to the
    limit) — the quantitative form of "the colour distribution among
    bit-set nodes remains almost unchanged" when the urn starts large.
    """
    a, b = limit_beta_parameters(initial, color, reinforcement)
    total = a + b
    p = a / total
    return p * (1.0 - p) / (total + 1.0)

"""Analysis: urn models, martingale diagnostics, statistics, theory."""

from .convergence import per_phase_ratio_growth, ratio_trace, synchrony_summary, time_to_fraction
from .meanfield import (
    MEAN_FIELD_MAPS,
    iterate_map,
    rounds_to_dominance,
    three_majority_map,
    two_choices_map,
    undecided_state_map,
    voter_map,
)
from .martingale import (
    azuma_hoeffding_bound,
    empirical_drift,
    increment_means,
    is_supermartingale_like,
    max_increment_mean,
)
from .polya import PolyaUrn, limit_beta_parameters, limit_fraction_variance
from .statistics import (
    SuccessEstimate,
    bootstrap_mean_ci,
    estimate_success,
    fit_log_slope,
    fit_power_law,
    ks_permutation_test,
    summarize,
    wilson_interval,
)
from . import theory

__all__ = [
    "per_phase_ratio_growth",
    "ratio_trace",
    "synchrony_summary",
    "time_to_fraction",
    "azuma_hoeffding_bound",
    "empirical_drift",
    "increment_means",
    "is_supermartingale_like",
    "max_increment_mean",
    "PolyaUrn",
    "MEAN_FIELD_MAPS",
    "iterate_map",
    "rounds_to_dominance",
    "three_majority_map",
    "two_choices_map",
    "undecided_state_map",
    "voter_map",
    "limit_beta_parameters",
    "limit_fraction_variance",
    "SuccessEstimate",
    "bootstrap_mean_ci",
    "estimate_success",
    "fit_log_slope",
    "fit_power_law",
    "ks_permutation_test",
    "summarize",
    "wilson_interval",
    "theory",
]

"""Trace analysis: convergence times, amplification, synchrony summaries.

These helpers post-process :class:`~repro.core.results.Trace` objects
and the asynchronous protocol's ``spread_trace`` metadata into the
scalar observables the experiments report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.results import RunResult, Trace

__all__ = [
    "time_to_fraction",
    "ratio_trace",
    "per_phase_ratio_growth",
    "synchrony_summary",
]


def time_to_fraction(trace: Trace, fraction: float) -> Optional[float]:
    """First snapshot time at which the plurality share reaches *fraction*.

    Returns ``None`` when the trace never gets there.  Granularity is
    the trace's recording interval.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    matrix = trace.count_matrix()
    if matrix.size == 0:
        return None
    totals = matrix.sum(axis=1)
    shares = matrix.max(axis=1) / totals
    hits = np.flatnonzero(shares >= fraction)
    if hits.size == 0:
        return None
    return float(trace.points[int(hits[0])].time)


def ratio_trace(trace: Trace) -> np.ndarray:
    """``c1 / c2`` (largest over second largest) at every snapshot.

    Snapshots where ``c2 = 0`` yield ``inf``.
    """
    matrix = trace.count_matrix().astype(float)
    if matrix.size == 0:
        return np.empty(0)
    ordered = np.sort(matrix, axis=1)[:, ::-1]
    if ordered.shape[1] == 1:
        return np.full(ordered.shape[0], np.inf)
    with np.errstate(divide="ignore"):
        return np.where(ordered[:, 1] > 0, ordered[:, 0] / np.maximum(ordered[:, 1], 1e-300), np.inf)


def per_phase_ratio_growth(ratios: Sequence[float]) -> List[float]:
    """Exponents ``log r_{p+1} / log r_p`` between consecutive phases.

    The paper predicts values approaching 2 (quadratic amplification,
    experiment T5) while the ratios remain moderate; saturation (``c2``
    hitting zero) truncates the series.
    """
    growth = []
    for before, after in zip(ratios, ratios[1:]):
        if not np.isfinite(before) or not np.isfinite(after) or before <= 1.0:
            break
        growth.append(float(np.log(after) / np.log(before)))
    return growth


def synchrony_summary(result: RunResult, until_parallel_time: Optional[float] = None) -> Dict:
    """Aggregate the async run's working-time ``spread_trace``.

    Returns the worst and mean full spread, the worst core (99%) spread
    and the worst fraction of poorly synchronised nodes — the
    quantities Theorem 1.3's weak-synchronicity notion bounds.

    Pass ``until_parallel_time=result.metadata["part_one_length"]`` to
    restrict the summary to part one, where the Sync Gadget is active
    (the endgame intentionally stops synchronising).
    """
    spread_trace = result.metadata.get("spread_trace") or []
    if until_parallel_time is not None:
        spread_trace = [e for e in spread_trace if e["time"] <= until_parallel_time]
    if not spread_trace:
        return {
            "samples": 0,
            "max_spread": None,
            "mean_spread": None,
            "max_core_spread": None,
            "max_poor_fraction": None,
        }
    spreads = np.array([entry["spread"] for entry in spread_trace], dtype=float)
    cores = np.array([entry["spread_core"] for entry in spread_trace], dtype=float)
    poor = np.array([entry["poor_fraction"] for entry in spread_trace], dtype=float)
    return {
        "samples": int(spreads.size),
        "max_spread": float(spreads.max()),
        "mean_spread": float(spreads.mean()),
        "max_core_spread": float(cores.max()),
        "max_poor_fraction": float(poor.max()),
    }

"""Empirical martingale and drift diagnostics.

The paper's analysis leans on martingale techniques (Pólya urn
fractions, Azuma/Hoeffding concentration) and drift theory (the
endgame).  These cannot be "reproduced" symbolically, but their
*measurable consequences* can be checked on simulation traces; this
module provides the estimators the tests and experiment T8 use.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError

__all__ = [
    "increment_means",
    "max_increment_mean",
    "azuma_hoeffding_bound",
    "empirical_drift",
    "is_supermartingale_like",
]


def increment_means(paths: np.ndarray) -> np.ndarray:
    """Mean one-step increment at every time index, across sample paths.

    Parameters
    ----------
    paths:
        ``(runs, T)`` matrix; each row is one sampled trajectory of the
        would-be martingale (e.g. a colour fraction over urn draws).

    Returns
    -------
    Length ``T - 1`` vector of ``mean(X_{t+1} - X_t)`` over runs.  For a
    martingale every entry is 0 in expectation; the estimator's noise
    floor scales like ``std / sqrt(runs)``.
    """
    paths = np.asarray(paths, dtype=float)
    if paths.ndim != 2 or paths.shape[1] < 2:
        raise ConfigurationError("paths must be a (runs, T>=2) matrix")
    return np.diff(paths, axis=1).mean(axis=0)


def max_increment_mean(paths: np.ndarray) -> float:
    """Largest absolute mean increment — a scalar martingale violation score."""
    return float(np.max(np.abs(increment_means(paths))))


def azuma_hoeffding_bound(increment_bound: float, steps: int, deviation: float) -> float:
    """Azuma–Hoeffding tail bound ``P(|X_T - X_0| >= d) <= 2 exp(-d^2 / (2 T c^2))``.

    Used to predict how far an urn fraction can drift over a
    Bit-Propagation sub-phase with bounded increments ``c``.
    """
    if increment_bound <= 0 or steps <= 0:
        raise ConfigurationError("increment_bound and steps must be positive")
    exponent = -(deviation**2) / (2.0 * steps * increment_bound**2)
    return min(1.0, 2.0 * math.exp(exponent))


def empirical_drift(paths: np.ndarray) -> Tuple[float, float]:
    """Mean and standard error of the per-step drift across whole paths.

    Drift theory for the endgame predicts a strictly negative drift of
    the minority mass; this estimator quantifies it from traces.
    """
    paths = np.asarray(paths, dtype=float)
    if paths.ndim != 2 or paths.shape[1] < 2:
        raise ConfigurationError("paths must be a (runs, T>=2) matrix")
    per_run = (paths[:, -1] - paths[:, 0]) / (paths.shape[1] - 1)
    mean = float(per_run.mean())
    sem = float(per_run.std(ddof=1) / math.sqrt(paths.shape[0])) if paths.shape[0] > 1 else float("inf")
    return mean, sem


def is_supermartingale_like(paths: np.ndarray, tolerance_sems: float = 3.0) -> bool:
    """True when no time index shows a significantly *positive* mean increment.

    ``tolerance_sems`` standard errors of the per-index increment mean
    are allowed above zero, so the check is robust to sampling noise.
    """
    paths = np.asarray(paths, dtype=float)
    increments = np.diff(paths, axis=1)
    means = increments.mean(axis=0)
    if paths.shape[0] > 1:
        sems = increments.std(axis=0, ddof=1) / math.sqrt(paths.shape[0])
    else:
        sems = np.full(means.shape, np.inf)
    return bool(np.all(means <= tolerance_sems * sems + 1e-12))

"""Statistical utilities for the experiment harness.

All the paper's statements are "with high probability" or in
expectation; the harness estimates them from repeated trials.  This
module provides the estimators used everywhere: Wilson score intervals
for success probabilities, log–log slope fits for scaling exponents,
and bootstrap confidence intervals for means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.rng import SeedLike, as_generator

__all__ = [
    "wilson_interval",
    "SuccessEstimate",
    "estimate_success",
    "fit_power_law",
    "fit_log_slope",
    "bootstrap_mean_ci",
    "summarize",
    "ks_two_sample",
    "ks_permutation_test",
]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because experiment sample
    sizes are modest and success rates sit near 0 or 1 (w.h.p. events).
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(f"successes must be in 0..{trials}, got {successes}")
    p = successes / trials
    denom = 1.0 + z**2 / trials
    centre = (p + z**2 / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
    low = max(0.0, centre - margin)
    high = min(1.0, centre + margin)
    # Degenerate outcomes pin the matching endpoint exactly (guards the
    # point estimate against float round-off at p = 0 or 1).
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return low, high


@dataclass(frozen=True)
class SuccessEstimate:
    """Point estimate plus Wilson interval for a success probability."""

    successes: int
    trials: int
    rate: float
    low: float
    high: float

    def excludes(self, probability: float) -> bool:
        """True when *probability* lies outside the interval."""
        return probability < self.low or probability > self.high


def estimate_success(outcomes: Sequence[bool], z: float = 1.96) -> SuccessEstimate:
    """Summarise boolean trial outcomes."""
    outcomes = list(outcomes)
    trials = len(outcomes)
    successes = sum(1 for o in outcomes if o)
    low, high = wilson_interval(successes, trials, z)
    return SuccessEstimate(successes=successes, trials=trials, rate=successes / trials, low=low, high=high)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``y = C * x^alpha``; returns ``(alpha, C)``.

    Used to check scaling shapes: e.g. Two-Choices round counts vs
    ``n / c1`` should fit ``alpha ~ 1`` (T1), and the async protocol's
    parallel time vs ``log n`` should fit ``alpha ~ 1`` as well (T6).
    """
    x = np.asarray(list(x), dtype=float)
    y = np.asarray(list(y), dtype=float)
    if x.size != y.size or x.size < 2:
        raise ConfigurationError("need >= 2 matching points for a power-law fit")
    if (x <= 0).any() or (y <= 0).any():
        raise ConfigurationError("power-law fits require strictly positive data")
    slope, intercept = np.polyfit(np.log(x), np.log(y), 1)
    return float(slope), float(math.exp(intercept))


def fit_log_slope(x: Sequence[float], y: Sequence[float]) -> float:
    """Slope of ``y`` against ``log x`` (for ``y = a log x + b`` shapes)."""
    x = np.asarray(list(x), dtype=float)
    y = np.asarray(list(y), dtype=float)
    if x.size != y.size or x.size < 2:
        raise ConfigurationError("need >= 2 matching points")
    if (x <= 0).any():
        raise ConfigurationError("log fits require positive x")
    slope, _ = np.polyfit(np.log(x), y, 1)
    return float(slope)


def bootstrap_mean_ci(
    values: Sequence[float], confidence: float = 0.95, resamples: int = 2000, seed: SeedLike = 0
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` via the percentile bootstrap."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    rng = as_generator(seed)
    means = rng.choice(values, size=(resamples, values.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(values.mean()), float(low), float(high)


def ks_two_sample(first: Sequence[float], second: Sequence[float]) -> Tuple[float, float]:
    """Two-sample Kolmogorov–Smirnov test: ``(statistic, p_value)``.

    Used by experiment T10 to compare the *whole distribution* of run
    times between the sequential and continuous models, not just their
    means.  Backed by :func:`scipy.stats.ks_2samp`.
    """
    first = np.asarray(list(first), dtype=float)
    second = np.asarray(list(second), dtype=float)
    if first.size < 2 or second.size < 2:
        raise ConfigurationError("KS test needs at least 2 samples on each side")
    from scipy import stats as scipy_stats

    result = scipy_stats.ks_2samp(first, second)
    return float(result.statistic), float(result.pvalue)


def _ks_statistic(first: np.ndarray, second: np.ndarray) -> float:
    """Two-sample KS statistic ``sup |F1 - F2|`` (handles ties)."""
    pooled = np.concatenate([first, second])
    cdf1 = np.searchsorted(np.sort(first), pooled, side="right") / first.size
    cdf2 = np.searchsorted(np.sort(second), pooled, side="right") / second.size
    return float(np.max(np.abs(cdf1 - cdf2)))


def ks_permutation_test(
    first: Sequence[float],
    second: Sequence[float],
    resamples: int = 2000,
    seed: SeedLike = 0,
) -> Tuple[float, float]:
    """Two-sample KS test with a permutation p-value: ``(statistic, p)``.

    :func:`scipy.stats.ks_2samp`'s asymptotic p-value assumes tie-free
    (continuous) samples.  Convergence times from the tick engines live
    on the discrete ``ticks / n`` grid, and comparing such a tied-grid
    sample against a continuous-time sample inflates the asymptotic
    false-rejection rate to ~9% at 40-vs-40 — the historical T10 flake.
    The permutation null only assumes exchangeability of the pooled
    sample, which holds exactly under "same distribution" whether or
    not ties are present, so this is the test T10 uses for its
    cross-model comparisons.  The p-value uses the standard
    add-one estimate ``(1 + #{D* >= D}) / (1 + resamples)`` and is
    deterministic for a fixed *seed*.
    """
    first = np.asarray(list(first), dtype=float)
    second = np.asarray(list(second), dtype=float)
    if first.size < 2 or second.size < 2:
        raise ConfigurationError("KS test needs at least 2 samples on each side")
    if resamples < 1:
        raise ConfigurationError(f"resamples must be positive, got {resamples}")
    observed = _ks_statistic(first, second)
    pooled = np.concatenate([first, second])
    rng = as_generator(seed)
    hits = 0
    for _ in range(resamples):
        permuted = rng.permutation(pooled)
        if _ks_statistic(permuted[: first.size], permuted[first.size :]) >= observed - 1e-12:
            hits += 1
    return observed, (1 + hits) / (1 + resamples)


def summarize(values: Sequence[float]) -> dict:
    """Compact descriptive summary used in result tables."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    return {
        "count": int(values.size),
        "mean": float(values.mean()),
        "std": float(values.std(ddof=1)) if values.size > 1 else 0.0,
        "min": float(values.min()),
        "median": float(np.median(values)),
        "max": float(values.max()),
    }

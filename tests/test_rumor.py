"""Tests for the rumour-spreading substrate."""

import math

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.graphs.complete import CompleteGraph
from repro.graphs.sparse import ring
from repro.protocols.rumor import RumorState, spread_rumor_agents, spread_rumor_counts


class TestRumorState:
    def test_basic(self):
        state = RumorState(informed=np.array([True, False, False]))
        assert state.n == 3
        assert state.count == 1
        assert not state.all_informed()

    def test_requires_a_source(self):
        with pytest.raises(ConfigurationError):
            RumorState(informed=np.zeros(3, dtype=bool))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            RumorState(informed=np.zeros(0, dtype=bool))


class TestAgentsOnClique:
    @pytest.mark.parametrize("mode", ["push", "pull", "push-pull"])
    def test_completes(self, mode):
        result = spread_rumor_agents(CompleteGraph(500), mode=mode, seed=1)
        assert result.converged
        assert result.final.counts[0] == 500
        assert result.rounds >= math.log2(500) - 1  # cannot beat doubling

    def test_trace_monotone(self):
        result = spread_rumor_agents(CompleteGraph(300), mode="push-pull", seed=2)
        informed = result.trace.count_matrix()[:, 0]
        assert (np.diff(informed) >= 0).all()
        assert informed[0] == 1 and informed[-1] == 300

    def test_doubling_early_growth(self):
        """Push-pull at least doubles the informed set per early round."""
        result = spread_rumor_agents(CompleteGraph(4000), mode="push-pull", seed=3)
        informed = result.trace.count_matrix()[:, 0]
        early = informed[: len(informed) // 2]
        ratios = early[1:] / early[:-1]
        assert np.median(ratios) >= 1.8

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            spread_rumor_agents(CompleteGraph(10), mode="shout")

    def test_invalid_source(self):
        with pytest.raises(ConfigurationError):
            spread_rumor_agents(CompleteGraph(10), source=10)

    def test_max_rounds_budget(self):
        result = spread_rumor_agents(ring(2000), mode="push", max_rounds=3, seed=4)
        assert not result.converged
        assert result.rounds == 3

    def test_ring_is_slow(self):
        """On a ring the rumour moves O(1) hops per round — linear time,
        a useful contrast to the clique's doubling."""
        clique = spread_rumor_agents(CompleteGraph(256), mode="push", seed=5)
        circle = spread_rumor_agents(ring(256), mode="push", seed=5, max_rounds=5_000)
        assert circle.rounds > 4 * clique.rounds


class TestCountsOnClique:
    @pytest.mark.parametrize("mode", ["push", "pull", "push-pull"])
    def test_completes(self, mode):
        result = spread_rumor_counts(100_000, mode=mode, seed=1)
        assert result.converged
        assert result.rounds < 80

    def test_population_conserved(self):
        result = spread_rumor_counts(10_000, seed=2)
        matrix = result.trace.count_matrix()
        assert (matrix.sum(axis=1) == 10_000).all()
        assert (np.diff(matrix[:, 0]) >= 0).all()

    def test_logarithmic_scaling(self):
        rounds = []
        for n in (10_000, 1_000_000):
            values = [spread_rumor_counts(n, mode="push-pull", seed=s).rounds for s in range(5)]
            rounds.append(np.mean(values))
        # x100 in n should cost ~log(100)/log(n) extra, nowhere near x100.
        assert rounds[1] < rounds[0] * 2

    def test_agrees_with_agents_distribution(self):
        """Counts-level and agent-level push must have the same round
        distribution (loose statistical agreement)."""
        n, trials = 2_000, 30
        agent_rounds = [
            spread_rumor_agents(CompleteGraph(n), mode="push", seed=s, record_trace=False).rounds
            for s in range(trials)
        ]
        counts_rounds = [
            spread_rumor_counts(n, mode="push", seed=1_000 + s, record_trace=False).rounds
            for s in range(trials)
        ]
        pooled_sem = np.sqrt((np.var(agent_rounds) + np.var(counts_rounds)) / trials)
        assert abs(np.mean(agent_rounds) - np.mean(counts_rounds)) < 4 * pooled_sem + 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spread_rumor_counts(1)
        with pytest.raises(ConfigurationError):
            spread_rumor_counts(10, initial_informed=0)
        with pytest.raises(ConfigurationError):
            spread_rumor_counts(10, mode="gossip")

    def test_all_informed_start(self):
        result = spread_rumor_counts(100, initial_informed=100, seed=3)
        assert result.converged
        assert result.rounds == 0

    def test_push_pull_beats_push(self):
        push = np.mean([spread_rumor_counts(500_000, mode="push", seed=s).rounds for s in range(5)])
        both = np.mean([spread_rumor_counts(500_000, mode="push-pull", seed=s).rounds for s in range(5)])
        assert both < push

"""Tests for the martingale/drift diagnostics."""

import numpy as np
import pytest

from repro.analysis.martingale import (
    azuma_hoeffding_bound,
    empirical_drift,
    increment_means,
    is_supermartingale_like,
    max_increment_mean,
)
from repro.core.exceptions import ConfigurationError


def _random_walk_paths(runs, steps, drift, seed):
    rng = np.random.default_rng(seed)
    increments = rng.normal(drift, 1.0, size=(runs, steps))
    return np.concatenate([np.zeros((runs, 1)), np.cumsum(increments, axis=1)], axis=1)


class TestIncrementMeans:
    def test_zero_for_martingale(self):
        paths = _random_walk_paths(2000, 30, drift=0.0, seed=1)
        means = increment_means(paths)
        assert means.shape == (30,)
        assert np.abs(means).max() < 0.12  # ~5 sigma of 1/sqrt(2000)

    def test_detects_drift(self):
        paths = _random_walk_paths(2000, 30, drift=0.5, seed=2)
        assert increment_means(paths).min() > 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            increment_means(np.zeros((5,)))
        with pytest.raises(ConfigurationError):
            increment_means(np.zeros((5, 1)))

    def test_max_increment_mean(self):
        paths = _random_walk_paths(500, 10, drift=-0.4, seed=3)
        assert max_increment_mean(paths) > 0.2


class TestAzuma:
    def test_bound_in_unit_interval(self):
        assert 0 < azuma_hoeffding_bound(1.0, 100, 5.0) <= 1.0

    def test_tighter_for_larger_deviation(self):
        small = azuma_hoeffding_bound(1.0, 100, 5.0)
        large = azuma_hoeffding_bound(1.0, 100, 30.0)
        assert large < small

    def test_capped_at_one(self):
        assert azuma_hoeffding_bound(10.0, 10, 0.001) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            azuma_hoeffding_bound(0.0, 10, 1.0)
        with pytest.raises(ConfigurationError):
            azuma_hoeffding_bound(1.0, 0, 1.0)

    def test_empirically_valid_for_bounded_martingale(self):
        """The bound must dominate the empirical tail of a +-c walk."""
        rng = np.random.default_rng(4)
        steps, runs, c = 64, 4000, 1.0
        walks = np.cumsum(rng.choice([-c, c], size=(runs, steps)), axis=1)
        deviation = 2.0 * np.sqrt(steps)
        empirical = float(np.mean(np.abs(walks[:, -1]) >= deviation))
        assert empirical <= azuma_hoeffding_bound(c, steps, deviation)


class TestDrift:
    def test_detects_negative_drift(self):
        paths = _random_walk_paths(200, 50, drift=-0.3, seed=5)
        mean, sem = empirical_drift(paths)
        assert mean < -0.2
        assert sem < 0.05

    def test_zero_drift(self):
        paths = _random_walk_paths(500, 50, drift=0.0, seed=6)
        mean, sem = empirical_drift(paths)
        assert abs(mean) < 4 * sem + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            empirical_drift(np.zeros((3, 1)))


class TestSupermartingaleCheck:
    def test_accepts_martingale(self):
        paths = _random_walk_paths(1500, 20, drift=0.0, seed=7)
        assert is_supermartingale_like(paths)

    def test_accepts_supermartingale(self):
        paths = _random_walk_paths(1500, 20, drift=-0.5, seed=8)
        assert is_supermartingale_like(paths)

    def test_rejects_submartingale(self):
        paths = _random_walk_paths(1500, 20, drift=0.5, seed=9)
        assert not is_supermartingale_like(paths)

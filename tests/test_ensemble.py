"""The ensemble-vectorised counts engines.

Evidence layers for the ensemble exactness contract (see
``repro/engine/ensemble.py``):

1. *Value-for-value at R = 1*: a one-replication ensemble reproduces
   the single-run counts engines exactly from a shared seed — same
   rounds/ticks, same final counts, same parallel time — for all four
   ensemble protocols and all three engine pairs.
2. *Marginal law at R = 64*: KS agreement between ensemble samples and
   looped single-engine samples of the convergence-time distribution.
3. *Masking/compaction edge cases*: shrinking active sets, everyone
   converging at once, budgets running out mid-ensemble.
4. *Grid invariants*: sequential parallel time on the exact ``ticks/n``
   float grid, stop checks on the ``check_every = n`` tick grid.

Plus the ``n_reps`` routing of ``fastest_engine``, the
``run_replicated``/``run_engine_trials`` front doors, and the
``SeedSequence.spawn`` seeding contract of ``run_trials``.
"""

import numpy as np
import pytest

from repro.analysis.statistics import ks_permutation_test, ks_two_sample
from repro.bench.harness import run_engine_trials, run_trials
from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.core.rng import spawn_seed_sequences
from repro.engine import (
    ContinuousEngine,
    CountsContinuousEngine,
    CountsEngine,
    CountsSequentialEngine,
    EnsembleCountsContinuousEngine,
    EnsembleCountsEngine,
    EnsembleCountsSequentialEngine,
    SequentialEngine,
    SparseSequentialEngine,
    SynchronousEngine,
    fastest_engine,
    run_replicated,
)
from repro.graphs.complete import CompleteGraph
from repro.graphs.families import hypercube
from repro.protocols import (
    OneExtraBitCounts,
    ThreeMajorityCounts,
    ThreeMajoritySequentialCounts,
    TwoChoicesCounts,
    TwoChoicesSequential,
    TwoChoicesSequentialCounts,
    TwoChoicesSynchronous,
    UndecidedStateCounts,
    UndecidedStateSequentialCounts,
    VoterCounts,
    VoterSequentialCounts,
)
from repro.workloads.sweeps import convergence_time_sweep

SYNC_PROTOCOLS = [TwoChoicesCounts(), VoterCounts(), ThreeMajorityCounts(), UndecidedStateCounts()]
TICK_PROTOCOLS = [
    TwoChoicesSequentialCounts(),
    VoterSequentialCounts(),
    ThreeMajoritySequentialCounts(),
    UndecidedStateSequentialCounts(),
]

CONFIG = ColorConfiguration([70, 40, 20])


def _same_result(a, b):
    return (
        a.converged == b.converged
        and a.rounds == b.rounds
        and a.parallel_time == b.parallel_time
        and a.final.counts == b.final.counts
        and a.winner == b.winner
    )


class TestExactnessAtR1:
    """Layer 1: R = 1 replays the single-run engines value-for-value."""

    @pytest.mark.parametrize("protocol", SYNC_PROTOCOLS, ids=lambda p: p.name)
    def test_sync_rounds(self, protocol):
        for seed in (0, 11, 202):
            single = CountsEngine(protocol).run(CONFIG, seed=seed, max_rounds=5000)
            [ensembled] = EnsembleCountsEngine(protocol).run_ensemble(
                CONFIG, 1, max_rounds=5000, seed=seed
            )
            assert _same_result(single, ensembled), (protocol.name, seed)

    @pytest.mark.parametrize("protocol", TICK_PROTOCOLS, ids=lambda p: p.name)
    def test_sequential_ticks(self, protocol):
        for seed in (0, 11, 202):
            single = CountsSequentialEngine(protocol).run(CONFIG, seed=seed)
            [ensembled] = EnsembleCountsSequentialEngine(protocol).run_ensemble(
                CONFIG, 1, seed=seed
            )
            assert _same_result(single, ensembled), (protocol.name, seed)

    @pytest.mark.parametrize("protocol", TICK_PROTOCOLS, ids=lambda p: p.name)
    def test_continuous_ticks(self, protocol):
        for seed in (0, 11, 202):
            single = CountsContinuousEngine(protocol).run(CONFIG, seed=seed)
            [ensembled] = EnsembleCountsContinuousEngine(protocol).run_ensemble(
                CONFIG, 1, seed=seed
            )
            assert _same_result(single, ensembled), (protocol.name, seed)

    def test_r1_with_nondefault_batch_and_check_every(self):
        protocol = TwoChoicesSequentialCounts()
        single = CountsSequentialEngine(protocol, batch_ticks=17).run(
            CONFIG, seed=5, check_every=50
        )
        [ensembled] = EnsembleCountsSequentialEngine(protocol, batch_ticks=17).run_ensemble(
            CONFIG, 1, seed=5, check_every=50
        )
        assert _same_result(single, ensembled)


class TestMarginalLawAtR64:
    """Layer 2: every replication's law matches the single-run engine."""

    N = 400
    REPS = 64

    @pytest.mark.parametrize("protocol", TICK_PROTOCOLS, ids=lambda p: p.name)
    def test_sequential_convergence_time_ks(self, protocol):
        # Voter needs Theta(n) parallel time with a heavy tail, so it
        # gets a smaller, strongly biased instance; its stragglers may
        # still hit the default tick budget, which truncates *both*
        # paths at the same grid point — the truncated samples remain
        # law-identical, so the KS comparison uses all of them.
        voter = "voter" in protocol.name
        n = 120 if voter else self.N
        config = ColorConfiguration([100, 20] if voter else [int(0.6 * n), n - int(0.6 * n)])
        single = CountsSequentialEngine(protocol)
        looped = [single.run(config, seed=1000 + s) for s in range(self.REPS)]
        ensembled = EnsembleCountsSequentialEngine(protocol).run_ensemble(
            config, self.REPS, seed=77
        )
        if not voter:
            assert all(r.converged for r in looped)
            assert all(r.converged for r in ensembled)
        statistic, pvalue = ks_two_sample(
            [r.parallel_time for r in looped], [r.parallel_time for r in ensembled]
        )
        assert pvalue >= 0.01, f"{protocol.name}: KS rejected, D={statistic:.3f}, p={pvalue:.4f}"

    def test_continuous_convergence_time_ks(self):
        protocol = TwoChoicesSequentialCounts()
        config = ColorConfiguration([240, 160])
        single = CountsContinuousEngine(protocol)
        looped = [single.run(config, seed=1000 + s) for s in range(self.REPS)]
        ensembled = EnsembleCountsContinuousEngine(protocol).run_ensemble(
            config, self.REPS, seed=77
        )
        statistic, pvalue = ks_two_sample(
            [r.parallel_time for r in looped if r.converged],
            [r.parallel_time for r in ensembled if r.converged],
        )
        assert pvalue >= 0.01, f"KS rejected: D={statistic:.3f}, p={pvalue:.4f}"

    def test_sync_rounds_distribution_ks(self):
        protocol = TwoChoicesCounts()
        config = ColorConfiguration([240, 160])
        single = CountsEngine(protocol)
        looped = [single.run(config, seed=1000 + s) for s in range(self.REPS)]
        ensembled = EnsembleCountsEngine(protocol).run_ensemble(config, self.REPS, seed=77)
        statistic, pvalue = ks_two_sample(
            [r.rounds for r in looped], [r.rounds for r in ensembled]
        )
        assert pvalue >= 0.01, f"KS rejected: D={statistic:.3f}, p={pvalue:.4f}"


class TestMaskingAndCompaction:
    """Layer 3: shrinking active sets and budget edge cases."""

    def test_results_are_in_replication_order(self):
        results = EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts()).run_ensemble(
            ColorConfiguration([700, 300]), 16, seed=3
        )
        assert [r.metadata["replication"] for r in results] == list(range(16))
        assert all(r.metadata["n_reps"] == 16 for r in results)

    def test_population_conserved_across_all_reps(self):
        results = EnsembleCountsSequentialEngine(UndecidedStateSequentialCounts()).run_ensemble(
            ColorConfiguration([60, 40, 30]), 12, seed=9
        )
        assert all(sum(r.final.counts) == 130 for r in results)

    def test_all_converged_at_once_from_consensus_start(self):
        consensus = ColorConfiguration([500, 0])
        for engine in (
            EnsembleCountsEngine(TwoChoicesCounts()),
            EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts()),
        ):
            results = engine.run_ensemble(consensus, 8, seed=1)
            assert all(r.converged and r.rounds == 0 and r.parallel_time == 0.0 for r in results)

    def test_max_ticks_hit_mid_ensemble(self):
        # A tiny tick budget: no replication can converge, every result
        # must report the full budget and converged=False.
        n = 500
        results = EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts()).run_ensemble(
            ColorConfiguration([300, 200]), 6, max_ticks=2 * n, seed=4
        )
        assert all(not r.converged and r.rounds == 2 * n for r in results)
        # A generous budget converges some seeds earlier than others —
        # the active set genuinely shrinks (distinct retirement ticks).
        results = EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts()).run_ensemble(
            ColorConfiguration([300, 200]), 24, seed=4
        )
        assert all(r.converged for r in results)
        assert len({r.rounds for r in results}) > 1

    def test_max_rounds_hit_mid_ensemble_sync(self):
        results = EnsembleCountsEngine(VoterCounts()).run_ensemble(
            ColorConfiguration([60, 40]), 8, max_rounds=3, seed=2
        )
        assert all(not r.converged and r.rounds == 3 for r in results)

    def test_max_time_budget_continuous(self):
        results = EnsembleCountsContinuousEngine(TwoChoicesSequentialCounts()).run_ensemble(
            ColorConfiguration([300, 200]), 8, max_time=0.5, seed=6
        )
        assert all(not r.converged for r in results)
        assert all(r.parallel_time <= 0.5 + 1.0 for r in results)  # one batch overshoot max

    def test_absorbed_nonconsensus_retires_unconverged(self):
        # All-undecided is absorbing for USD but is not consensus.
        protocol = UndecidedStateCounts()
        states = np.array([[0, 0, 10]])
        assert bool(protocol.is_absorbed_ensemble(states)[0])

    def test_invalid_arguments(self):
        engine = EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts())
        with pytest.raises(ConfigurationError):
            engine.run_ensemble(CONFIG, 0)
        with pytest.raises(ConfigurationError):
            engine.run_ensemble(np.array([5, 5]), 2)
        with pytest.raises(ConfigurationError):
            EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts(), batch_ticks=0)
        with pytest.raises(ConfigurationError):
            EnsembleCountsEngine(TwoChoicesSequential())


class TestGridInvariants:
    """Layer 4: the tick/check grids survive the ensemble lift."""

    def test_sequential_times_on_ticks_over_n_grid(self):
        n = 600
        results = EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts()).run_ensemble(
            ColorConfiguration([360, 240]), 16, seed=8
        )
        for r in results:
            assert r.parallel_time == r.rounds / n  # exact float grid

    def test_converged_reps_stop_on_check_grid(self):
        n = 600
        results = EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts()).run_ensemble(
            ColorConfiguration([360, 240]), 16, seed=8
        )
        assert all(r.converged and r.rounds % n == 0 for r in results)

    def test_custom_check_every_grid(self):
        results = EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts()).run_ensemble(
            ColorConfiguration([360, 240]), 8, seed=8, check_every=97
        )
        assert all(r.converged and r.rounds % 97 == 0 for r in results)


class TestDispatchAndRouting:
    def test_n_reps_routes_to_ensemble_engines(self):
        graph = CompleteGraph(100)
        assert isinstance(
            fastest_engine(TwoChoicesSequential(), graph, model="sequential", n_reps=10),
            EnsembleCountsSequentialEngine,
        )
        assert isinstance(
            fastest_engine(TwoChoicesSequential(), graph, model="continuous", n_reps=10),
            EnsembleCountsContinuousEngine,
        )
        assert isinstance(
            fastest_engine(TwoChoicesCounts(), graph, model="synchronous", n_reps=10),
            EnsembleCountsEngine,
        )
        assert isinstance(
            fastest_engine(TwoChoicesSequentialCounts(), graph, model="sequential", n_reps=10),
            EnsembleCountsSequentialEngine,
        )

    def test_n_reps_one_keeps_single_run_engines(self):
        graph = CompleteGraph(100)
        assert isinstance(
            fastest_engine(TwoChoicesSequential(), graph, model="sequential", n_reps=1),
            CountsSequentialEngine,
        )
        assert isinstance(
            fastest_engine(TwoChoicesCounts(), graph, model="synchronous", n_reps=1),
            CountsEngine,
        )

    def test_ineligible_protocols_fall_back_to_single_engines(self):
        # OneExtraBit has no ensemble round hooks; sparse topologies
        # have no counts path (their hazard-batched tick engine is a
        # single-run engine run_replicated loops over).
        assert isinstance(
            fastest_engine(OneExtraBitCounts(), CompleteGraph(100), model="synchronous", n_reps=10),
            CountsEngine,
        )
        assert isinstance(
            fastest_engine(TwoChoicesSequential(), hypercube(15), model="sequential", n_reps=10),
            SparseSequentialEngine,
        )
        assert isinstance(
            fastest_engine(TwoChoicesSynchronous(), hypercube(5), model="synchronous", n_reps=10),
            SynchronousEngine,
        )

    def test_invalid_n_reps(self):
        with pytest.raises(ConfigurationError):
            fastest_engine(TwoChoicesSequential(), CompleteGraph(100), n_reps=0)

    def test_run_replicated_uses_ensemble_when_available(self):
        config = ColorConfiguration([700, 300])
        engine = fastest_engine(TwoChoicesSequential(), CompleteGraph(1000), n_reps=5)
        results = run_replicated(engine, config, 5, seed=1)
        assert len(results) == 5
        assert all(r.metadata["engine"] == "ensemble-counts-sequential" for r in results)

    def test_run_replicated_loops_plain_engines(self):
        config = ColorConfiguration([20, 12])
        engine = SequentialEngine(TwoChoicesSequential(), CompleteGraph(32))
        results = run_replicated(engine, config, 3, seed=1)
        assert len(results) == 3 and all(r.converged for r in results)
        # Reproducible from the master seed.
        again = run_replicated(engine, config, 3, seed=1)
        assert [r.rounds for r in results] == [r.rounds for r in again]

    def test_run_engine_trials_matches_run_replicated(self):
        config = ColorConfiguration([700, 300])
        engine = fastest_engine(TwoChoicesSequential(), CompleteGraph(1000), n_reps=4)
        a = run_engine_trials(engine, config, 4, 9)
        b = run_replicated(engine, config, 4, seed=9)
        assert [r.rounds for r in a] == [r.rounds for r in b]


class TestSeedingContract:
    def test_run_trials_is_reproducible_and_independent(self):
        a = run_trials(lambda s: np.random.default_rng(s).integers(1 << 30), 4, seed=1)
        b = run_trials(lambda s: np.random.default_rng(s).integers(1 << 30), 4, seed=1)
        assert a == b
        assert len(set(int(x) for x in a)) == 4  # distinct child streams

    def test_spawn_seed_sequences_pure_and_distinct(self):
        first = spawn_seed_sequences(7, 5)
        second = spawn_seed_sequences(7, 5)
        assert [s.spawn_key for s in first] == [s.spawn_key for s in second]
        assert len({s.spawn_key for s in first}) == 5
        # Rebuilding from a SeedSequence master is pure too.
        root = np.random.SeedSequence(7)
        root.spawn(3)  # advance the child counter
        assert [s.spawn_key for s in spawn_seed_sequences(root, 5)] == [
            s.spawn_key for s in first
        ]

    def test_spawn_seed_sequences_validates(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(7, -1)

    def test_spawned_siblings_keep_independent_ensemble_streams(self):
        # Spawned SeedSequence children differ only in spawn_key;
        # split() must preserve it, or every grid point of a sweep
        # would consume one identical ensemble stream.
        from repro.core.rng import split

        children = spawn_seed_sequences(5, 2)
        draws = [
            split(child, "ensemble").integers(0, 1 << 30, size=4).tolist()
            for child in children
        ]
        assert draws[0] != draws[1]
        config = ColorConfiguration([180, 120])
        engine = fastest_engine(TwoChoicesSequential(), CompleteGraph(300), n_reps=8)
        first = run_replicated(engine, config, 8, seed=children[0])
        second = run_replicated(engine, config, 8, seed=children[1])
        assert [r.rounds for r in first] != [r.rounds for r in second]

    def test_looped_and_ensemble_streams_differ(self):
        # Same master seed, different (independent) streams: the two
        # routing paths must not replay each other's draws.
        config = ColorConfiguration([120, 80])
        single = fastest_engine(TwoChoicesSequential(), CompleteGraph(200), n_reps=1)
        ensemble = fastest_engine(TwoChoicesSequential(), CompleteGraph(200), n_reps=8)
        looped = run_replicated(single, config, 8, seed=42)
        ensembled = run_replicated(ensemble, config, 8, seed=42)
        assert [r.rounds for r in looped] != [r.rounds for r in ensembled]


class TestSweepHelper:
    def test_convergence_time_sweep_routes_ensembles(self):
        out = convergence_time_sweep(TwoChoicesSequential(), [300, 600], reps=6, seed=5)
        assert sorted(out) == [300, 600]
        for n, results in out.items():
            assert len(results) == 6
            assert all(r.converged for r in results)
            assert all(r.metadata["engine"] == "ensemble-counts-sequential" for r in results)
            assert all(r.parallel_time == r.rounds / n for r in results)

    def test_convergence_time_sweep_reproducible(self):
        a = convergence_time_sweep(TwoChoicesSequential(), [300], reps=4, seed=5)
        b = convergence_time_sweep(TwoChoicesSequential(), [300], reps=4, seed=5)
        assert [r.rounds for r in a[300]] == [r.rounds for r in b[300]]


class TestPermutationKS:
    def test_same_distribution_not_rejected(self):
        rng = np.random.default_rng(0)
        first = rng.exponential(size=60)
        second = rng.exponential(size=60)
        statistic, pvalue = ks_permutation_test(first, second, resamples=500, seed=1)
        assert pvalue >= 0.05

    def test_different_distributions_rejected(self):
        rng = np.random.default_rng(0)
        first = rng.normal(0.0, 1.0, size=80)
        second = rng.normal(2.0, 1.0, size=80)
        statistic, pvalue = ks_permutation_test(first, second, resamples=500, seed=1)
        assert statistic > 0.5 and pvalue < 0.01

    def test_handles_tied_grid_samples(self):
        # Grid-vs-continuous at 40/40 — the exact T10 shape.  The
        # permutation p-value must not blow up on the ties.
        rng = np.random.default_rng(3)
        grid = np.round(rng.exponential(size=40) * 10) / 10
        continuous = rng.exponential(size=40)
        statistic, pvalue = ks_permutation_test(grid, continuous, resamples=500, seed=1)
        assert 0.0 < pvalue <= 1.0

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        first, second = rng.normal(size=30), rng.normal(size=30)
        assert ks_permutation_test(first, second, seed=9) == ks_permutation_test(
            first, second, seed=9
        )

    def test_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            ks_permutation_test([1.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            ks_permutation_test([1.0, 2.0], [1.0, 2.0], resamples=0)

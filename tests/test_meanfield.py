"""Tests for the mean-field dynamics module."""

import numpy as np
import pytest

from repro.analysis.meanfield import (
    MEAN_FIELD_MAPS,
    iterate_map,
    rounds_to_dominance,
    three_majority_map,
    two_choices_map,
    undecided_state_map,
    voter_map,
)
from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.engine.counts import CountsEngine
from repro.protocols.two_choices import TwoChoicesCounts


class TestMapBasics:
    def test_all_maps_preserve_simplex(self):
        p = np.array([0.5, 0.3, 0.2])
        for name, step in MEAN_FIELD_MAPS.items():
            arg = np.append(p * 0.9, 0.1) if name == "undecided-state" else p
            out = step(arg)
            assert out.sum() == pytest.approx(1.0, abs=1e-12), name
            assert (out >= -1e-12).all(), name

    def test_voter_is_identity(self):
        p = [0.6, 0.4]
        assert voter_map(p).tolist() == pytest.approx(p)

    def test_two_choices_amplifies_leader(self):
        p = np.array([0.6, 0.4])
        out = two_choices_map(p)
        assert out[0] > 0.6
        assert out[1] < 0.4

    def test_two_choices_consensus_fixed_point(self):
        out = two_choices_map([1.0, 0.0])
        assert out.tolist() == [1.0, 0.0]

    def test_two_choices_uniform_fixed_point_unstable(self):
        """Exactly uniform is a fixed point; any tilt escapes it."""
        uniform = np.full(4, 0.25)
        assert two_choices_map(uniform).tolist() == pytest.approx(uniform.tolist())
        tilted = np.array([0.26, 0.25, 0.25, 0.24])
        out = two_choices_map(tilted)
        assert out[0] > 0.26

    def test_three_majority_equals_two_choices_drift(self):
        """The well-known coincidence: same mean-field map."""
        p = np.array([0.45, 0.35, 0.2])
        assert three_majority_map(p).tolist() == pytest.approx(two_choices_map(p).tolist())

    def test_usd_conserves_and_feeds_undecided(self):
        p = np.array([0.5, 0.4, 0.1])  # two colours + undecided mass
        out = undecided_state_map(p)
        assert out.sum() == pytest.approx(1.0)
        assert out[-1] > 0  # conflicting samples generate undecided mass

    def test_usd_consensus_fixed_point(self):
        out = undecided_state_map([1.0, 0.0, 0.0])
        assert out.tolist() == pytest.approx([1.0, 0.0, 0.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            two_choices_map([0.5, 0.4])  # does not sum to 1
        with pytest.raises(ConfigurationError):
            two_choices_map([1.5, -0.5])
        with pytest.raises(ConfigurationError):
            undecided_state_map([1.0])


class TestIteration:
    def test_trajectory_shape(self):
        trajectory = iterate_map(two_choices_map, [0.6, 0.4], rounds=10)
        assert trajectory.shape == (11, 2)
        assert trajectory[0].tolist() == [0.6, 0.4]

    def test_two_choices_converges_to_consensus(self):
        trajectory = iterate_map(two_choices_map, [0.55, 0.45], rounds=60)
        assert trajectory[-1][0] > 0.999

    def test_negative_rounds(self):
        with pytest.raises(ConfigurationError):
            iterate_map(voter_map, [1.0], rounds=-1)


class TestRoundsToDominance:
    def test_counts_rounds(self):
        rounds = rounds_to_dominance(two_choices_map, [0.6, 0.4], threshold=0.99)
        assert 5 < rounds < 60

    def test_voter_stalls(self):
        assert rounds_to_dominance(voter_map, [0.6, 0.4]) is None

    def test_tied_start_stalls(self):
        assert rounds_to_dominance(two_choices_map, [0.5, 0.5]) is None

    def test_already_dominant(self):
        assert rounds_to_dominance(two_choices_map, [0.995, 0.005]) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rounds_to_dominance(two_choices_map, [0.6, 0.4], threshold=0.0)


class TestAgainstStochasticProcess:
    def test_large_n_counts_track_mean_field(self):
        """LLN: at n = 10^6 the stochastic fractions follow the map."""
        n = 1_000_000
        config = ColorConfiguration([600_000, 400_000])
        protocol = TwoChoicesCounts()
        rng = np.random.default_rng(5)
        counts = protocol.init_counts(config)
        fractions = np.array([0.6, 0.4])
        for _ in range(8):
            counts = protocol.step(counts, rng)
            fractions = two_choices_map(fractions)
            measured = counts / n
            assert abs(measured[0] - fractions[0]) < 0.003

    def test_mean_field_predicts_round_count_scale(self):
        """The deterministic predictor lands within ~2x of measured."""
        n = 200_000
        config = ColorConfiguration([120_000, 80_000])
        predicted = rounds_to_dominance(two_choices_map, [0.6, 0.4], threshold=1 - 2 / n)
        engine = CountsEngine(TwoChoicesCounts())
        measured = np.mean([engine.run(config, seed=s).rounds for s in range(5)])
        assert predicted is not None
        assert predicted / 2 <= measured <= predicted * 2

"""Tests for the campaign layer: sweep expansion, seed derivation,
executor identity, and the content-addressed result cache.

The acceptance bar (ISSUE 4): ``run_campaign`` with ``executor="process"``
and ``executor="serial"`` produce identical ``CampaignResult``s (seeds
independent of executor, worker count, and chunking), and a warm-cache
re-run performs zero engine runs.
"""

import json

import pytest

from repro.api import (
    CampaignSpec,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    SimulationSpec,
    SweepSpec,
    point_seed,
    run_campaign,
    simulate,
    spec_key,
)
from repro.api import executors as executors_module
from repro.core.exceptions import ConfigurationError, ExperimentError


def _base(n=300, reps=2, **overrides):
    kwargs = dict(
        protocol="two-choices",
        n=n,
        initial="two-colors",
        initial_params={"gap": n // 5},
        reps=reps,
        max_steps=40 * n,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def _campaign(ns=(300, 400), seed=11, **kwargs):
    return CampaignSpec(base=_base(), sweep=SweepSpec(axes={"n": list(ns)}), seed=seed, **kwargs)


def _deterministic(result):
    """The executor/cache-independent part of a campaign payload."""
    payload = result.to_dict()
    del payload["execution"]
    return payload


class TestSweepSpec:
    def test_product_expansion_row_major(self):
        sweep = SweepSpec(axes={"n": [1, 2], "reps": [10, 20, 30]})
        assert sweep.size == 6
        expansion = sweep.expand()
        assert expansion[0] == {"n": 1, "reps": 10}
        assert expansion[1] == {"n": 1, "reps": 20}
        assert expansion[-1] == {"n": 2, "reps": 30}

    def test_zip_expansion_aligns_axes(self):
        sweep = SweepSpec(axes={"n": [100, 200], "seed": [7, 8]}, mode="zip")
        assert sweep.size == 2
        assert sweep.expand() == [{"n": 100, "seed": 7}, {"n": 200, "seed": 8}]

    def test_zip_rejects_unequal_lengths(self):
        with pytest.raises(ConfigurationError, match="equal lengths"):
            SweepSpec(axes={"n": [1, 2], "seed": [7]}, mode="zip")

    def test_empty_axes_is_a_single_point(self):
        sweep = SweepSpec()
        assert sweep.size == 1
        assert sweep.expand() == [{}]

    def test_rejects_unknown_axis(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            SweepSpec(axes={"bogus": [1]})

    def test_rejects_dotted_axis_outside_params(self):
        with pytest.raises(ConfigurationError, match="_params"):
            SweepSpec(axes={"n.value": [1]})

    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigurationError, match="no values"):
            SweepSpec(axes={"n": []})

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="unknown sweep mode"):
            SweepSpec(axes={"n": [1]}, mode="outer")

    def test_round_trip_survives_json(self):
        sweep = SweepSpec(axes={"n": [1, 2], "initial_params.k": [2, 4]}, mode="zip")
        hopped = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert hopped == sweep

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown SweepSpec"):
            SweepSpec.from_dict({"axes": {}, "mode": "product", "bogus": 1})


class TestCampaignSpec:
    def test_points_pin_position_derived_seeds(self):
        campaign = _campaign(ns=(300, 400, 500), seed=11)
        specs = campaign.points()
        assert [s.n for s in specs] == [300, 400, 500]
        assert [s.seed for s in specs] == [point_seed(11, i) for i in range(3)]

    def test_seeds_do_not_depend_on_grid_size(self):
        small = _campaign(ns=(300, 400), seed=11).points()
        large = _campaign(ns=(300, 400, 500, 600), seed=11).points()
        assert [s.seed for s in small] == [s.seed for s in large[:2]]

    def test_explicit_seed_axis_wins(self):
        campaign = CampaignSpec(
            base=_base(),
            sweep=SweepSpec(axes={"n": [300, 400], "seed": [71, 72]}, mode="zip"),
            seed=11,
        )
        assert [s.seed for s in campaign.points()] == [71, 72]

    def test_rejects_seeded_base(self):
        with pytest.raises(ConfigurationError, match="campaign owns seeding"):
            CampaignSpec(base=_base(seed=5), sweep=SweepSpec(axes={"n": [300]}))

    def test_sweep_accepts_plain_axes_mapping(self):
        campaign = CampaignSpec(base=_base(), sweep={"n": [300, 400]}, seed=3)
        assert isinstance(campaign.sweep, SweepSpec)
        assert campaign.size == 2

    def test_dotted_override_merges_into_base_params(self):
        campaign = CampaignSpec(
            base=_base(initial="theorem-1-1-gap", initial_params={"z": 2.0}),
            sweep={"initial_params.k": [2, 8]},
            seed=3,
        )
        specs = campaign.points()
        assert specs[0].initial_params == {"z": 2.0, "k": 2}
        assert specs[1].initial_params == {"z": 2.0, "k": 8}
        # the base itself is untouched
        assert campaign.base.initial_params == {"z": 2.0}

    def test_whole_dict_override_replaces_field(self):
        campaign = CampaignSpec(
            base=_base(),
            sweep={"initial_params": [{"gap": 10}, {"gap": 50}]},
            seed=3,
        )
        assert [s.initial_params for s in campaign.points()] == [{"gap": 10}, {"gap": 50}]

    def test_round_trip_survives_json(self):
        campaign = CampaignSpec(
            base=_base(),
            sweep=SweepSpec(axes={"n": [300, 400], "initial_params.gap": [10, 20]}, mode="zip"),
            seed=17,
            name="round-trip",
        )
        hopped = CampaignSpec.from_dict(json.loads(json.dumps(campaign.to_dict())))
        assert hopped == campaign
        assert [s.to_dict() for s in hopped.points()] == [s.to_dict() for s in campaign.points()]

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown CampaignSpec"):
            CampaignSpec.from_dict({"base": _base().to_dict(), "bogus": 1})

    def test_replace(self):
        campaign = _campaign(seed=1)
        assert campaign.replace(seed=2).seed == 2 and campaign.seed == 1


class TestPointSeed:
    def test_pure_function_of_master_and_index(self):
        assert point_seed(11, 3) == point_seed(11, 3)
        assert point_seed(11, 3) != point_seed(11, 4)
        assert point_seed(11, 3) != point_seed(12, 3)

    def test_fits_simulation_spec_seed(self):
        seed = point_seed(2**62, 10_000)
        assert isinstance(seed, int) and 0 <= seed < 2**63


class TestRunCampaign:
    def test_serial_matches_direct_simulate(self):
        campaign = _campaign()
        result = run_campaign(campaign)
        assert result.engine_runs == campaign.size
        for spec, point in zip(campaign.points(), result.points):
            got, expected = point.result.to_dict(), simulate(spec).to_dict()
            del got["elapsed_seconds"], expected["elapsed_seconds"]  # wall clock
            assert got == expected

    def test_process_executor_matches_serial(self):
        campaign = _campaign(ns=(300, 350, 400))
        serial = run_campaign(campaign, executor="serial")
        process = run_campaign(campaign, executor="process", workers=2)
        assert _deterministic(process) == _deterministic(serial)
        assert process.executor == "process"

    def test_chunking_and_worker_count_do_not_matter(self):
        campaign = _campaign(ns=(300, 350, 400, 450))
        one = run_campaign(campaign, executor="process", workers=2, chunksize=1)
        other = run_campaign(campaign, executor="process", workers=4, chunksize=3)
        assert _deterministic(one) == _deterministic(other)

    def test_executor_objects_pass_through(self):
        campaign = _campaign()
        viaobj = run_campaign(campaign, executor=ProcessExecutor(workers=2))
        assert _deterministic(viaobj) == _deterministic(run_campaign(campaign))

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            run_campaign(_campaign(), executor="gpu")

    def test_duck_typed_executor_required(self):
        with pytest.raises(ConfigurationError, match="map_payloads"):
            run_campaign(_campaign(), executor=object())

    def test_short_executor_output_rejected(self):
        class Lossy(SerialExecutor):
            def map_payloads(self, payloads):
                return list(super().map_payloads(payloads))[:-1]

        with pytest.raises(ConfigurationError, match="payload"):
            run_campaign(_campaign(), executor=Lossy())

    def test_overlong_executor_output_rejected(self):
        class Chatty(SerialExecutor):
            def map_payloads(self, payloads):
                out = list(super().map_payloads(payloads))
                return out + out[-1:]

        with pytest.raises(ConfigurationError, match="more than"):
            run_campaign(_campaign(), executor=Chatty())

    def test_rejects_non_campaign(self):
        with pytest.raises(ConfigurationError, match="CampaignSpec"):
            run_campaign(_base())

    def test_traced_point_keeps_its_trace_and_skips_cache(self, tmp_path):
        campaign = CampaignSpec(
            base=_base(reps=1, record_trace=True, trace_every=2.0),
            sweep={"seed": [5]},
        )
        result = run_campaign(campaign, cache=str(tmp_path))
        point = result.points[0]
        assert point.result.runs[0].trace is not None
        assert len(point.result.runs[0].trace) > 0
        assert point.key is None and not point.cached
        assert len(ResultCache(tmp_path)) == 0
        # a second run must execute again (never served stale from cache)
        assert run_campaign(campaign, cache=str(tmp_path)).engine_runs == 1


class TestCampaignCache:
    def test_warm_replay_performs_zero_engine_runs(self, tmp_path, monkeypatch):
        campaign = _campaign()
        cold = run_campaign(campaign, cache=str(tmp_path))
        assert cold.engine_runs == campaign.size and cold.cache_hits == 0

        def explode(payload):  # pragma: no cover - the assertion is that it never runs
            raise AssertionError("warm replay touched an engine")

        monkeypatch.setattr(executors_module, "execute_spec_payload", explode)
        warm = run_campaign(campaign, cache=str(tmp_path))
        assert warm.engine_runs == 0
        assert warm.cache_hits == campaign.size
        assert all(p.cached for p in warm.points)
        assert _deterministic(warm) == _deterministic(cold)

    def test_interrupted_campaign_keeps_its_completed_prefix(self, tmp_path, monkeypatch):
        """Results are persisted per point as they arrive, so a crash
        mid-campaign leaves the completed points cached for resume."""
        campaign = _campaign(ns=(300, 400, 500))
        real = executors_module.execute_spec_payload
        calls = {"count": 0}

        def flaky(payload):
            if calls["count"] == 2:
                raise RuntimeError("simulated crash on point 3")
            calls["count"] += 1
            return real(payload)

        monkeypatch.setattr(executors_module, "execute_spec_payload", flaky)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_campaign(campaign, cache=str(tmp_path))
        assert len(ResultCache(tmp_path)) == 2  # the completed prefix survived

        monkeypatch.setattr(executors_module, "execute_spec_payload", real)
        resumed = run_campaign(campaign, cache=str(tmp_path))
        assert resumed.engine_runs == 1 and resumed.cache_hits == 2

    def test_keyboard_interrupt_mid_campaign_resumes_from_cache(self, tmp_path, monkeypatch):
        """Ctrl-C mid-campaign behaves like a crash: the completed prefix
        stays cached and a rerun finishes only the missing points, with
        the resumed result value-identical to an uninterrupted run."""
        campaign = _campaign(ns=(300, 400, 500))
        real = executors_module.execute_spec_payload
        calls = {"count": 0}

        def interrupted(payload):
            if calls["count"] == 2:
                raise KeyboardInterrupt
            calls["count"] += 1
            return real(payload)

        monkeypatch.setattr(executors_module, "execute_spec_payload", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, cache=str(tmp_path))
        assert len(ResultCache(tmp_path)) == 2

        monkeypatch.setattr(executors_module, "execute_spec_payload", real)
        resumed = run_campaign(campaign, cache=str(tmp_path))
        assert resumed.engine_runs == 1 and resumed.cache_hits == 2
        assert _deterministic(resumed) == _deterministic(run_campaign(campaign))

    def test_partial_cache_resumes_missing_points_only(self, tmp_path):
        campaign = _campaign(ns=(300, 400, 500))
        specs = campaign.points()
        cache = ResultCache(tmp_path)
        cache.put(specs[1], simulate(specs[1]))
        result = run_campaign(campaign, cache=cache)
        assert result.engine_runs == 2
        assert [p.cached for p in result.points] == [False, True, False]

    def test_cache_accepts_path_cache_object_and_rejects_junk(self, tmp_path):
        campaign = _campaign()
        run_campaign(campaign, cache=tmp_path)  # os.PathLike
        assert run_campaign(campaign, cache=ResultCache(tmp_path)).cache_hits == campaign.size
        with pytest.raises(ConfigurationError, match="cache"):
            run_campaign(campaign, cache=42)

    def test_cross_executor_cache_reuse(self, tmp_path):
        campaign = _campaign()
        cold = run_campaign(campaign, executor="process", workers=2, cache=str(tmp_path))
        warm = run_campaign(campaign, executor="serial", cache=str(tmp_path))
        assert warm.engine_runs == 0
        assert _deterministic(warm) == _deterministic(cold)


class TestResultCache:
    def test_round_trip_is_value_exact(self, tmp_path):
        spec = _base(seed=3)
        result = simulate(spec)
        cache = ResultCache(tmp_path)
        cache.put(spec, result)
        assert spec in cache
        assert cache.get(spec).to_dict() == result.to_dict()

    def test_content_addressing_layout(self, tmp_path):
        spec = _base(seed=3)
        cache = ResultCache(tmp_path)
        path = cache.put(spec, simulate(spec))
        key = spec_key(spec)
        assert path == tmp_path / key[:2] / f"{key}.json"
        assert list(cache.keys()) == [key] and len(cache) == 1

    def test_key_is_content_not_identity(self):
        spec = _base(seed=3)
        assert spec_key(spec) == spec_key(SimulationSpec.from_dict(spec.to_dict()))
        assert spec_key(spec) == spec_key(spec.to_dict())
        assert spec_key(spec) != spec_key(spec.replace(seed=4))

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get(_base(seed=3)) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        spec = _base(seed=3)
        cache = ResultCache(tmp_path)
        path = cache.put(spec, simulate(spec))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(spec) is None

    @pytest.mark.parametrize("result_value", [None, 7, [], {"runs": []}])
    def test_malformed_result_block_reads_as_miss(self, tmp_path, result_value):
        spec = _base(seed=3)
        cache = ResultCache(tmp_path)
        path = cache.put(spec, simulate(spec))
        path.write_text(
            json.dumps({"format": 1, "key": path.stem, "result": result_value}),
            encoding="utf-8",
        )
        assert cache.get(spec) is None

    def test_spec_mismatch_raises(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec, other = _base(seed=3), _base(seed=4)
        entry = cache.put(other, simulate(other))
        target = cache.path_for(spec_key(spec))
        target.parent.mkdir(parents=True, exist_ok=True)
        entry.replace(target)
        with pytest.raises(ExperimentError, match="different spec"):
            cache.get(spec)

    def test_wrong_payload_for_spec_rejected_on_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec, other = _base(seed=3), _base(seed=4)
        with pytest.raises(ExperimentError, match="different spec"):
            cache.put(spec, simulate(other))

    def test_unseeded_and_traced_specs_refused(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ConfigurationError, match="seed=None"):
            cache.get(_base(seed=None))
        with pytest.raises(ConfigurationError, match="trace"):
            cache.get(_base(reps=1, seed=3, record_trace=True))


class TestCampaignResult:
    def test_tidy_table_shape(self):
        campaign = CampaignSpec(
            base=_base(), sweep={"n": [300, 400], "initial_params.gap": [30, 40]}, seed=5
        )
        result = run_campaign(campaign)
        columns, rows = result.table()
        assert columns[:2] == ["n", "initial_params.gap"]
        assert {"reps", "converged_rate", "mean_parallel_time"} <= set(columns)
        assert len(rows) == 4 and all(len(row) == len(columns) for row in rows)
        assert result.column("n") == [300, 300, 400, 400]
        assert result.column("reps") == [2, 2, 2, 2]
        with pytest.raises(ConfigurationError, match="unknown column"):
            result.column("bogus")

    def test_format_renders_table_and_status(self):
        text = run_campaign(_campaign(name="fmt")).format()
        assert "campaign fmt" in text and "mean_parallel_time" in text

    def test_to_dict_separates_execution_from_values(self, tmp_path):
        campaign = _campaign()
        payload = run_campaign(campaign, cache=str(tmp_path)).to_dict()
        assert set(payload) == {"campaign", "columns", "rows", "points", "execution"}
        assert payload["execution"]["engine_runs"] == campaign.size
        assert payload["campaign"] == campaign.to_dict()
        hopped = json.loads(json.dumps(payload))
        assert hopped["rows"] == payload["rows"]

    def test_results_in_expansion_order(self):
        campaign = _campaign(ns=(300, 400, 500))
        result = run_campaign(campaign, executor="process", workers=3)
        assert [p.index for p in result.points] == [0, 1, 2]
        assert [p.result.spec.n for p in result.points] == [300, 400, 500]

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_simulate_command_defaults(self):
        args = build_parser().parse_args(["simulate", "two-choices", "--n", "1000"])
        assert args.command == "simulate"
        assert args.protocol == "two-choices"
        assert args.n == 1000
        assert args.reps == 1
        assert args.model == "sequential"
        assert args.topology == "complete"
        assert not args.quick and not args.json

    def test_simulate_repeatable_params(self):
        args = build_parser().parse_args(
            ["simulate", "one-extra-bit", "--n", "500", "--model", "synchronous",
             "--initial", "theorem-1-1-gap", "--initial-param", "k=8", "--initial-param", "z=2.0",
             "--param", "bp_rounds=9"]
        )
        assert args.initial_param == ["k=8", "z=2.0"]
        assert args.param == ["bp_rounds=9"]

    def test_simulate_requires_n(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "two-choices"])

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "T3"])
        assert args.experiment == "T3"
        assert args.scale == "quick"
        assert args.store is None

    def test_schedule_command(self):
        args = build_parser().parse_args(["schedule", "1000", "--no-sync"])
        assert args.n == 1000
        assert args.no_sync

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "T12" in out
        # The registry listing rides along: protocols, topologies,
        # initial conditions and their parameter metadata.
        assert "two-choices" in out and "async-plurality" in out
        assert "complete" in out and "ring" in out
        assert "benchmark-split" in out
        assert "epsilon*" in out  # required-param marker

    def test_simulate_runs_and_summarizes(self, capsys):
        assert main(["simulate", "two-choices", "--n", "2000", "--reps", "3", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "EnsembleCountsSequentialEngine" in out
        assert "converged" in out and "3/3" in out

    def test_simulate_quick_shrinks_n(self, capsys):
        assert main(["simulate", "two-choices", "--n", "10000", "--reps", "4", "--quick"]) == 0
        assert "n=5000" in capsys.readouterr().out

    def test_simulate_json_payload_round_trips(self, capsys):
        assert main(
            ["simulate", "voter", "--n", "500", "--model", "synchronous",
             "--initial", "two-colors", "--initial-param", "gap=100",
             "--reps", "2", "--seed", "5", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.api import SimulationSpec

        spec = SimulationSpec.from_dict(payload["spec"])
        assert spec.protocol == "voter" and spec.initial_params == {"gap": "100"}
        assert payload["summary"]["reps"] == 2
        assert len(payload["runs"]) == 2

    def test_simulate_spec_only_does_not_run(self, capsys):
        assert main(["simulate", "two-choices", "--n", "123456789", "--spec-only"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == 123456789 and payload["protocol"] == "two-choices"

    def test_simulate_unknown_protocol_fails(self):
        with pytest.raises(Exception, match="unknown protocol"):
            main(["simulate", "no-such-protocol", "--n", "100"])

    def test_simulate_bad_param_syntax_fails(self):
        with pytest.raises(Exception, match="KEY=VALUE"):
            main(["simulate", "two-choices", "--n", "100", "--param", "oops"])

    def test_schedule(self, capsys):
        assert main(["schedule", "4096"]) == 0
        out = capsys.readouterr().out
        assert "delta" in out
        assert "part one length" in out

    def test_schedule_no_sync(self, capsys):
        assert main(["schedule", "4096", "--no-sync"]) == 0
        assert "sync_enabled=False" in capsys.readouterr().out

    def test_run_tiny_and_show(self, tmp_path, capsys):
        store_dir = str(tmp_path / "results")
        code = main(["run", "T3", "--trials", "2", "--seed", "5", "--store", store_dir])
        out = capsys.readouterr().out
        assert "T3" in out
        assert code in (0, 1)  # checks may fail at tiny trial counts
        assert main(["show", "T3", "--store", store_dir]) == 0
        shown = capsys.readouterr().out
        assert "P(C1 wins)" in shown

    def test_run_store_report_pipeline(self, tmp_path, capsys):
        """run --store -> report renders the persisted payloads."""
        store_dir = str(tmp_path / "results")
        main(["run", "T3", "--trials", "2", "--seed", "5", "--store", store_dir])
        capsys.readouterr()
        assert main(["report", "--store", store_dir, "--title", "e2e report"]) == 0
        out = capsys.readouterr().out
        assert "e2e report" in out
        assert "T3" in out
        assert "Two-Choices bias threshold" in out

    def test_report_on_empty_store(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "nothing")]) == 0
        out = capsys.readouterr().out
        assert "no stored results" in out.lower() or out.strip()

    def test_show_missing_store(self, tmp_path):
        with pytest.raises(Exception):
            main(["show", "T1", "--store", str(tmp_path / "empty")])

    def test_run_unknown_experiment(self):
        with pytest.raises(Exception):
            main(["run", "T99"])


class TestSweepParser:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "two-choices", "--axis", "n=1000,2000"])
        assert args.command == "sweep"
        assert args.axis == ["n=1000,2000"]
        assert args.workers == 1 and args.chunksize is None
        assert args.cache_dir is None
        assert args.seed == 20170725
        assert not args.zip_axes and not args.json

    def test_sweep_repeatable_axes_and_flags(self):
        args = build_parser().parse_args(
            ["sweep", "two-choices", "--axis", "n=1000,2000", "--axis", "initial_params.k=2,4",
             "--zip", "--workers", "4", "--chunksize", "2", "--cache-dir", "cache", "--json"]
        )
        assert args.axis == ["n=1000,2000", "initial_params.k=2,4"]
        assert args.zip_axes and args.json
        assert args.workers == 4 and args.chunksize == 2 and args.cache_dir == "cache"


class TestSweepMain:
    def test_sweep_runs_and_tabulates(self, capsys):
        assert main(["sweep", "two-choices", "--axis", "n=500,1000",
                     "--reps", "2", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "campaign sweep/two-choices" in out
        assert "2 point(s)" in out and "engine runs=2" in out
        assert "mean_parallel_time" in out

    def test_sweep_axis_values_coerce_numerically(self, capsys):
        assert main(["sweep", "two-choices", "--axis", "n=500", "--axis", "reps=2,3",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "3 point(s)" not in out  # 1 x 2 grid
        assert "2 point(s)" in out

    def test_sweep_spec_only_does_not_run(self, capsys):
        assert main(["sweep", "two-choices", "--axis", "n=123456789,987654321",
                     "--spec-only"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"]["axes"] == {"n": [123456789, 987654321]}
        assert payload["base"]["seed"] is None  # the campaign owns seeding

    def test_sweep_requires_n_or_n_axis(self):
        with pytest.raises(Exception, match="--n or sweep an 'n' axis"):
            main(["sweep", "two-choices", "--axis", "reps=1,2"])

    def test_sweep_rejects_bad_axis_syntax(self):
        with pytest.raises(Exception, match="FIELD=V1,V2"):
            main(["sweep", "two-choices", "--axis", "oops"])

    def test_sweep_rejects_duplicate_axes(self):
        with pytest.raises(Exception, match="duplicate --axis"):
            main(["sweep", "two-choices", "--axis", "n=10", "--axis", "n=20"])

    def test_sweep_json_is_byte_identical_warm(self, tmp_path, capsys):
        """The sweep-smoke contract: cold run then warm replay emit
        byte-identical aggregate JSON on stdout, and the warm replay
        reports zero engine runs on stderr."""
        argv = ["sweep", "two-choices", "--axis", "n=500,1000", "--reps", "2",
                "--seed", "9", "--cache-dir", str(tmp_path), "--json"]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out  # byte-identical payload
        assert "engine_runs=2" in cold.err and "cache_hits=0" in cold.err
        assert "engine_runs=0" in warm.err and "cache_hits=2" in warm.err
        payload = json.loads(warm.out)
        assert "execution" not in payload
        assert len(payload["rows"]) == 2

    def test_sweep_json_is_strict_even_without_convergence(self, capsys):
        """Points with zero converged reps have NaN statistics; the JSON
        boundary must emit null, never the non-strict NaN token."""
        assert main(["sweep", "two-choices", "--axis", "n=500", "--reps", "2",
                     "--seed", "1", "--max-steps", "1", "--json"]) == 0
        out = capsys.readouterr().out

        def reject(constant):  # pragma: no cover - only on regression
            raise AssertionError(f"non-strict JSON constant {constant!r}")

        payload = json.loads(out, parse_constant=reject)
        summary = payload["points"][0]["summary"]
        assert summary["converged"] == 0 and summary["mean_parallel_time"] is None

    def test_sweep_zip_mode(self, capsys):
        assert main(["sweep", "two-choices", "--initial", "two-colors",
                     "--axis", "n=500,1000", "--axis", "initial_params.gap=100,200",
                     "--zip", "--reps", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 point(s)" in out
        assert "initial_params.gap" in out

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "T3"])
        assert args.experiment == "T3"
        assert args.scale == "quick"
        assert args.store is None

    def test_schedule_command(self):
        args = build_parser().parse_args(["schedule", "1000", "--no-sync"])
        assert args.n == 1000
        assert args.no_sync

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "T12" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "4096"]) == 0
        out = capsys.readouterr().out
        assert "delta" in out
        assert "part one length" in out

    def test_schedule_no_sync(self, capsys):
        assert main(["schedule", "4096", "--no-sync"]) == 0
        assert "sync_enabled=False" in capsys.readouterr().out

    def test_run_tiny_and_show(self, tmp_path, capsys):
        store_dir = str(tmp_path / "results")
        code = main(["run", "T3", "--trials", "2", "--seed", "5", "--store", store_dir])
        out = capsys.readouterr().out
        assert "T3" in out
        assert code in (0, 1)  # checks may fail at tiny trial counts
        assert main(["show", "T3", "--store", store_dir]) == 0
        shown = capsys.readouterr().out
        assert "P(C1 wins)" in shown

    def test_show_missing_store(self, tmp_path):
        with pytest.raises(Exception):
            main(["show", "T1", "--store", str(tmp_path / "empty")])

    def test_run_unknown_experiment(self):
        with pytest.raises(Exception):
            main(["run", "T99"])

"""Tests for the terminal visualisation helpers and the report renderer."""

import pytest

from repro.bench.report import render_markdown_table, render_payload, render_report
from repro.bench.store import ResultStore
from repro.core.exceptions import ConfigurationError
from repro.viz import hbar_chart, scatter_loglog, sparkline


class TestSparkline:
    def test_basic(self):
        line = sparkline([0, 1, 2, 3, 4], peak=4)
        assert len(line) == 5
        assert line[0] == " "
        assert line[-1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_auto_peak(self):
        assert sparkline([1, 2])[-1] == "█"


class TestHbar:
    def test_basic(self):
        chart = hbar_chart(["aa", "b"], [10, 5], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_label_alignment(self):
        chart = hbar_chart(["long-label", "x"], [1, 1])
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#")

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            hbar_chart(["a"], [1, 2])

    def test_empty(self):
        assert hbar_chart([], []) == ""

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            hbar_chart(["a"], [1], width=0)


class TestScatter:
    def test_power_law_is_diagonal(self):
        x = [1, 10, 100, 1000]
        y = [2, 20, 200, 2000]
        plot = scatter_loglog(x, y, rows=4, cols=4)
        body = [line[1:] for line in plot.splitlines()[1:-1]]
        # a pure power law fills the anti-diagonal
        assert body[3][0] == "*" and body[0][3] == "*"

    def test_bounds_in_labels(self):
        plot = scatter_loglog([1, 100], [5, 50])
        assert "1 .. 100" in plot
        assert "5 .. 50" in plot

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            scatter_loglog([1, 2], [1])
        with pytest.raises(ConfigurationError):
            scatter_loglog([0, 2], [1, 2])
        with pytest.raises(ConfigurationError):
            scatter_loglog([1, 2], [1, 2], rows=1)


class TestReport:
    def _payload(self, eid="T1", check=True):
        return {
            "experiment_id": eid,
            "title": "demo title",
            "claim": "demo claim",
            "headers": ["a", "b"],
            "rows": [[1, 2.5], [3, None]],
            "checks": {"shape": check},
            "notes": ["a note"],
            "elapsed_seconds": 1.25,
        }

    def test_markdown_table(self):
        text = render_markdown_table(["a", "b"], [[1, None]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | - |"

    def test_render_payload_sections(self):
        text = render_payload(self._payload())
        assert "## T1 — demo title" in text
        assert "**Claim:** demo claim" in text
        assert "shape PASS" in text
        assert "a note" in text

    def test_render_report_from_store(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("T1", self._payload("T1"))
        store.save("T2", self._payload("T2", check=False))
        text = render_report(store, title="My report")
        assert text.startswith("# My report")
        assert "## T1" in text and "## T2" in text
        assert "1 shape check(s) FAIL" in text

    def test_render_report_subset(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("T1", self._payload("T1"))
        store.save("T2", self._payload("T2"))
        text = render_report(store, ids=["T2"])
        assert "## T2" in text and "## T1" not in text


class TestCliReport:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        store = ResultStore(tmp_path)
        store.save(
            "T9",
            {
                "experiment_id": "T9",
                "title": "t",
                "claim": "c",
                "headers": ["h"],
                "rows": [[1]],
                "checks": {},
                "notes": [],
                "elapsed_seconds": 0.0,
            },
        )
        assert main(["report", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "## T9" in out

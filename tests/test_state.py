"""Tests for repro.core.state."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.state import NO_COLOR, AsyncNodeState, NodeArrayState


class TestNodeArrayState:
    def test_basic(self):
        state = NodeArrayState(colors=np.array([0, 1, 1, 2]), k=3)
        assert state.n == 4
        assert state.counts().tolist() == [1, 2, 1]

    def test_configuration_snapshot(self):
        state = NodeArrayState(colors=np.array([0, 0, 1]), k=2)
        assert state.configuration().counts == (2, 1)

    def test_is_consensus(self):
        assert NodeArrayState(colors=np.array([1, 1, 1]), k=2).is_consensus()
        assert not NodeArrayState(colors=np.array([1, 0, 1]), k=2).is_consensus()

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            NodeArrayState(colors=np.array([], dtype=np.int64), k=1)

    def test_rejects_out_of_range_colors(self):
        with pytest.raises(ConfigurationError):
            NodeArrayState(colors=np.array([0, 3]), k=2)

    def test_rejects_negative_colors(self):
        with pytest.raises(ConfigurationError):
            NodeArrayState(colors=np.array([0, -1]), k=2)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            NodeArrayState(colors=np.zeros((2, 2), dtype=np.int64), k=1)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            NodeArrayState(colors=np.array([0]), k=0)

    def test_copy_is_independent(self):
        state = NodeArrayState(colors=np.array([0, 1]), k=2)
        clone = state.copy()
        clone.colors[0] = 1
        assert state.colors[0] == 0


class TestAsyncNodeState:
    def test_defaults(self):
        state = AsyncNodeState(colors=np.array([0, 1, 0]), k=2)
        assert state.working_time.tolist() == [0, 0, 0]
        assert state.real_time.tolist() == [0, 0, 0]
        assert not state.bit.any()
        assert (state.intermediate == NO_COLOR).all()
        assert not state.terminated.any()
        assert len(state.sync_samples) == 3

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            AsyncNodeState(colors=np.array([0, 1]), k=2, working_time=np.zeros(3, dtype=np.int64))

    def test_working_time_spread_full(self):
        state = AsyncNodeState(colors=np.array([0, 1, 0, 1]), k=2)
        state.working_time = np.array([0, 5, 10, 3])
        assert state.working_time_spread() == 10

    def test_working_time_spread_excludes_terminated(self):
        state = AsyncNodeState(colors=np.array([0, 1, 0]), k=2)
        state.working_time = np.array([0, 100, 2])
        state.terminated = np.array([False, True, False])
        assert state.working_time_spread() == 2

    def test_working_time_spread_quantile_trims_tails(self):
        state = AsyncNodeState(colors=np.zeros(101, dtype=np.int64), k=1)
        wt = np.full(101, 50)
        wt[0] = 0  # one extreme straggler
        state.working_time = wt
        assert state.working_time_spread() == 50
        assert state.working_time_spread(quantile=0.9) == 0

    def test_spread_all_terminated_is_zero(self):
        state = AsyncNodeState(colors=np.array([0, 1]), k=2)
        state.terminated = np.array([True, True])
        assert state.working_time_spread() == 0

    def test_copy_deep(self):
        state = AsyncNodeState(colors=np.array([0, 1]), k=2)
        state.sync_samples[0].append(3)
        clone = state.copy()
        clone.sync_samples[0].append(4)
        clone.bit[1] = True
        assert state.sync_samples[0] == [3]
        assert not state.bit[1]

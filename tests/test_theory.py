"""Tests for the theorem-prediction module."""

import math

import pytest

from repro.analysis import theory
from repro.core.exceptions import ConfigurationError


class TestTwoChoices:
    def test_rounds_shape(self):
        # halving c1 doubles the predicted rounds
        assert theory.two_choices_rounds(1000, 250) == pytest.approx(
            2 * theory.two_choices_rounds(1000, 500)
        )

    def test_rounds_validation(self):
        with pytest.raises(ConfigurationError):
            theory.two_choices_rounds(1000, 0)
        with pytest.raises(ConfigurationError):
            theory.two_choices_rounds(1, 1)

    def test_required_gap(self):
        n = 10_000
        assert theory.two_choices_required_gap(n) == pytest.approx(math.sqrt(n * math.log(n)))
        assert theory.two_choices_required_gap(n, z=2) == pytest.approx(
            2 * math.sqrt(n * math.log(n))
        )

    def test_lower_bound_additive(self):
        n = 10_000
        assert theory.two_choices_lower_bound(n, n // 2) == pytest.approx(2 + math.log(n))

    def test_critical_gap(self):
        assert theory.critical_gap(100) == 10.0


class TestOneExtraBit:
    def test_rounds_positive_and_modest(self):
        value = theory.one_extra_bit_rounds(10**6, 100, 20_000, 10_000)
        assert 1 < value < 200

    def test_grows_with_k(self):
        small = theory.one_extra_bit_rounds(10**6, 4, 20_000, 10_000)
        large = theory.one_extra_bit_rounds(10**6, 4096, 20_000, 10_000)
        assert large > small

    def test_grows_with_smaller_gap(self):
        tight = theory.one_extra_bit_rounds(10**6, 16, 10_001, 10_000)
        loose = theory.one_extra_bit_rounds(10**6, 16, 20_000, 10_000)
        assert tight > loose

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory.one_extra_bit_rounds(100, 2, 10, 10)
        with pytest.raises(ConfigurationError):
            theory.one_extra_bit_rounds(100, 1, 20, 10)

    def test_required_gap_bigger_than_two_choices(self):
        n = 10**6
        assert theory.one_extra_bit_required_gap(n) > theory.two_choices_required_gap(n)


class TestAsync:
    def test_parallel_time_is_log(self):
        assert theory.async_parallel_time(math.e**5) == pytest.approx(5.0)

    def test_max_opinions_superpolylog(self):
        n = 10**6
        value = theory.async_max_opinions(n)
        assert value > math.log(n) ** 2
        assert value < n

    def test_delta_between_1_and_log(self):
        n = 10**6
        assert 1 < theory.delta(n) < math.log(n)

    def test_sync_gadget_samples_cubed(self):
        n = 10**6
        assert theory.sync_gadget_samples(n) == pytest.approx(
            math.log(math.log(n)) ** 3
        )

    def test_tick_spread(self):
        assert theory.sequential_tick_spread(10**6) == pytest.approx(math.log(10**6))


class TestQuadraticAmplification:
    def test_squares(self):
        assert theory.quadratic_amplification(3.0) == 9.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory.quadratic_amplification(0.0)

"""Pluggable ensemble array backends: selection and exactness.

Evidence layers for the backend contract (see
``repro/core/backend.py``):

1. *Selection*: ``REPRO_BACKEND`` resolution — default numpy, invalid
   values, the degrade-with-warning path when an explicit env choice is
   unavailable, and the raise-don't-degrade behaviour of programmatic
   ``backend=`` requests.
2. *Numpy pass-through*: the numpy backend's methods alias the plain
   numpy calls, so ensemble engines built with an explicit numpy
   backend replay the default engines bit-for-bit (R = 1 and R > 1).
3. *CuPy law*: device results follow the same per-replication law as
   numpy (same host generator stream).  KS-checked — and auto-skipped,
   loudly, wherever no CUDA device is visible.
"""

import numpy as np
import pytest

from repro.core import backend as backend_mod
from repro.core.backend import (
    BACKEND_ENV,
    BACKEND_NAMES,
    ArrayBackend,
    BackendUnavailable,
    NumpyBackend,
    active_backend,
    active_backend_name,
    available_backends,
    get_backend,
    resolve_backend,
    reset_active_backend,
)
from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.engine import (
    EnsembleCountsContinuousEngine,
    EnsembleCountsEngine,
    EnsembleCountsSequentialEngine,
)
from repro.protocols import TwoChoicesCounts, TwoChoicesSequentialCounts

CONFIG = ColorConfiguration([70, 40, 20])

CUPY_AVAILABLE = available_backends()["cupy"].available

needs_gpu = pytest.mark.skipif(
    not CUPY_AVAILABLE,
    reason="SKIPPED LOUDLY: cupy backend unavailable (not installed or no CUDA "
    "device) — numpy law coverage still runs",
)


@pytest.fixture(autouse=True)
def _clean_backend_env(monkeypatch):
    """Every test starts unresolved with no ``REPRO_BACKEND`` set."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    reset_active_backend()
    yield
    reset_active_backend()


def _fail_builders(monkeypatch, detail="stubbed away"):
    """Make every accelerator backend unavailable (fresh caches)."""

    def refuse():
        raise BackendUnavailable(detail)

    monkeypatch.setattr(backend_mod, "_backends", {})
    monkeypatch.setattr(backend_mod, "_failures", {})
    monkeypatch.setattr(
        backend_mod,
        "_BUILDERS",
        {
            name: (builder if name == "numpy" else refuse)
            for name, builder in backend_mod._BUILDERS.items()
        },
    )


class TestSelection:
    def test_default_is_numpy(self):
        assert isinstance(active_backend(), NumpyBackend)
        assert active_backend_name() == "numpy"

    def test_invalid_name_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "tpu")
        reset_active_backend()
        with pytest.raises(ConfigurationError, match="REPRO_BACKEND"):
            active_backend()

    def test_unknown_get_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("tpu")

    def test_env_unavailable_warns_and_degrades(self, monkeypatch):
        _fail_builders(monkeypatch, detail="no device here")
        monkeypatch.setenv(BACKEND_ENV, "cupy")
        reset_active_backend()
        with pytest.warns(RuntimeWarning, match="no device here"):
            backend = active_backend()
        assert isinstance(backend, NumpyBackend)

    def test_auto_degrades_to_numpy_silently(self, monkeypatch):
        _fail_builders(monkeypatch)
        assert isinstance(get_backend("auto"), NumpyBackend)
        monkeypatch.setenv(BACKEND_ENV, "auto")
        reset_active_backend()
        assert active_backend_name() == "numpy"

    def test_programmatic_unavailable_raises_not_degrades(self, monkeypatch):
        # An explicit backend= request must not silently fall back —
        # only the env-var route degrades (with a warning).
        _fail_builders(monkeypatch)
        with pytest.raises(BackendUnavailable):
            resolve_backend("cupy")
        with pytest.raises(BackendUnavailable):
            EnsembleCountsEngine(TwoChoicesCounts(), backend="cupy")

    def test_resolve_backend_passthrough(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend(None), NumpyBackend)
        assert isinstance(resolve_backend("numpy"), NumpyBackend)

    def test_resolution_is_cached_until_reset(self, monkeypatch):
        assert active_backend_name() == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "definitely-invalid")
        assert active_backend_name() == "numpy"  # still cached
        reset_active_backend()
        with pytest.raises(ConfigurationError):
            active_backend()

    def test_probe_always_lists_numpy(self):
        probes = available_backends()
        assert probes["numpy"].available
        assert set(probes) == {"numpy", "cupy"}
        assert set(BACKEND_NAMES) == {"numpy", "cupy", "auto"}


class TestNumpyPassThrough:
    """The numpy backend is the identity seam: nothing may change."""

    def test_draws_alias_the_generator_calls(self):
        backend = NumpyBackend()
        a, b = np.random.default_rng(5), np.random.default_rng(5)
        assert np.array_equal(
            backend.multinomial(a, 10, [0.2, 0.3, 0.5]), b.multinomial(10, [0.2, 0.3, 0.5])
        )
        assert np.array_equal(backend.binomial(a, 20, 0.25), b.binomial(20, 0.25))
        assert np.array_equal(backend.gamma(a, 3.0), b.gamma(3.0))

    def test_to_host_is_identity(self):
        backend = NumpyBackend()
        matrix = np.arange(6).reshape(2, 3)
        assert backend.to_host(matrix) is matrix

    def _fingerprint(self, results):
        return [
            (r.converged, r.rounds, r.parallel_time, r.final.counts, r.winner) for r in results
        ]

    @pytest.mark.parametrize("n_reps", [1, 16])
    def test_sync_ensemble_value_identical(self, n_reps):
        default = EnsembleCountsEngine(TwoChoicesCounts()).run_ensemble(
            CONFIG, n_reps, max_rounds=5000, seed=7
        )
        explicit = EnsembleCountsEngine(TwoChoicesCounts(), backend="numpy").run_ensemble(
            CONFIG, n_reps, max_rounds=5000, seed=7
        )
        assert self._fingerprint(default) == self._fingerprint(explicit)

    @pytest.mark.parametrize(
        "engine_cls", [EnsembleCountsSequentialEngine, EnsembleCountsContinuousEngine]
    )
    def test_tick_ensembles_value_identical(self, engine_cls):
        default = engine_cls(TwoChoicesSequentialCounts()).run_ensemble(CONFIG, 8, seed=13)
        explicit = engine_cls(TwoChoicesSequentialCounts(), backend="numpy").run_ensemble(
            CONFIG, 8, seed=13
        )
        assert self._fingerprint(default) == self._fingerprint(explicit)

    def test_engine_accepts_backend_instance(self):
        backend = NumpyBackend()
        engine = EnsembleCountsEngine(TwoChoicesCounts(), backend=backend)
        assert engine.backend is backend


class _RecordingBackend(NumpyBackend):
    """Numpy semantics, but counts how the engines use the seam."""

    name = "recording"

    def __init__(self):
        self.calls = []

    def asarray(self, a, dtype=None):
        self.calls.append("asarray")
        return super().asarray(a, dtype=dtype)

    def to_host(self, a):
        self.calls.append("to_host")
        return super().to_host(a)

    def multinomial(self, rng, n, pvals):
        self.calls.append("multinomial")
        return super().multinomial(rng, n, pvals)


class TestSeamIsExercised:
    def test_ensemble_routes_arrays_through_backend(self):
        backend = _RecordingBackend()
        EnsembleCountsSequentialEngine(TwoChoicesSequentialCounts(), backend=backend).run_ensemble(
            CONFIG, 4, seed=3
        )
        assert "asarray" in backend.calls
        assert "to_host" in backend.calls
        assert "multinomial" in backend.calls


@needs_gpu
class TestCupyLaw:
    """Device backend: same host stream, same law — KS-pinned."""

    def test_round_trip(self):
        backend = get_backend("cupy")
        matrix = np.arange(6, dtype=np.int64).reshape(2, 3)
        shipped = backend.asarray(matrix)
        assert np.array_equal(backend.to_host(shipped), matrix)

    def test_convergence_time_law_matches_numpy(self):
        from repro.analysis.statistics import ks_permutation_test

        reps = 64
        numpy_runs = EnsembleCountsSequentialEngine(
            TwoChoicesSequentialCounts(), backend="numpy"
        ).run_ensemble(CONFIG, reps, seed=29)
        cupy_runs = EnsembleCountsSequentialEngine(
            TwoChoicesSequentialCounts(), backend="cupy"
        ).run_ensemble(CONFIG, reps, seed=31)
        statistic, p_value = ks_permutation_test(
            [r.parallel_time for r in numpy_runs],
            [r.parallel_time for r in cupy_runs],
            seed=5,
        )
        assert p_value >= 0.01, (statistic, p_value)

"""Tests for repro.core.colors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.colors import (
    ColorConfiguration,
    assignment_from_counts,
    counts_from_assignment,
)
from repro.core.exceptions import ConfigurationError


class TestConstruction:
    def test_basic_counts(self):
        config = ColorConfiguration([5, 3, 2])
        assert config.n == 10
        assert config.k == 3
        assert config.counts == (5, 3, 2)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ColorConfiguration([])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ColorConfiguration([3, -1])

    def test_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            ColorConfiguration([0, 0, 0])

    def test_allows_some_empty_classes(self):
        config = ColorConfiguration([4, 0, 1])
        assert config.k == 3
        assert config.support_size == 2

    def test_coerces_numpy_ints(self):
        config = ColorConfiguration(np.array([2, 3], dtype=np.int32))
        assert config.counts == (2, 3)
        assert all(isinstance(c, int) for c in config.counts)


class TestPluralityQuantities:
    def test_c1_c2_sorted(self):
        config = ColorConfiguration([3, 9, 5])
        assert config.c1 == 9
        assert config.c2 == 5
        assert config.plurality == 1

    def test_additive_bias(self):
        assert ColorConfiguration([7, 4, 4]).additive_bias == 3

    def test_multiplicative_bias(self):
        assert ColorConfiguration([8, 4]).multiplicative_bias == 2.0

    def test_multiplicative_bias_single_color(self):
        assert ColorConfiguration([5]).multiplicative_bias == float("inf")

    def test_c2_single_color(self):
        assert ColorConfiguration([5]).c2 == 0

    def test_fractions_sum_to_one(self):
        fractions = ColorConfiguration([1, 2, 3, 4]).fractions()
        assert fractions.sum() == pytest.approx(1.0)
        assert fractions[3] == pytest.approx(0.4)


class TestPredicates:
    def test_unique_plurality(self):
        assert ColorConfiguration([5, 3]).has_unique_plurality()
        assert not ColorConfiguration([4, 4, 1]).has_unique_plurality()

    def test_is_consensus(self):
        assert ColorConfiguration([9, 0, 0]).is_consensus()
        assert not ColorConfiguration([8, 1, 0]).is_consensus()

    def test_additive_bias_predicate(self):
        n = 10_000
        gap = int(2.0 * np.sqrt(n * np.log(n)))
        config = ColorConfiguration([n // 2 + gap, n // 2 - gap])
        assert config.satisfies_additive_bias(z=1.0)
        assert not config.satisfies_additive_bias(z=10.0)

    def test_multiplicative_bias_predicate(self):
        config = ColorConfiguration([60, 40])
        assert config.satisfies_multiplicative_bias(0.5)
        assert not config.satisfies_multiplicative_bias(0.6)

    def test_multiplicative_bias_rejects_negative_epsilon(self):
        with pytest.raises(ConfigurationError):
            ColorConfiguration([2, 1]).satisfies_multiplicative_bias(-0.1)


class TestTransforms:
    def test_with_count(self):
        config = ColorConfiguration([5, 3]).with_count(1, 7)
        assert config.counts == (5, 7)

    def test_with_count_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ColorConfiguration([5, 3]).with_count(2, 1)

    def test_normalized_descending(self):
        assert ColorConfiguration([1, 9, 4]).normalized().counts == (9, 4, 1)

    def test_sequence_protocol(self):
        config = ColorConfiguration([4, 2])
        assert len(config) == 2
        assert config[0] == 4
        assert list(config) == [4, 2]


class TestAssignmentRoundTrip:
    def test_counts_from_assignment(self):
        config = counts_from_assignment([0, 1, 1, 2, 2, 2])
        assert config.counts == (1, 2, 3)

    def test_counts_from_assignment_with_explicit_k(self):
        config = counts_from_assignment([0, 0, 1], k=4)
        assert config.counts == (2, 1, 0, 0)

    def test_counts_from_assignment_k_too_small(self):
        with pytest.raises(ConfigurationError):
            counts_from_assignment([0, 3], k=3)

    def test_counts_from_assignment_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            counts_from_assignment([])

    def test_counts_from_assignment_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            counts_from_assignment([0, -1])

    def test_assignment_from_counts_unshuffled(self):
        config = ColorConfiguration([2, 3])
        colors = assignment_from_counts(config, shuffle=False)
        assert colors.tolist() == [0, 0, 1, 1, 1]

    def test_assignment_from_counts_shuffled_preserves_counts(self, rng):
        config = ColorConfiguration([10, 20, 30])
        colors = assignment_from_counts(config, rng=rng)
        assert np.bincount(colors, minlength=3).tolist() == [10, 20, 30]

    def test_round_trip(self, rng):
        config = ColorConfiguration([7, 1, 4])
        again = counts_from_assignment(assignment_from_counts(config, rng=rng), k=3)
        assert again.counts == config.counts


@settings(max_examples=60, deadline=None)
@given(counts=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=12))
def test_property_invariants(counts):
    """Core invariants hold for any valid counts vector."""
    if sum(counts) == 0:
        with pytest.raises(ConfigurationError):
            ColorConfiguration(counts)
        return
    config = ColorConfiguration(counts)
    assert config.n == sum(counts)
    assert config.c1 >= config.c2
    assert config.additive_bias >= 0
    assert config.c1 == max(counts)
    assert config.sorted_counts == tuple(sorted(counts, reverse=True))
    assert 0 <= config.plurality < config.k
    assert config.counts[config.plurality] == config.c1


@settings(max_examples=40, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_assignment_round_trip(counts, seed):
    config = ColorConfiguration(counts)
    colors = assignment_from_counts(config, rng=np.random.default_rng(seed))
    assert counts_from_assignment(colors, k=config.k).counts == config.counts

"""Tests for the message-loss failure-injection wrapper."""

import numpy as np
import pytest

from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.core.state import NodeArrayState
from repro.engine.sequential import SequentialEngine
from repro.graphs.complete import CompleteGraph
from repro.protocols.lossy import LossyProtocol
from repro.protocols.two_choices import TwoChoicesSequential
from repro.protocols.voter import VoterSequential


class TestWrapperMechanics:
    def test_zero_loss_is_transparent(self, rng, small_clique):
        inner = TwoChoicesSequential()
        lossy = LossyProtocol(inner, 0.0)
        colors = np.ones(16, dtype=np.int64)
        colors[3] = 0
        state = lossy.make_state(colors, k=2)
        lossy.seq_tick(state, 3, small_clique, rng)
        assert state.colors[3] == 1  # everyone else is colour 1

    def test_total_loss_blocks_all_updates(self, small_clique):
        # loss_probability must be < 1, so use 0.999... and force rng.
        lossy = LossyProtocol(VoterSequential(), 0.999999)
        rng = np.random.default_rng(0)
        colors = np.ones(16, dtype=np.int64)
        colors[0] = 0
        state = lossy.make_state(colors, k=2)
        for _ in range(50):
            lossy.seq_tick(state, 0, small_clique, rng)
        assert state.colors[0] == 0  # effectively nothing got through

    def test_name_mentions_loss(self):
        assert "loss(0.25)" in LossyProtocol(VoterSequential(), 0.25).name

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LossyProtocol(VoterSequential(), 1.0)
        with pytest.raises(ConfigurationError):
            LossyProtocol(VoterSequential(), -0.1)

    def test_delegates_state_and_absorption(self):
        lossy = LossyProtocol(TwoChoicesSequential(), 0.3)
        state = lossy.make_state(np.zeros(5, dtype=np.int64), k=1)
        assert isinstance(state, NodeArrayState)
        assert lossy.is_absorbed(state)


class TestLossSlowdown:
    def test_still_converges_under_loss(self):
        n = 300
        engine = SequentialEngine(LossyProtocol(TwoChoicesSequential(), 0.3), CompleteGraph(n))
        result = engine.run(ColorConfiguration([220, 80]), seed=1)
        assert result.converged
        assert result.winner == 0

    def test_slowdown_matches_effective_tick_rate(self):
        """With loss p, a Two-Choices tick completes w.p. (1-p)^2, so
        consensus time inflates by ~1/(1-p)^2 (here ~2.04x for p=0.3)."""
        n = 400
        config = ColorConfiguration([300, 100])
        trials = 8
        base_engine = SequentialEngine(TwoChoicesSequential(), CompleteGraph(n))
        lossy_engine = SequentialEngine(LossyProtocol(TwoChoicesSequential(), 0.3), CompleteGraph(n))
        base = np.mean([base_engine.run(config, seed=s).parallel_time for s in range(trials)])
        lossy = np.mean([lossy_engine.run(config, seed=100 + s).parallel_time for s in range(trials)])
        inflation = lossy / base
        assert 1.4 < inflation < 3.2  # centred on 1/(0.7^2) ~ 2.04

    def test_voter_lottery_unbiased_by_loss(self):
        """Loss delays voter but must not bias which colour wins."""
        n = 60
        config = ColorConfiguration([30, 30])
        engine = SequentialEngine(LossyProtocol(VoterSequential(), 0.4), CompleteGraph(n))
        wins = 0
        trials = 40
        for seed in range(trials):
            result = engine.run(config, seed=seed, max_ticks=400_000)
            if result.converged and result.winner == 0:
                wins += 1
        assert abs(wins / trials - 0.5) < 0.3

"""Tests for the event queue and delay models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.engine.delays import ExponentialDelay, FixedDelay, NoDelay
from repro.engine.events import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, "c")
        queue.push(1.0, "a")
        queue.push(2.0, "b")
        assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_stable_for_equal_times(self):
        queue = EventQueue()
        for label in "abcde":
            queue.push(1.0, label)
        assert [queue.pop()[1] for _ in range(5)] == list("abcde")

    def test_peek(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(2.5, "x")
        assert queue.peek_time() == 2.5
        assert len(queue) == 1

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, None)
        assert queue
        queue.pop()
        assert len(queue) == 0

    def test_payloads_never_compared(self):
        """Uncomparable payloads at equal times must not raise."""
        queue = EventQueue()
        queue.push(1.0, {"a": 1})
        queue.push(1.0, {"b": 2})
        queue.pop()
        queue.pop()


@settings(max_examples=50, deadline=None)
@given(times=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_property_event_queue_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, None)
    popped = [queue.pop()[0] for _ in range(len(times))]
    assert popped == sorted(popped)


class TestDelayModels:
    def test_no_delay(self, rng):
        model = NoDelay()
        assert model.sample(rng) == 0.0
        assert model.is_zero()

    def test_fixed_delay(self, rng):
        model = FixedDelay(0.7)
        assert model.sample(rng) == 0.7
        assert not model.is_zero()
        assert FixedDelay(0.0).is_zero()

    def test_fixed_delay_validation(self):
        with pytest.raises(ConfigurationError):
            FixedDelay(-1.0)

    def test_exponential_mean(self, rng):
        model = ExponentialDelay(rate=4.0)
        samples = [model.sample(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.15)
        assert not model.is_zero()

    def test_exponential_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialDelay(rate=0.0)

    def test_reprs(self, rng):
        assert "NoDelay" in repr(NoDelay())
        assert "0.5" in repr(ExponentialDelay(0.5))
        assert "0.2" in repr(FixedDelay(0.2))

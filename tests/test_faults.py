"""Tests for the stubborn/Byzantine fault wrappers and masked states.

Covers the mask semantics (honest-only accounting, write suppression at
every layer), composition order-independence, the batched-vs-loop
exactness pin, and the registry / spec plumbing that makes fault stacks
serializable campaign axes.
"""

import json

import numpy as np
import pytest

from repro.api import FAULTS, SimulationSpec, simulate
from repro.api.cache import spec_key
from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.core.state import NodeArrayState
from repro.engine.sequential import SequentialEngine
from repro.graphs.complete import CompleteGraph
from repro.graphs.sparse import ring
from repro.protocols.faults import ByzantineProtocol, FaultMaskedState, StubbornProtocol
from repro.protocols.lossy import LossyProtocol
from repro.protocols.three_majority import ThreeMajoritySequential
from repro.protocols.two_choices import TwoChoicesSequential
from repro.protocols.voter import VoterSequential


def _split_colors(n: int, c0: int) -> np.ndarray:
    colors = np.ones(n, dtype=np.int64)
    colors[:c0] = 0
    return colors


class TestFaultMaskedState:
    def test_counts_and_consensus_are_honest_only(self):
        colors = np.array([0, 0, 0, 1, 1], dtype=np.int64)
        frozen = np.array([False, False, False, True, True])
        state = FaultMaskedState(colors=colors, k=2, frozen=frozen)
        assert state.counts().tolist() == [3, 0]
        assert state.configuration() == ColorConfiguration([3, 0])
        assert state.is_consensus()  # the two dissenters are faulty

    def test_default_mask_is_all_honest(self):
        state = FaultMaskedState(colors=np.zeros(4, dtype=np.int64), k=1)
        assert not state.frozen.any()
        assert state.counts().tolist() == [4]

    def test_copy_is_deep(self):
        state = FaultMaskedState(
            colors=np.array([0, 1], dtype=np.int64),
            k=2,
            frozen=np.array([True, False]),
        )
        clone = state.copy()
        clone.colors[1] = 0
        clone.frozen[1] = True
        assert state.colors[1] == 1
        assert not state.frozen[1]

    def test_all_frozen_rejected(self):
        with pytest.raises(ConfigurationError, match="no honest node"):
            FaultMaskedState(
                colors=np.zeros(3, dtype=np.int64), k=1, frozen=np.ones(3, dtype=bool)
            )

    def test_mask_shape_validated(self):
        with pytest.raises(ConfigurationError, match="shape"):
            FaultMaskedState(
                colors=np.zeros(3, dtype=np.int64), k=1, frozen=np.zeros(4, dtype=bool)
            )


class TestStubbornProtocol:
    def test_mask_size_is_floor_of_fraction(self):
        protocol = StubbornProtocol(TwoChoicesSequential(), 0.1)
        state = protocol.make_state(_split_colors(95, 60), k=2)
        assert isinstance(state, FaultMaskedState)
        assert int(state.frozen.sum()) == 9  # floor(0.1 * 95)

    def test_frozen_nodes_keep_initial_colors(self):
        n = 200
        protocol = StubbornProtocol(TwoChoicesSequential(), 0.15, fault_seed=3)
        colors = _split_colors(n, 120)
        state = protocol.make_state(colors.copy(), k=2)
        frozen = state.frozen.copy()
        topology = CompleteGraph(n)
        rng = np.random.default_rng(7)
        for _ in range(20):
            nodes = rng.integers(0, n, size=512)
            protocol.seq_tick_batch(state, nodes, topology, rng)
        assert np.array_equal(state.colors[frozen], colors[frozen])

    def test_fault_seed_pins_the_set(self):
        protocol_a = StubbornProtocol(VoterSequential(), 0.2, fault_seed=1)
        protocol_b = StubbornProtocol(VoterSequential(), 0.2, fault_seed=1)
        protocol_c = StubbornProtocol(VoterSequential(), 0.2, fault_seed=2)
        colors = _split_colors(100, 50)
        mask_a = protocol_a.make_state(colors.copy(), 2).frozen
        mask_b = protocol_b.make_state(colors.copy(), 2).frozen
        mask_c = protocol_c.make_state(colors.copy(), 2).frozen
        assert np.array_equal(mask_a, mask_b)
        assert not np.array_equal(mask_a, mask_c)

    def test_name_and_footprint_delegation(self):
        inner = TwoChoicesSequential()
        protocol = StubbornProtocol(inner, 0.1)
        assert protocol.name == f"{inner.name}+stubborn(0.1)"
        assert protocol.tick_footprint == inner.tick_footprint
        assert protocol.tick_kernel is None  # kernels do not know the mask

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="fraction"):
            StubbornProtocol(TwoChoicesSequential(), 1.0)
        with pytest.raises(ConfigurationError, match="fraction"):
            StubbornProtocol(TwoChoicesSequential(), -0.1)
        with pytest.raises(ConfigurationError, match="sequential"):
            StubbornProtocol(object(), 0.1)

    def test_engine_reports_honest_consensus(self):
        n = 300
        protocol = StubbornProtocol(TwoChoicesSequential(), 0.1, fault_seed=5)
        engine = SequentialEngine(protocol, CompleteGraph(n))
        result = engine.run(ColorConfiguration([220, 80]), seed=11)
        assert result.converged
        # Honest-only accounting: exactly n - floor(0.1 n) nodes counted.
        assert int(sum(result.final.counts)) == n - 30


class TestByzantineProtocol:
    def test_worst_case_reports_runner_up(self):
        colors = np.array([0] * 6 + [1] * 3 + [2] * 1, dtype=np.int64)
        protocol = ByzantineProtocol(VoterSequential(), 0.3, fault_seed=1)
        state = protocol.make_state(colors.copy(), k=3)
        assert np.all(state.colors[state.frozen] == 1)  # runner-up of (6, 3, 1)

    def test_explicit_color(self):
        colors = _split_colors(40, 30)
        protocol = ByzantineProtocol(VoterSequential(), 0.25, color=0)
        state = protocol.make_state(colors.copy(), k=2)
        assert np.all(state.colors[state.frozen] == 0)
        assert "->0" in protocol.name
        assert "worst-case" in ByzantineProtocol(VoterSequential(), 0.25).name

    def test_color_out_of_range_rejected(self):
        protocol = ByzantineProtocol(VoterSequential(), 0.25, color=5)
        with pytest.raises(ConfigurationError, match="out of range"):
            protocol.make_state(_split_colors(40, 30), k=2)
        with pytest.raises(ConfigurationError, match="color"):
            ByzantineProtocol(VoterSequential(), 0.25, color=-1)

    def test_single_color_universe(self):
        protocol = ByzantineProtocol(VoterSequential(), 0.2)
        state = protocol.make_state(np.zeros(10, dtype=np.int64), k=1)
        assert np.all(state.colors == 0)

    def test_byzantine_push_flips_small_gaps(self):
        """The worst-case adversary props up the runner-up: with a thin
        initial gap the honest nodes settle on the adversary's colour."""
        n = 300
        protocol = ByzantineProtocol(TwoChoicesSequential(), 0.15, fault_seed=2)
        engine = SequentialEngine(protocol, CompleteGraph(n))
        flipped = 0
        for seed in range(6):
            result = engine.run(ColorConfiguration([155, 145]), seed=seed)
            if result.converged and result.winner == 1:
                flipped += 1
        assert flipped >= 4  # colour 1 wins despite starting behind


class TestCompositionOrderIndependence:
    def test_masks_and_colors_commute(self):
        colors = _split_colors(400, 240)
        stack_a = StubbornProtocol(
            ByzantineProtocol(TwoChoicesSequential(), 0.05, fault_seed=9), 0.1, fault_seed=9
        )
        stack_b = ByzantineProtocol(
            StubbornProtocol(TwoChoicesSequential(), 0.1, fault_seed=9), 0.05, fault_seed=9
        )
        state_a = stack_a.make_state(colors.copy(), 2)
        state_b = stack_b.make_state(colors.copy(), 2)
        assert np.array_equal(state_a.frozen, state_b.frozen)
        assert np.array_equal(state_a.colors, state_b.colors)

    def test_distinct_tags_give_distinct_sets(self):
        colors = _split_colors(400, 240)
        stubborn = StubbornProtocol(VoterSequential(), 0.1, fault_seed=0)
        byzantine = ByzantineProtocol(VoterSequential(), 0.1, color=0, fault_seed=0)
        mask_s = stubborn.make_state(colors.copy(), 2).frozen
        mask_b = byzantine.make_state(colors.copy(), 2).frozen
        assert not np.array_equal(mask_s, mask_b)

    def test_trajectory_equality_with_zero_loss_anywhere(self):
        """With p=0 the lossy layer draws nothing, so any nesting of the
        three wrappers runs the identical trajectory on the same seed."""
        n = 150
        config = ColorConfiguration([100, 50])

        def stack_lossy_outer():
            return LossyProtocol(
                StubbornProtocol(
                    ByzantineProtocol(TwoChoicesSequential(), 0.05, fault_seed=4),
                    0.1,
                    fault_seed=4,
                ),
                0.0,
            )

        def stack_lossy_inner():
            return ByzantineProtocol(
                StubbornProtocol(LossyProtocol(TwoChoicesSequential(), 0.0), 0.1, fault_seed=4),
                0.05,
                fault_seed=4,
            )

        results = []
        for factory in (stack_lossy_outer, stack_lossy_inner):
            engine = SequentialEngine(factory(), CompleteGraph(n))
            results.append(engine.run(config, seed=21, max_ticks=60 * n))
        first, second = results
        assert first.rounds == second.rounds
        assert tuple(first.final.counts) == tuple(second.final.counts)
        assert first.converged == second.converged


class TestBatchedLoopIdentity:
    """The frozen mask only shrinks the write set, so the hazard-batched
    ``seq_tick_batch`` must stay bit-identical to the per-tick
    ``tick_apply`` loop on the same presampled draws."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: StubbornProtocol(TwoChoicesSequential(), 0.15, fault_seed=6),
            lambda: ByzantineProtocol(TwoChoicesSequential(), 0.1, fault_seed=6),
            lambda: StubbornProtocol(
                ByzantineProtocol(TwoChoicesSequential(), 0.05, fault_seed=6), 0.1, fault_seed=6
            ),
        ],
        ids=["stubborn", "byzantine", "stubborn-byzantine"],
    )
    @pytest.mark.parametrize("topology", [CompleteGraph(120), ring(120)], ids=["K_n", "ring"])
    def test_batch_matches_loop(self, factory, topology):
        protocol = factory()
        colors = _split_colors(120, 70)
        ticks = 3000
        rng_batch = np.random.default_rng(99)
        rng_loop = np.random.default_rng(99)
        state_batch = protocol.make_state(colors.copy(), 2)
        state_loop = protocol.make_state(colors.copy(), 2)

        nodes = rng_batch.integers(0, 120, size=ticks)
        protocol.seq_tick_batch(state_batch, nodes, topology, rng_batch)

        nodes_loop = rng_loop.integers(0, 120, size=ticks)
        samples = protocol.tick_footprint.samples
        targets = topology.sample_neighbors_block(nodes_loop, samples, rng_loop)
        for i, node in enumerate(nodes_loop.tolist()):
            protocol.tick_apply(state_loop, node, state_loop.colors[targets[i]])

        assert np.array_equal(nodes, nodes_loop)
        assert np.array_equal(state_batch.colors, state_loop.colors)
        assert np.array_equal(state_batch.frozen, state_loop.frozen)


class TestRegistryAndSpec:
    def test_registry_lists_all_wrappers(self):
        assert {"loss", "stubborn", "byzantine"} <= set(FAULTS.names())

    def test_registry_builds_wrap_protocols(self):
        inner = TwoChoicesSequential()
        wrapped = FAULTS.build("stubborn", {"fraction": 0.1}, inner)
        assert isinstance(wrapped, StubbornProtocol)
        assert wrapped.inner is inner
        lossy = FAULTS.build("loss", {"p": 0.25}, inner)
        assert isinstance(lossy, LossyProtocol)

    def test_spec_faults_round_trip_json(self):
        spec = SimulationSpec(
            protocol="two-choices",
            n=80,
            reps=2,
            seed=5,
            faults=[
                {"name": "stubborn", "params": {"fraction": 0.1, "fault_seed": 1}},
                "loss",
            ],
        )
        hop = SimulationSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert hop == spec
        assert hop.faults[1] == {"name": "loss", "params": {}}

    def test_fault_free_spec_omits_the_key(self):
        spec = SimulationSpec(protocol="two-choices", n=80, seed=5)
        assert "faults" not in spec.to_dict()

    def test_spec_key_distinguishes_fault_stacks(self):
        plain = SimulationSpec(protocol="two-choices", n=80, seed=5)
        faulty = plain.replace(faults=[{"name": "stubborn", "params": {"fraction": 0.1}}])
        other = plain.replace(faults=[{"name": "stubborn", "params": {"fraction": 0.2}}])
        assert len({spec_key(plain), spec_key(faulty), spec_key(other)}) == 3

    def test_synchronous_model_rejects_faults(self):
        with pytest.raises(ConfigurationError, match="sequential"):
            SimulationSpec(
                protocol="two-choices",
                n=80,
                model="synchronous",
                faults=[{"name": "stubborn", "params": {"fraction": 0.1}}],
            )

    def test_unknown_fault_name_rejected_at_build(self):
        spec = SimulationSpec(
            protocol="two-choices", n=40, seed=1, faults=[{"name": "gremlins"}]
        )
        with pytest.raises(ConfigurationError, match="gremlins"):
            simulate(spec)

    def test_simulate_with_fault_stack(self):
        spec = SimulationSpec(
            protocol="two-choices",
            n=150,
            reps=2,
            seed=9,
            initial="two-colors",
            initial_params={"gap": 50},
            faults=[
                {"name": "byzantine", "params": {"fraction": 0.05, "fault_seed": 2}},
                {"name": "loss", "params": {"p": 0.1}},
            ],
        )
        result = simulate(spec)
        assert result.reps == 2
        # Honest-only accounting again, through the whole spec pipeline.
        assert int(sum(result.runs[0].final.counts)) == 150 - 7

    def test_three_majority_wrapped_converges(self):
        n = 200
        protocol = StubbornProtocol(ThreeMajoritySequential(), 0.05, fault_seed=1)
        engine = SequentialEngine(protocol, CompleteGraph(n))
        result = engine.run(ColorConfiguration([140, 60]), seed=3)
        assert result.converged
        assert result.winner == 0

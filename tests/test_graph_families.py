"""Tests for the additional graph families."""

import numpy as np
import pytest

from repro.core.exceptions import TopologyError
from repro.graphs.families import (
    barabasi_albert,
    hypercube,
    random_regular,
    star,
    watts_strogatz,
)


class TestHypercube:
    def test_structure(self):
        graph = hypercube(4)
        assert graph.n == 16
        assert all(graph.degree(u) == 4 for u in range(16))

    def test_neighbors_differ_in_one_bit(self):
        graph = hypercube(3)
        for u in range(8):
            for v in graph.neighbors_of(u):
                assert bin(u ^ int(v)).count("1") == 1

    def test_validation(self):
        with pytest.raises(TopologyError):
            hypercube(0)
        with pytest.raises(TopologyError):
            hypercube(30)


class TestStar:
    def test_structure(self):
        graph = star(6)
        assert graph.degree(0) == 5
        assert all(graph.degree(u) == 1 for u in range(1, 6))

    def test_leaves_only_reach_hub(self, rng):
        graph = star(5)
        assert all(graph.sample_neighbor(3, rng) == 0 for _ in range(20))

    def test_validation(self):
        with pytest.raises(TopologyError):
            star(2)


class TestRandomRegular:
    def test_degrees(self):
        graph = random_regular(50, 4, seed=1)
        assert all(graph.degree(u) == 4 for u in range(50))

    def test_simple_no_self_loops(self):
        graph = random_regular(40, 3, seed=2)
        for u in range(40):
            neighbors = graph.neighbors_of(u).tolist()
            assert u not in neighbors
            assert len(set(neighbors)) == len(neighbors)

    def test_deterministic(self):
        a = random_regular(30, 4, seed=7)
        b = random_regular(30, 4, seed=7)
        assert all((a.neighbors_of(u) == b.neighbors_of(u)).all() for u in range(30))

    def test_parity_validation(self):
        with pytest.raises(TopologyError):
            random_regular(5, 3)  # odd n * odd degree

    def test_degree_range_validation(self):
        with pytest.raises(TopologyError):
            random_regular(10, 0)
        with pytest.raises(TopologyError):
            random_regular(10, 10)


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        graph = watts_strogatz(20, 2, 0.0, seed=1)
        assert all(graph.degree(u) == 4 for u in range(20))

    def test_rewired_stays_connected_enough(self):
        graph = watts_strogatz(100, 2, 0.3, seed=2)
        assert all(graph.degree(u) >= 1 for u in range(100))
        total_degree = sum(graph.degree(u) for u in range(100))
        assert total_degree >= 2 * 100  # at least ring-lattice edge mass shifted around

    def test_validation(self):
        with pytest.raises(TopologyError):
            watts_strogatz(10, 5, 0.1)
        with pytest.raises(TopologyError):
            watts_strogatz(10, 2, 1.5)


class TestBarabasiAlbert:
    def test_size_and_min_degree(self):
        graph = barabasi_albert(100, 3, seed=1)
        assert graph.n == 100
        assert all(graph.degree(u) >= 3 for u in range(100))

    def test_hub_emerges(self):
        graph = barabasi_albert(400, 2, seed=3)
        degrees = np.array([graph.degree(u) for u in range(400)])
        # preferential attachment: the max degree dwarfs the median
        assert degrees.max() >= 4 * np.median(degrees)

    def test_edge_count(self):
        m = 3
        graph = barabasi_albert(50, m, seed=4)
        total_degree = sum(graph.degree(u) for u in range(50))
        expected_edges = (m + 1) * m // 2 + (50 - m - 1) * m
        assert total_degree == 2 * expected_edges

    def test_validation(self):
        with pytest.raises(TopologyError):
            barabasi_albert(5, 0)
        with pytest.raises(TopologyError):
            barabasi_albert(3, 3)


class TestProtocolsRunOnFamilies:
    """The agent engines accept any of these topologies."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: hypercube(7),
            lambda: random_regular(128, 6, seed=5),
            lambda: watts_strogatz(128, 3, 0.2, seed=6),
            lambda: barabasi_albert(128, 4, seed=7),
        ],
    )
    def test_two_choices_converges_with_strong_bias(self, factory):
        from repro.core.colors import ColorConfiguration
        from repro.engine.synchronous import SynchronousEngine
        from repro.protocols.two_choices import TwoChoicesSynchronous

        topology = factory()
        n = topology.n
        engine = SynchronousEngine(TwoChoicesSynchronous(), topology)
        result = engine.run(ColorConfiguration([int(0.8 * n), n - int(0.8 * n)]), seed=9, max_rounds=3_000)
        assert result.converged
        assert result.winner == 0

"""Tests for the tick-interface variant of the asynchronous protocol,
including cross-validation against the optimised runner."""

import numpy as np
import pytest

from repro.core.colors import ColorConfiguration
from repro.engine.continuous import ContinuousEngine
from repro.engine.delays import ExponentialDelay
from repro.engine.sequential import SequentialEngine
from repro.graphs.complete import CompleteGraph
from repro.protocols.async_plurality import AsyncPluralityConsensus, AsyncPluralityProtocol
from repro.protocols.schedule import ACTION_TC_SAMPLE
from repro.workloads.initial import multiplicative_bias


class TestAdapterMechanics:
    def test_make_state_attaches_schedule(self):
        protocol = AsyncPluralityProtocol()
        state = protocol.make_state(np.array([0, 1, 0, 1]), k=2)
        assert state.schedule.n == 4
        assert len(state.buffers) == 4

    def test_tick_targets_for_tc_sample(self, rng):
        protocol = AsyncPluralityProtocol()
        graph = CompleteGraph(10)
        state = protocol.make_state(np.zeros(10, dtype=np.int64), k=2)
        # working time 0 is the first phase's TC sample slot
        assert state.schedule.action_at(0) == ACTION_TC_SAMPLE
        targets = protocol.tick_targets(state, 3, graph, rng)
        assert len(targets) == 2

    def test_tick_apply_advances_clocks(self, rng):
        protocol = AsyncPluralityProtocol()
        graph = CompleteGraph(10)
        state = protocol.make_state(np.zeros(10, dtype=np.int64), k=2)
        targets = protocol.tick_targets(state, 0, graph, rng)
        protocol.tick_apply(state, 0, state.colors[targets])
        assert state.working_time[0] == 1
        assert state.real_time[0] == 1

    def test_unanimous_tc_sets_intermediate_then_commit_sets_bit(self, rng):
        protocol = AsyncPluralityProtocol()
        graph = CompleteGraph(10)
        state = protocol.make_state(np.zeros(10, dtype=np.int64), k=2)
        node = 0
        # drive node 0 through the schedule until just past the commit slot
        commit_slot = 2 * state.schedule.delta
        for _ in range(commit_slot + 1):
            targets = protocol.tick_targets(state, node, graph, rng)
            observed = state.colors[targets] if len(targets) else np.empty(0, dtype=np.int64)
            protocol.tick_apply(state, node, observed)
        assert state.bit[node]  # unanimous population: samples always agree

    def test_terminated_node_ignores_ticks(self, rng):
        protocol = AsyncPluralityProtocol()
        graph = CompleteGraph(10)
        state = protocol.make_state(np.zeros(10, dtype=np.int64), k=2)
        state.terminated[0] = True
        targets = protocol.tick_targets(state, 0, graph, rng)
        assert len(targets) == 0
        protocol.tick_apply(state, 0, np.empty(0, dtype=np.int64))
        assert state.working_time[0] == 0

    def test_is_absorbed_when_all_terminated(self):
        protocol = AsyncPluralityProtocol()
        state = protocol.make_state(np.zeros(4, dtype=np.int64), k=2)
        assert not protocol.is_absorbed(state)
        state.terminated[:] = True
        assert protocol.is_absorbed(state)


class TestAdapterRuns:
    def test_sequential_engine_run_converges(self):
        n = 200
        config = multiplicative_bias(n, 4, 2.0)
        protocol = AsyncPluralityProtocol()
        engine = SequentialEngine(protocol, CompleteGraph(n))
        schedule = protocol.params.compile(n)
        result = engine.run(config, seed=5, max_ticks=3 * n * schedule.total_length)
        assert result.converged
        assert result.winner == 0

    def test_continuous_engine_with_delays_converges(self):
        n = 150
        config = multiplicative_bias(n, 4, 2.0)
        protocol = AsyncPluralityProtocol()
        engine = ContinuousEngine(protocol, CompleteGraph(n), delay_model=ExponentialDelay(2.0))
        schedule = protocol.params.compile(n)
        result = engine.run(config, seed=6, max_time=5.0 * schedule.total_length)
        assert result.converged
        assert result.winner == 0


class TestCrossValidation:
    def test_fast_runner_and_adapter_agree_distributionally(self):
        """The optimised runner and the tick adapter implement the same
        protocol; their success rates and consensus times must agree
        within loose statistical bounds on a small instance."""
        n = 150
        config = multiplicative_bias(n, 4, 2.0)
        trials = 5
        fast_times, fast_wins = [], 0
        adapter_times, adapter_wins = [], 0
        fast = AsyncPluralityConsensus()
        protocol = AsyncPluralityProtocol()
        schedule = protocol.params.compile(n)
        for seed in range(trials):
            r = fast.run(config, seed=seed)
            fast_times.append(r.parallel_time)
            fast_wins += int(r.converged and r.winner == 0)
            engine = SequentialEngine(protocol, CompleteGraph(n))
            r2 = engine.run(config, seed=seed + 1000, max_ticks=3 * n * schedule.total_length)
            adapter_times.append(r2.parallel_time)
            adapter_wins += int(r2.converged and r2.winner == 0)
        assert fast_wins >= trials - 1
        assert adapter_wins >= trials - 1
        # consensus times on the same schedule: same ballpark (x1.6)
        assert np.mean(adapter_times) < 1.6 * np.mean(fast_times) + 5
        assert np.mean(fast_times) < 1.6 * np.mean(adapter_times) + 5

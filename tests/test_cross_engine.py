"""Cross-engine consistency: the counts engine must draw from the same
one-round law as the agent engine, for every protocol that has both.

Two-Choices and OneExtraBit are covered in their own test modules; this
module covers Voter, 3-Majority and Undecided-State, plus multi-round
full-run agreement checks and hypothesis-driven conservation tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.colors import ColorConfiguration
from repro.engine.counts import CountsEngine
from repro.engine.sequential import SequentialEngine
from repro.engine.synchronous import SynchronousEngine
from repro.graphs.complete import CompleteGraph
from repro.protocols.three_majority import ThreeMajorityCounts, ThreeMajoritySynchronous
from repro.protocols.two_choices import TwoChoicesCounts, TwoChoicesSequential, TwoChoicesSynchronous
from repro.protocols.undecided_state import UndecidedStateCounts, UndecidedStateSynchronous
from repro.protocols.voter import VoterCounts, VoterSynchronous


def _one_round_means(agent_protocol, counts_protocol, colors, counts_vector, trials=250):
    """Mean post-round count of colour 0 under both engines."""
    n = colors.size
    graph = CompleteGraph(n)
    agent_rng = np.random.default_rng(21)
    counts_rng = np.random.default_rng(22)
    agent_values, counts_values = [], []
    for _ in range(trials):
        state = agent_protocol.make_state(colors.copy(), k=len(counts_vector))
        agent_protocol.round_update(state, graph, agent_rng)
        agent_values.append(int(state.counts()[0]))
        counts_state = counts_protocol.init_counts(ColorConfiguration(list(counts_vector)))
        counts_state = counts_protocol.step(counts_state, counts_rng)
        counts_values.append(int(counts_protocol.color_counts(counts_state)[0]))
    pooled_sem = np.sqrt((np.var(agent_values) + np.var(counts_values)) / trials)
    return np.mean(agent_values), np.mean(counts_values), pooled_sem


class TestOneRoundLawAgreement:
    def test_voter(self):
        colors = np.array([0] * 250 + [1] * 150)
        a, c, sem = _one_round_means(VoterSynchronous(), VoterCounts(), colors, [250, 150])
        assert abs(a - c) < 4 * sem + 1e-9

    def test_three_majority(self):
        colors = np.array([0] * 200 + [1] * 130 + [2] * 70)
        a, c, sem = _one_round_means(
            ThreeMajoritySynchronous(), ThreeMajorityCounts(), colors, [200, 130, 70]
        )
        assert abs(a - c) < 4 * sem + 1e-9

    def test_undecided_state(self):
        colors = np.array([0] * 240 + [1] * 160)
        a, c, sem = _one_round_means(
            UndecidedStateSynchronous(), UndecidedStateCounts(), colors, [240, 160]
        )
        assert abs(a - c) < 4 * sem + 1e-9


class TestFullRunAgreement:
    def test_two_choices_round_counts_match_across_engines(self):
        """Rounds-to-consensus distributions agree between the agent
        and counts engines on the same workload."""
        n = 600
        config = ColorConfiguration([400, 200])
        trials = 25
        agent_engine = SynchronousEngine(TwoChoicesSynchronous(), CompleteGraph(n))
        counts_engine = CountsEngine(TwoChoicesCounts())
        agent_rounds = [agent_engine.run(config, seed=s).rounds for s in range(trials)]
        counts_rounds = [counts_engine.run(config, seed=100 + s).rounds for s in range(trials)]
        pooled_sem = np.sqrt((np.var(agent_rounds) + np.var(counts_rounds)) / trials)
        assert abs(np.mean(agent_rounds) - np.mean(counts_rounds)) < 4 * pooled_sem + 0.5

    def test_sequential_matches_synchronous_timescale(self):
        """Two-Choices: sequential parallel time tracks synchronous
        round count on the same workload (same dynamics, one tick per
        node per unit time vs one round per unit time)."""
        n = 500
        config = ColorConfiguration([350, 150])
        trials = 10
        sync_engine = SynchronousEngine(TwoChoicesSynchronous(), CompleteGraph(n))
        seq_engine = SequentialEngine(TwoChoicesSequential(), CompleteGraph(n))
        sync_rounds = np.mean([sync_engine.run(config, seed=s).rounds for s in range(trials)])
        seq_time = np.mean([seq_engine.run(config, seed=50 + s).parallel_time for s in range(trials)])
        # Same Theta; constants differ by O(1) (sequential updates are
        # incremental rather than simultaneous).
        assert 0.3 * sync_rounds < seq_time < 3.5 * sync_rounds


@settings(max_examples=25, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=0, max_value=400), min_size=2, max_size=6).filter(
        lambda c: sum(c) >= 2
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_counts_protocols_conserve_population(counts, seed):
    """Every counts protocol conserves the population on arbitrary
    inputs (the fundamental invariant of the exact engines)."""
    rng = np.random.default_rng(seed)
    total = sum(counts)
    config = ColorConfiguration(counts)
    for protocol in (VoterCounts(), TwoChoicesCounts(), ThreeMajorityCounts(), UndecidedStateCounts()):
        state = protocol.init_counts(config)
        for _ in range(3):
            state = protocol.step(state, rng)
            projected = protocol.color_counts(state)
            assert int(np.sum(projected)) == total
            assert (np.asarray(projected) >= 0).all()

"""Tests for the contract-aware static analysis (``repro.devtools.lint``).

Each rule gets the fixture triplet the issue asks for — a positive hit,
the same hit suppressed, and a clean snippet — plus framework-level
coverage (suppression parsing, module-name derivation, the ``--json``
schema, CLI exit codes) and the self-lint gate asserting ``src/repro``
stays clean under the default rule set.
"""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.devtools.lint import (
    LintUsageError,
    lint_paths,
    lint_source,
    load_rules,
    module_name,
    parse_suppressions,
)


def run_lint(code, module=None, select=None):
    """Lint a dedented snippet; return the list of fired rule ids."""
    findings = lint_source(textwrap.dedent(code), module=module, select=select)
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# framework
# ---------------------------------------------------------------------------
class TestFramework:
    def test_registry_has_all_families(self):
        rules = load_rules()
        families = {rule_id[: len("REPRO-X")] for rule_id in rules}
        assert {"REPRO-R", "REPRO-H", "REPRO-C", "REPRO-L", "REPRO-P"} <= families

    def test_suppression_parsing_single_and_multiple(self):
        table = parse_suppressions(
            [
                "x = 1",
                "y = 2  # repro: lint-ignore[REPRO-R001] reason text",
                "z = 3  # repro: lint-ignore[REPRO-H001, REPRO-H002]",
            ]
        )
        assert table == {2: {"REPRO-R001"}, 3: {"REPRO-H001", "REPRO-H002"}}

    def test_suppression_wildcard(self):
        code = """
        import numpy as np
        np.random.seed(3)  # repro: lint-ignore[*] fixture
        """
        assert run_lint(code) == []

    def test_module_name_derivation(self, tmp_path):
        pkg = tmp_path / "mypkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "mypkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        assert module_name(pkg / "mod.py") == "mypkg.sub.mod"
        assert module_name(pkg / "__init__.py") == "mypkg.sub"
        assert module_name(tmp_path / "loose.py") == "loose"

    def test_unknown_rule_id_raises_usage_error(self):
        with pytest.raises(LintUsageError):
            lint_source("x = 1", select=["REPRO-NOPE"])

    def test_unparseable_file_reports_e000(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings, files = lint_paths([bad])
        assert files == 1
        assert [f.rule for f in findings] == ["REPRO-E000"]


# ---------------------------------------------------------------------------
# RNG discipline
# ---------------------------------------------------------------------------
class TestRngRules:
    def test_r001_global_seed_hit(self):
        assert "REPRO-R001" in run_lint("import numpy as np\nnp.random.seed(3)\n")

    def test_r001_suppressed(self):
        code = """
        import numpy as np
        np.random.seed(3)  # repro: lint-ignore[REPRO-R001] fixture
        """
        assert run_lint(code) == []

    def test_r001_clean(self):
        code = """
        from repro.core.rng import as_generator
        def draw():
            return as_generator(7).random()
        """
        assert run_lint(code) == []

    def test_r002_unseeded_constructor_hit(self):
        code = """
        import numpy as np
        def build():
            return np.random.default_rng()
        """
        assert "REPRO-R002" in run_lint(code)

    def test_r002_alias_resolution(self):
        code = """
        from numpy.random import default_rng
        def build():
            return default_rng(seed=None)
        """
        assert "REPRO-R002" in run_lint(code)

    def test_r002_allowed_inside_rng_seam(self):
        code = """
        import numpy as np
        def build():
            return np.random.default_rng()
        """
        assert run_lint(code, module="repro.core.rng") == []

    def test_r002_seeded_is_clean(self):
        code = """
        import numpy as np
        def build(seed):
            return np.random.default_rng(seed)
        """
        assert run_lint(code) == []

    def test_r003_legacy_draw_hit(self):
        assert "REPRO-R003" in run_lint("import numpy as np\nx = np.random.randint(10)\n")

    def test_r003_generator_method_is_clean(self):
        code = """
        def draw(rng):
            return rng.integers(10)
        """
        assert run_lint(code) == []

    def test_r004_module_level_state_hit(self):
        code = """
        import numpy as np
        RNG = np.random.default_rng(0)
        """
        assert "REPRO-R004" in run_lint(code)

    def test_r004_function_local_is_clean(self):
        code = """
        import numpy as np
        def build():
            rng = np.random.default_rng(0)
            return rng
        """
        assert run_lint(code) == []


# ---------------------------------------------------------------------------
# hash/cache hygiene (scoped to the key-path modules)
# ---------------------------------------------------------------------------
class TestHashRules:
    def test_h001_hash_hit_in_key_path(self):
        assert "REPRO-H001" in run_lint("k = hash((1, 2))\n", module="repro.api.cache")

    def test_h001_clean_outside_key_path(self):
        assert run_lint("k = hash((1, 2))\n", module="repro.engine.base") == []

    def test_h002_id_hit(self):
        code = "def f(obj):\n    return id(obj)\n"
        assert "REPRO-H002" in run_lint(code, module="repro.api.spec")

    def test_h003_dumps_without_sort_keys_hit(self):
        code = """
        import json
        def key(payload):
            return json.dumps(payload)
        """
        assert "REPRO-H003" in run_lint(code, module="repro.api.spec")

    def test_h003_sorted_dumps_clean(self):
        code = """
        import json
        def key(payload):
            return json.dumps(payload, sort_keys=True, separators=(",", ":"))
        """
        assert run_lint(code, module="repro.api.spec") == []

    def test_h003_suppressed(self):
        code = """
        import json
        def key(payload):
            return json.dumps(payload)  # repro: lint-ignore[REPRO-H003] fixture
        """
        assert run_lint(code, module="repro.api.spec") == []

    def test_h004_set_iteration_hit(self):
        code = """
        def walk():
            return [x for x in {1, 2, 3}]
        """
        assert "REPRO-H004" in run_lint(code, module="repro.api.cache")

    def test_h004_sorted_set_clean(self):
        code = """
        def walk():
            for x in sorted({1, 2, 3}):
                yield x
        """
        assert run_lint(code, module="repro.api.cache") == []


# ---------------------------------------------------------------------------
# clock discipline (serve/distributed only)
# ---------------------------------------------------------------------------
class TestClockRule:
    def test_c001_wall_clock_hit_in_serve(self):
        code = """
        import time
        def deadline(timeout):
            return time.time() + timeout
        """
        assert "REPRO-C001" in run_lint(code, module="repro.api.serve.server")

    def test_c001_hit_in_distributed(self):
        code = "import time\nT = time.time\ndef f():\n    return time.time()\n"
        assert "REPRO-C001" in run_lint(code, module="repro.api.distributed")

    def test_c001_monotonic_clean(self):
        code = """
        import time
        def deadline(timeout):
            return time.monotonic() + timeout
        """
        assert run_lint(code, module="repro.api.serve.server") == []

    def test_c001_out_of_scope_clean(self):
        code = "import time\nstamp = time.time()\n"
        assert run_lint(code, module="repro.bench.perf_engines") == []

    def test_c001_suppressed_display_field(self):
        code = """
        import time
        def stamp():
            return time.time()  # repro: lint-ignore[REPRO-C001] display timestamp
        """
        assert run_lint(code, module="repro.api.serve.jobs") == []


# ---------------------------------------------------------------------------
# lock discipline
# ---------------------------------------------------------------------------
_LOCK_FIXTURE = """
import threading

class Table:
    def __init__(self):
        self._lock = threading.Lock()
        self.status = "queued"  # guarded-by: _lock

    def bad(self):
        self.status = "running"

    def good(self):
        with self._lock:
            self.status = "running"

    def _peek_locked(self):
        return self.status
"""


class TestLockRules:
    def test_l001_unguarded_access_hit(self):
        rules = run_lint(_LOCK_FIXTURE)
        assert rules == ["REPRO-L001"]  # bad() only; good() and *_locked are fine

    def test_l001_suppressed(self):
        code = _LOCK_FIXTURE.replace(
            'self.status = "running"\n\n    def good',
            'self.status = "running"  # repro: lint-ignore[REPRO-L001] fixture\n\n    def good',
        )
        assert run_lint(code) == []

    def test_l002_blocking_under_lock_hit(self):
        code = """
        import threading
        import time

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def bad(self, sock):
                with self._lock:
                    time.sleep(0.1)
                    sock.recv(4096)
        """
        rules = run_lint(code, module="repro.api.serve.server")
        assert rules == ["REPRO-L002", "REPRO-L002"]

    def test_l002_condition_wait_exempt(self):
        code = """
        import threading

        class Waiter:
            def __init__(self):
                self.cond = threading.Condition()
                self.done = False  # guarded-by: cond

            def wait_done(self, timeout):
                with self.cond:
                    while not self.done:
                        self.cond.wait(timeout)
        """
        assert run_lint(code, module="repro.api.distributed") == []

    def test_l002_string_join_clean(self):
        code = """
        import threading

        class Fmt:
            def __init__(self):
                self._lock = threading.Lock()

            def render(self, items):
                with self._lock:
                    return ",".join(items)
        """
        assert run_lint(code, module="repro.api.serve.server") == []

    def test_l002_out_of_scope_clean(self):
        code = """
        import threading
        import time

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def slow(self):
                with self._lock:
                    time.sleep(0.1)
        """
        assert run_lint(code, module="repro.engine.base") == []


# ---------------------------------------------------------------------------
# purity contracts
# ---------------------------------------------------------------------------
_PURITY_HEADER = """
class Footprint:
    def __init__(self, samples):
        self.samples = samples

class Proto:
    tick_footprint = Footprint(samples=2)
"""


class TestPurityRules:
    def test_p001_self_mutation_hit(self):
        code = _PURITY_HEADER + """
    def tick_values(self, state, own, observed):
        self.count = 1
        return own
"""
        assert "REPRO-P001" in run_lint(code)

    def test_p001_argument_mutation_hit(self):
        code = _PURITY_HEADER + """
    def tick_values(self, state, own, observed):
        observed.sort()
        return own
"""
        assert "REPRO-P001" in run_lint(code)

    def test_p001_local_work_clean(self):
        code = _PURITY_HEADER + """
    def tick_values(self, state, own, observed):
        out = list(own)
        out.sort()
        return out
"""
        assert run_lint(code) == []

    def test_p001_footprint_none_opt_out(self):
        code = """
        class Base:
            tick_footprint = None

            def tick_values(self, state, own, observed):
                self.count = 1
                return own
        """
        assert run_lint(code) == []

    def test_p002_rng_draw_hit(self):
        code = _PURITY_HEADER + """
    def tick_values(self, state, own, observed):
        return self.rng.integers(2)
"""
        assert "REPRO-P002" in run_lint(code)

    def test_p002_suppressed(self):
        code = _PURITY_HEADER + """
    def tick_values(self, state, own, observed):
        return self.rng.integers(2)  # repro: lint-ignore[REPRO-P002] fixture
"""
        assert run_lint(code) == []

    def test_p003_signature_mismatch_detected(self):
        from repro.api.registry import ParamSpec
        from repro.devtools.rules_purity import _audit_factory

        def bad_factory(n, degree):
            return None

        findings = _audit_factory(
            bad_factory, (ParamSpec("nope", "int"),), 1, "topology 'fixture'"
        )
        messages = "\n".join(f.message for f in findings)
        assert "nope" in messages  # declared but unaccepted
        assert "degree" in messages  # required but undeclared

    def test_p003_matching_signature_clean(self):
        from repro.api.registry import ParamSpec
        from repro.devtools.rules_purity import _audit_factory

        def good_factory(n, degree, graph_seed=None):
            return None

        findings = _audit_factory(
            good_factory,
            (ParamSpec("degree", "int", required=True), ParamSpec("graph_seed", "int")),
            1,
            "topology 'fixture'",
        )
        assert findings == []

    def test_p003_live_registries_pass(self):
        assert load_rules()["REPRO-P003"].check([]) == []


# ---------------------------------------------------------------------------
# CLI: exit codes, --json schema, repro list section
# ---------------------------------------------------------------------------
class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(rng):\n    return rng.random()\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 finding(s) in 1 file(s)" in capsys.readouterr().err

    def test_violation_exits_one_with_rule_id(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        assert main(["lint", str(bad)]) == 1
        assert "REPRO-R001" in capsys.readouterr().out

    def test_json_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        assert main(["lint", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert payload["count"] == len(payload["findings"]) == 1
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "REPRO-R001"
        assert finding["line"] == 2

    def test_github_annotations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        assert main(["lint", str(bad), "--github"]) == 1
        assert "::error file=" in capsys.readouterr().out

    def test_select_runs_only_named_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        assert main(["lint", str(bad), "--select", "REPRO-H001"]) == 0

    def test_unknown_rule_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tmp_path), "--select", "REPRO-NOPE"])
        assert excinfo.value.code == 2

    def test_missing_path_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tmp_path / "does-not-exist")])
        assert excinfo.value.code == 2

    def test_list_prints_lint_rules_section(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lint rules" in out
        assert "REPRO-R001" in out
        assert "REPRO-P003" in out


# ---------------------------------------------------------------------------
# the gate itself
# ---------------------------------------------------------------------------
class TestSelfLint:
    def test_src_repro_is_clean_under_default_rules(self):
        package_dir = Path(repro.__file__).parent
        findings, files = lint_paths([package_dir])
        assert files > 50  # the whole tree was visited, not a stub dir
        assert [f.format() for f in findings] == []


class TestMypyStarterGate:
    def test_starter_scope_is_clean(self):
        mypy_api = pytest.importorskip("mypy.api", reason="mypy is a dev extra")
        root = Path(repro.__file__).parent
        targets = [
            str(root / "core" / "rng.py"),
            str(root / "api" / "spec.py"),
            str(root / "api" / "cache.py"),
        ]
        stdout, stderr, status = mypy_api.run(["--check-untyped-defs"] + targets)
        assert status == 0, stdout + stderr

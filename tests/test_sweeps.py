"""Value-for-value regression gates for ``convergence_time_sweep``.

ISSUE 4 routed the sweep's *spec path* through
``run_campaign(executor="serial")``.  These tests pin both paths to
their pre-campaign semantics:

* the spec path must reproduce, bit-for-bit, what the pre-campaign
  implementation produced (a hand-rolled ``spawn_seeds`` +
  ``simulate`` loop, inlined here as the reference);
* the object path is untouched and must keep replaying the PR-2
  ``fastest_engine`` + ``run_replicated`` wiring bit-for-bit.
"""

import pytest

from repro.api import SimulationSpec, simulate
from repro.api import executors as executors_module
from repro.core.rng import spawn_seed_sequences, spawn_seeds
from repro.engine.dispatch import fastest_engine
from repro.engine.ensemble import run_replicated
from repro.graphs.complete import CompleteGraph
from repro.protocols.two_choices import TwoChoicesSequential
from repro.workloads.initial import benchmark_split
from repro.workloads.sweeps import convergence_time_sweep

NS = [200, 300, 400]
REPS = 3
SEED = 20170725


def _payloads(sweep_output):
    return {n: [r.to_dict() for r in runs] for n, runs in sweep_output.items()}


def _pre_campaign_spec_path(ns, reps, seed, model="sequential", initial="benchmark-split",
                            initial_params=None):
    """The spec path exactly as it was before the campaign layer."""
    out = {}
    for n, child_seed in zip(ns, spawn_seeds(seed, len(ns))):
        spec = SimulationSpec(
            protocol="two-choices",
            n=int(n),
            model=model,
            initial=initial,
            initial_params=dict(initial_params or {}),
            reps=reps,
            seed=child_seed,
        )
        out[int(n)] = simulate(spec).runs
    return out


class TestSpecPathRegression:
    def test_campaign_routing_is_value_for_value(self):
        via_campaign = convergence_time_sweep("two-choices", NS, reps=REPS, seed=SEED)
        reference = _pre_campaign_spec_path(NS, REPS, SEED)
        assert _payloads(via_campaign) == _payloads(reference)

    def test_campaign_routing_honours_initial_and_model(self):
        kwargs = dict(
            model="synchronous", initial="two-colors", initial_params={"gap": 50}
        )
        via_campaign = convergence_time_sweep(
            "two-choices", [200, 300], reps=2, seed=7, **kwargs
        )
        reference = _pre_campaign_spec_path([200, 300], 2, 7, **kwargs)
        assert _payloads(via_campaign) == _payloads(reference)

    def test_empty_grid(self):
        assert convergence_time_sweep("two-choices", [], reps=2, seed=7) == {}

    def test_reproducible_across_calls(self):
        first = convergence_time_sweep("two-choices", NS, reps=REPS, seed=SEED)
        second = convergence_time_sweep("two-choices", NS, reps=REPS, seed=SEED)
        assert _payloads(first) == _payloads(second)

    def test_cache_gives_engine_free_replay(self, tmp_path, monkeypatch):
        cold = convergence_time_sweep(
            "two-choices", NS, reps=REPS, seed=SEED, cache=str(tmp_path)
        )

        def explode(payload):  # pragma: no cover - asserts the engine stays cold
            raise AssertionError("warm sweep replay touched an engine")

        monkeypatch.setattr(executors_module, "execute_spec_payload", explode)
        warm = convergence_time_sweep(
            "two-choices", NS, reps=REPS, seed=SEED, cache=str(tmp_path)
        )
        assert _payloads(warm) == _payloads(cold)

    def test_process_executor_matches_serial(self):
        serial = convergence_time_sweep("two-choices", NS, reps=REPS, seed=SEED)
        process = convergence_time_sweep(
            "two-choices", NS, reps=REPS, seed=SEED, executor="process", workers=2
        )
        assert _payloads(process) == _payloads(serial)


class TestObjectPathRegression:
    def test_object_path_is_bit_for_bit_pr2(self):
        """The object path replays the PR-2 wiring exactly (untouched)."""
        protocol = TwoChoicesSequential()
        via_sweep = convergence_time_sweep(protocol, NS, reps=REPS, seed=SEED)
        reference = {}
        for n, child in zip(NS, spawn_seed_sequences(SEED, len(NS))):
            engine = fastest_engine(protocol, CompleteGraph(n), model="sequential", n_reps=REPS)
            reference[n] = run_replicated(engine, benchmark_split(n), REPS, seed=child)
        assert _payloads(via_sweep) == _payloads(reference)

    def test_object_path_ignores_campaign_kwargs_gracefully(self):
        protocol = TwoChoicesSequential()
        # executor/cache/workers are spec-path-only; the object path takes
        # its historical route regardless and stays bit-for-bit.
        via_sweep = convergence_time_sweep(
            protocol, [200], reps=2, seed=5, executor="process", workers=2
        )
        engine = fastest_engine(protocol, CompleteGraph(200), model="sequential", n_reps=2)
        reference = run_replicated(
            engine, benchmark_split(200), 2, seed=spawn_seed_sequences(5, 1)[0]
        )
        assert _payloads(via_sweep) == {200: [r.to_dict() for r in reference]}

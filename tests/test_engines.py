"""Tests for the four engines (synchronous, counts, sequential, continuous)."""

import numpy as np
import pytest

from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.engine.base import consensus_reached, near_consensus, plurality_fraction_at_least
from repro.engine.continuous import ContinuousEngine
from repro.engine.counts import CountsEngine
from repro.engine.delays import FixedDelay
from repro.engine.sequential import SequentialEngine
from repro.engine.synchronous import SynchronousEngine
from repro.graphs.complete import CompleteGraph
from repro.protocols.two_choices import TwoChoicesCounts, TwoChoicesSequential, TwoChoicesSynchronous
from repro.protocols.voter import VoterSequential


class TestStopConditions:
    def test_consensus_reached(self):
        assert consensus_reached(np.array([10, 0]))
        assert not consensus_reached(np.array([9, 1]))

    def test_near_consensus(self):
        stop = near_consensus(0.1)
        assert stop(np.array([95, 5]))
        assert not stop(np.array([85, 15]))

    def test_near_consensus_validation(self):
        with pytest.raises(ConfigurationError):
            near_consensus(0.0)
        with pytest.raises(ConfigurationError):
            near_consensus(1.0)

    def test_plurality_fraction(self):
        stop = plurality_fraction_at_least(0.6)
        assert stop(np.array([60, 40]))
        assert not stop(np.array([59, 41]))

    def test_plurality_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            plurality_fraction_at_least(0.0)


class TestSynchronousEngine:
    def test_converges_with_bias(self):
        engine = SynchronousEngine(TwoChoicesSynchronous(), CompleteGraph(300))
        result = engine.run(ColorConfiguration([220, 80]), seed=1)
        assert result.converged
        assert result.winner == 0
        assert result.parallel_time == result.rounds

    def test_explicit_color_array(self):
        colors = np.array([0] * 250 + [1] * 50)
        engine = SynchronousEngine(TwoChoicesSynchronous(), CompleteGraph(300))
        result = engine.run(colors, seed=2)
        assert result.initial.counts == (250, 50)

    def test_size_mismatch_rejected(self):
        engine = SynchronousEngine(TwoChoicesSynchronous(), CompleteGraph(10))
        with pytest.raises(ConfigurationError):
            engine.run(ColorConfiguration([5, 6]), seed=0)

    def test_max_rounds_budget(self):
        engine = SynchronousEngine(TwoChoicesSynchronous(), CompleteGraph(200))
        result = engine.run(ColorConfiguration([101, 99]), max_rounds=1, seed=3)
        assert result.rounds <= 1

    def test_trace_recording(self):
        engine = SynchronousEngine(TwoChoicesSynchronous(), CompleteGraph(300))
        result = engine.run(ColorConfiguration([200, 100]), record_trace=True, seed=4)
        assert result.trace is not None
        assert len(result.trace) >= 2
        assert result.trace.points[0].counts == (200, 100)

    def test_deterministic_given_seed(self):
        engine = SynchronousEngine(TwoChoicesSynchronous(), CompleteGraph(300))
        a = engine.run(ColorConfiguration([200, 100]), seed=42)
        b = engine.run(ColorConfiguration([200, 100]), seed=42)
        assert a.rounds == b.rounds
        assert a.final.counts == b.final.counts

    def test_already_converged_start(self):
        engine = SynchronousEngine(TwoChoicesSynchronous(), CompleteGraph(10))
        result = engine.run(ColorConfiguration([10, 0]), seed=0)
        assert result.converged
        assert result.rounds == 0


class TestCountsEngine:
    def test_converges_with_bias(self):
        result = CountsEngine(TwoChoicesCounts()).run(ColorConfiguration([700, 300]), seed=1)
        assert result.converged
        assert result.winner == 0

    def test_population_conserved_along_trace(self):
        result = CountsEngine(TwoChoicesCounts()).run(
            ColorConfiguration([600, 400]), seed=2, record_trace=True
        )
        totals = result.trace.count_matrix().sum(axis=1)
        assert (totals == 1000).all()

    def test_requires_configuration(self):
        with pytest.raises(ConfigurationError):
            CountsEngine(TwoChoicesCounts()).run(np.array([5, 5]), seed=0)

    def test_near_consensus_stop(self):
        result = CountsEngine(TwoChoicesCounts()).run(
            ColorConfiguration([9_000, 1_000]), stop=near_consensus(0.05), seed=3
        )
        assert result.converged
        assert result.final.c1 >= 0.95 * result.final.n

    def test_deterministic_given_seed(self):
        engine = CountsEngine(TwoChoicesCounts())
        a = engine.run(ColorConfiguration([700, 300]), seed=9)
        b = engine.run(ColorConfiguration([700, 300]), seed=9)
        assert a.rounds == b.rounds
        assert a.final.counts == b.final.counts


class TestSequentialEngine:
    def test_converges_and_reports_parallel_time(self):
        engine = SequentialEngine(TwoChoicesSequential(), CompleteGraph(200))
        result = engine.run(ColorConfiguration([150, 50]), seed=1)
        assert result.converged
        assert result.winner == 0
        assert result.parallel_time == pytest.approx(result.rounds / 200)

    def test_budget_exhaustion_reported(self):
        engine = SequentialEngine(VoterSequential(), CompleteGraph(100))
        result = engine.run(ColorConfiguration([50, 50]), max_ticks=50, seed=2)
        assert not result.converged or result.rounds <= 50

    def test_trace(self):
        engine = SequentialEngine(TwoChoicesSequential(), CompleteGraph(100))
        result = engine.run(
            ColorConfiguration([70, 30]), record_trace=True, trace_every_parallel=1.0, seed=3
        )
        assert result.trace is not None
        assert len(result.trace) >= 2

    def test_size_mismatch(self):
        engine = SequentialEngine(TwoChoicesSequential(), CompleteGraph(10))
        with pytest.raises(ConfigurationError):
            engine.run(ColorConfiguration([4, 4]), seed=0)


class TestContinuousEngine:
    def test_instantaneous_converges(self):
        engine = ContinuousEngine(TwoChoicesSequential(), CompleteGraph(200))
        result = engine.run(ColorConfiguration([150, 50]), seed=1)
        assert result.converged
        assert result.winner == 0
        assert result.parallel_time > 0

    def test_delayed_converges(self):
        engine = ContinuousEngine(
            TwoChoicesSequential(), CompleteGraph(80), delay_model=FixedDelay(0.05)
        )
        result = engine.run(ColorConfiguration([65, 15]), seed=2, max_time=500.0)
        assert result.converged
        assert result.winner == 0

    def test_max_time_budget(self):
        engine = ContinuousEngine(VoterSequential(), CompleteGraph(100))
        result = engine.run(ColorConfiguration([50, 50]), max_time=0.5, seed=3)
        assert result.parallel_time <= 0.6

    def test_metadata_names_delay_model(self):
        engine = ContinuousEngine(
            TwoChoicesSequential(), CompleteGraph(50), delay_model=FixedDelay(0.1)
        )
        result = engine.run(ColorConfiguration([40, 10]), seed=4, max_time=200.0)
        assert "FixedDelay" in result.metadata["delay"]

    def test_parallel_time_tracks_ticks_per_node(self):
        """In the Poisson model, T ticks take ~T/n time."""
        engine = ContinuousEngine(TwoChoicesSequential(), CompleteGraph(500))
        result = engine.run(ColorConfiguration([400, 100]), seed=5)
        assert result.parallel_time == pytest.approx(result.rounds / 500, rel=0.35)

"""Tests for the phase schedule (repro.protocols.schedule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ScheduleError
from repro.protocols.schedule import (
    ACTION_BP,
    ACTION_NOP,
    ACTION_SYNC_JUMP,
    ACTION_SYNC_SAMPLE,
    ACTION_TC_COMMIT,
    ACTION_TC_SAMPLE,
    PhaseSchedule,
    default_delta,
    default_phase_count,
    default_sync_samples,
)


class TestDefaults:
    def test_delta_grows_with_n(self):
        assert default_delta(10**6) >= default_delta(10**3)

    def test_delta_positive(self):
        assert default_delta(2) >= 1

    def test_delta_factor(self):
        assert default_delta(10**6, delta_factor=2.0) >= 2 * default_delta(10**6) - 1

    def test_phase_count_grows_with_n(self):
        assert default_phase_count(10**9) >= default_phase_count(10**2)

    def test_sync_samples_matches_log_cubed(self):
        import math

        n = 10**6
        expected = math.ceil(max(math.log(math.log(n)), 1.5) ** 3)
        assert default_sync_samples(n) == expected

    def test_validation(self):
        with pytest.raises(ScheduleError):
            default_delta(1)
        with pytest.raises(ScheduleError):
            default_phase_count(0)
        with pytest.raises(ScheduleError):
            default_sync_samples(1)


class TestCompiledLayout:
    def test_lengths_consistent(self):
        schedule = PhaseSchedule.compile(4096)
        assert schedule.part_one_length == schedule.phases * schedule.phase_length
        assert schedule.total_length == schedule.part_one_length + schedule.endgame_ticks
        assert schedule.actions.size == schedule.part_one_length

    def test_each_phase_has_one_sample_and_one_commit(self):
        schedule = PhaseSchedule.compile(4096)
        actions = schedule.actions
        for p, start in enumerate(schedule.phase_starts):
            phase = actions[start:start + schedule.phase_length]
            assert (phase == ACTION_TC_SAMPLE).sum() == 1
            assert (phase == ACTION_TC_COMMIT).sum() == 1
            assert (phase == ACTION_SYNC_JUMP).sum() == 1
            assert (phase == ACTION_SYNC_SAMPLE).sum() == schedule.sync_samples

    def test_commit_is_two_blocks_after_sample(self):
        schedule = PhaseSchedule.compile(10_000)
        for start in schedule.phase_starts:
            assert schedule.actions[start] == ACTION_TC_SAMPLE
            assert schedule.actions[start + 2 * schedule.delta] == ACTION_TC_COMMIT

    def test_bp_block_is_contiguous(self):
        schedule = PhaseSchedule.compile(10_000)
        start = schedule.phase_starts[0]
        bp_start = start + 4 * schedule.delta
        bp_len = schedule.bp_blocks * schedule.delta
        assert (schedule.actions[bp_start:bp_start + bp_len] == ACTION_BP).all()

    def test_jump_is_last_slot_of_phase(self):
        schedule = PhaseSchedule.compile(10_000)
        for p, jump in enumerate(schedule.jump_slots):
            assert jump == schedule.phase_starts[p] + schedule.phase_length - 1
            assert schedule.actions[jump] == ACTION_SYNC_JUMP

    def test_sync_sampling_fits_before_jump(self):
        schedule = PhaseSchedule.compile(50)
        # sampling slots + at least one wait + the jump fit the sub-phase
        assert schedule.sync_samples <= schedule.sync_blocks * schedule.delta - 2

    def test_sync_disabled_removes_gadget_actions(self):
        schedule = PhaseSchedule.compile(4096, sync_enabled=False)
        assert (schedule.actions != ACTION_SYNC_JUMP).all()
        assert (schedule.actions != ACTION_SYNC_SAMPLE).all()
        # layout lengths stay identical so the ablation is like-for-like
        reference = PhaseSchedule.compile(4096, sync_enabled=True)
        assert schedule.part_one_length == reference.part_one_length

    def test_action_at_beyond_part_one_is_nop(self):
        schedule = PhaseSchedule.compile(1000)
        assert schedule.action_at(schedule.part_one_length + 5) == ACTION_NOP

    def test_phase_of(self):
        schedule = PhaseSchedule.compile(1000, phases=4)
        assert schedule.phase_of(0) == 0
        assert schedule.phase_of(schedule.phase_length) == 1
        assert schedule.phase_of(10 * schedule.part_one_length) == 3

    def test_phase_of_negative_rejected(self):
        with pytest.raises(ScheduleError):
            PhaseSchedule.compile(1000).phase_of(-1)

    def test_in_endgame(self):
        schedule = PhaseSchedule.compile(1000)
        assert not schedule.in_endgame(0)
        assert schedule.in_endgame(schedule.part_one_length)

    def test_describe_mentions_key_fields(self):
        text = PhaseSchedule.compile(1000).describe()
        assert "delta" in text and "phases" in text

    def test_explicit_overrides(self):
        schedule = PhaseSchedule.compile(1000, phases=3, sync_samples=4)
        assert schedule.phases == 3
        assert schedule.sync_samples == 4

    def test_validation(self):
        with pytest.raises(ScheduleError):
            PhaseSchedule.compile(1)
        with pytest.raises(ScheduleError):
            PhaseSchedule.compile(100, phases=0)
        with pytest.raises(ScheduleError):
            PhaseSchedule.compile(100, bp_blocks=0)
        with pytest.raises(ScheduleError):
            PhaseSchedule.compile(100, sync_samples=0)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=10**7))
def test_property_schedule_invariants(n):
    schedule = PhaseSchedule.compile(n)
    assert schedule.delta >= 1
    assert schedule.phases >= 1
    assert schedule.endgame_ticks >= 1
    assert schedule.actions.size == schedule.phases * schedule.phase_length
    # every working-time slot has a defined action code
    assert set(np.unique(schedule.actions)) <= {
        ACTION_NOP,
        ACTION_TC_SAMPLE,
        ACTION_TC_COMMIT,
        ACTION_BP,
        ACTION_SYNC_SAMPLE,
        ACTION_SYNC_JUMP,
    }

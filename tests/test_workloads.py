"""Tests for the workload generators and sweep grids."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.workloads.initial import (
    additive_gap,
    balanced,
    dirichlet_random,
    multiplicative_bias,
    power_law,
    theorem_1_1_gap,
    two_colors,
)
from repro.workloads.sweeps import linear_ints, log_spaced_ints, powers_of_two


class TestBalanced:
    def test_even_split(self):
        config = balanced(100, 4)
        assert config.counts == (25, 25, 25, 25)

    def test_remainder_distributed(self):
        config = balanced(10, 3)
        assert config.n == 10
        assert config.c1 - min(config.counts) <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            balanced(3, 5)


class TestAdditiveGap:
    def test_gap_realised(self):
        config = additive_gap(1000, 5, 100)
        assert config.n == 1000
        assert config.additive_bias >= 100
        runners = config.counts[1:]
        assert max(runners) == min(runners)  # c2 = ... = ck

    def test_zero_gap(self):
        config = additive_gap(100, 4, 0)
        assert config.n == 100

    def test_too_large_gap(self):
        with pytest.raises(ConfigurationError):
            additive_gap(100, 4, 99)

    def test_single_color(self):
        assert additive_gap(50, 1, 0).counts == (50,)


class TestTheorem11Gap:
    def test_meets_threshold(self):
        config = theorem_1_1_gap(10_000, 4, z=1.0)
        assert config.additive_bias >= math.sqrt(10_000 * math.log(10_000))

    def test_z_scales_gap(self):
        tight = theorem_1_1_gap(10_000, 4, z=1.0)
        loose = theorem_1_1_gap(10_000, 4, z=2.0)
        assert loose.additive_bias > tight.additive_bias


class TestMultiplicativeBias:
    def test_ratio_realised(self):
        config = multiplicative_bias(10_000, 5, 1.5)
        assert config.multiplicative_bias >= 1.5
        runners = config.counts[1:]
        assert max(runners) == min(runners)

    def test_satisfies_theorem_1_3_precondition(self):
        config = multiplicative_bias(10_000, 8, 1.3)
        assert config.satisfies_multiplicative_bias(0.29)

    def test_ratio_one_is_near_balanced(self):
        config = multiplicative_bias(1000, 4, 1.0)
        assert config.c1 - config.c2 <= config.k

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            multiplicative_bias(100, 4, 0.9)
        with pytest.raises(ConfigurationError):
            multiplicative_bias(10, 5, 100.0)


class TestPowerLaw:
    def test_descending(self):
        config = power_law(10_000, 10, alpha=1.0)
        assert config.counts == config.sorted_counts
        assert config.n == 10_000

    def test_alpha_zero_is_flatish(self):
        config = power_law(1000, 4, alpha=0.0)
        assert config.c1 - min(config.counts) <= 2

    def test_every_color_populated(self):
        config = power_law(1000, 50, alpha=2.0)
        assert all(c >= 1 for c in config.counts)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            power_law(100, 4, alpha=-1)


class TestDirichlet:
    def test_sums_to_n(self):
        config = dirichlet_random(5000, 6, seed=1)
        assert config.n == 5000
        assert all(c >= 1 for c in config.counts)

    def test_deterministic_given_seed(self):
        a = dirichlet_random(5000, 6, seed=42)
        b = dirichlet_random(5000, 6, seed=42)
        assert a.counts == b.counts

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dirichlet_random(100, 4, concentration=0.0)


class TestTwoColors:
    def test_gap(self):
        config = two_colors(1000, 100)
        assert config.n == 1000
        assert config.additive_bias in (100, 101)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            two_colors(10, -1)
        with pytest.raises(ConfigurationError):
            two_colors(4, 10)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=100_000),
    k=st.integers(min_value=1, max_value=9),
)
def test_property_generators_sum_to_n(n, k):
    assert balanced(n, k).n == n
    assert power_law(n, k).n == n
    ratio_config = multiplicative_bias(n, k, 1.2)
    assert ratio_config.n == n
    assert ratio_config.counts == ratio_config.sorted_counts


class TestSweeps:
    def test_log_spaced(self):
        values = log_spaced_ints(10, 1000, 3)
        assert values[0] == 10
        assert values[-1] == 1000
        assert values == sorted(set(values))

    def test_log_spaced_single(self):
        assert log_spaced_ints(7, 100, 1) == [7]

    def test_log_spaced_validation(self):
        with pytest.raises(ConfigurationError):
            log_spaced_ints(10, 5, 3)
        with pytest.raises(ConfigurationError):
            log_spaced_ints(1, 10, 0)

    def test_powers_of_two(self):
        assert powers_of_two(4, 64) == [4, 8, 16, 32, 64]
        assert powers_of_two(5, 64) == [8, 16, 32, 64]

    def test_powers_of_two_empty_range(self):
        with pytest.raises(ConfigurationError):
            powers_of_two(33, 63)

    def test_linear(self):
        assert linear_ints(2, 10, 3) == [2, 5, 8]

    def test_linear_validation(self):
        with pytest.raises(ConfigurationError):
            linear_ints(2, 10, 0)
        with pytest.raises(ConfigurationError):
            linear_ints(10, 2, 1)

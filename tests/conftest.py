"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.rng import as_generator
from repro.graphs.complete import CompleteGraph


@pytest.fixture
def rng():
    """A fixed-seed generator; tests needing more streams split it."""
    return as_generator(12345)


@pytest.fixture
def small_clique():
    """A complete graph small enough for exhaustive checks."""
    return CompleteGraph(16)


@pytest.fixture
def medium_clique():
    """A complete graph for statistical checks."""
    return CompleteGraph(400)

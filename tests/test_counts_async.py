"""The counts-level asynchronous fast path.

Three layers of evidence that the batched tick engines draw from the
sequential model's law:

1. *Tick law*: every protocol's ``tick_transition_matrix`` matches the
   empirical one-tick behaviour of its agent-level ``seq_tick``.
2. *Chain exactness*: the batched histogram chain agrees with the
   per-tick chain for small ``n`` and ``B`` (exactly at ``B = 1``).
3. *Run distributions*: KS agreement of convergence-time samples
   between ``CountsSequentialEngine`` / ``CountsContinuousEngine`` and
   the agent-level ``SequentialEngine`` / ``ContinuousEngine``.

Plus the routing table of :func:`repro.engine.dispatch.fastest_engine`
and the law-preservation of the vectorised ``seq_tick_batch`` hooks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.engine import (
    ContinuousEngine,
    CountsContinuousEngine,
    CountsEngine,
    CountsSequentialEngine,
    SequentialEngine,
    SparseSequentialEngine,
    SynchronousEngine,
    fastest_engine,
)
from repro.engine.delays import FixedDelay
from repro.graphs.complete import CompleteGraph
from repro.graphs.families import hypercube
from repro.analysis.statistics import ks_two_sample
from repro.protocols import (
    AsyncPluralityProtocol,
    ThreeMajoritySequential,
    ThreeMajoritySequentialCounts,
    TwoChoicesCounts,
    TwoChoicesSequential,
    TwoChoicesSequentialCounts,
    TwoChoicesSynchronous,
    UndecidedStateSequential,
    UndecidedStateSequentialCounts,
    VoterSequential,
    VoterSequentialCounts,
)
from repro.protocols.base import SequentialProtocol
from repro.workloads.initial import two_colors

PAIRS = [
    (TwoChoicesSequential(), TwoChoicesSequentialCounts()),
    (VoterSequential(), VoterSequentialCounts()),
    (ThreeMajoritySequential(), ThreeMajoritySequentialCounts()),
    (UndecidedStateSequential(), UndecidedStateSequentialCounts()),
]


def _label_histogram(protocol, counts):
    """Per-node labels realising *counts* (deterministic block layout)."""
    return np.repeat(np.arange(len(counts)), counts)


class TestTickTransitionMatrix:
    """Layer 1: the matrix is the exact conditional law of one tick."""

    @pytest.mark.parametrize("pair", PAIRS, ids=lambda p: p[1].name)
    def test_rows_are_stochastic_for_nonempty_classes(self, pair):
        _, counts_protocol = pair
        counts = np.array([17, 9, 4] if "undecided" not in counts_protocol.name else [17, 9, 4, 6])
        matrix = np.asarray(counts_protocol.tick_transition_matrix(counts))
        assert (matrix >= 0).all()
        assert np.allclose(matrix.sum(axis=1), 1.0)

    @pytest.mark.parametrize("pair", PAIRS, ids=lambda p: p[1].name)
    def test_matrix_matches_empirical_seq_tick(self, pair):
        seq_protocol, counts_protocol = pair
        undecided = "undecided" in counts_protocol.name
        # For USD the last bucket is the undecided label; the agent-side
        # colour count excludes it (make_state widens by one itself).
        counts = np.array([14, 8, 0, 8] if undecided else [16, 8, 6])
        k = counts.size - 1 if undecided else counts.size
        labels = _label_histogram(seq_protocol, counts)
        n = labels.size
        graph = CompleteGraph(n)
        matrix = np.asarray(counts_protocol.tick_transition_matrix(counts))
        rng = np.random.default_rng(7)
        trials = 3000
        for label in range(counts.size):
            if counts[label] == 0:
                continue
            node = int(np.flatnonzero(labels == label)[0])
            observed = np.zeros(counts.size, dtype=np.int64)
            for _ in range(trials):
                state = seq_protocol.make_state(labels.copy(), k)
                seq_protocol.seq_tick(state, node, graph, rng)
                observed[int(state.colors[node])] += 1
            expected = matrix[label] * trials
            # 4-sigma binomial band per outcome.
            sigma = np.sqrt(np.clip(matrix[label] * (1 - matrix[label]) * trials, 1.0, None))
            assert (np.abs(observed - expected) <= 4 * sigma + 1e-9).all(), (
                f"{counts_protocol.name} label {label}: observed {observed}, expected {expected}"
            )


def _final_c0_mean(engine_runner, trials, seed0):
    values = [engine_runner(seed0 + s) for s in range(trials)]
    return float(np.mean(values)), float(np.var(values))


class TestBatchedChainExactness:
    """Layer 2: the batched histogram chain matches the tick chain."""

    def _compare(self, batch_ticks, n, counts, ticks, trials=300):
        config = ColorConfiguration(counts)
        never = lambda c: False
        agent = SequentialEngine(TwoChoicesSequential(), CompleteGraph(n))
        fast = CountsSequentialEngine(TwoChoicesSequentialCounts(), batch_ticks=batch_ticks)
        agent_mean, agent_var = _final_c0_mean(
            lambda s: agent.run(config, seed=s, max_ticks=ticks, stop=never).final[0], trials, 0
        )
        fast_mean, fast_var = _final_c0_mean(
            lambda s: fast.run(config, seed=s, max_ticks=ticks, stop=never).final[0], trials, 10**6
        )
        sem = np.sqrt((agent_var + fast_var) / trials)
        assert abs(agent_mean - fast_mean) < 4 * sem + 1e-9

    def test_b1_is_the_exact_tick_chain(self):
        """Batch size 1 *is* the single-tick chain — small n, many runs."""
        self._compare(batch_ticks=1, n=60, counts=[40, 20], ticks=120)

    def test_small_batches_match_tick_chain(self):
        """B = 8 at n = 96: batching error is far below sampling noise."""
        self._compare(batch_ticks=8, n=96, counts=[60, 36], ticks=192)

    def test_default_batch_matches_tick_chain(self):
        """The default B = n/256 on a mid-size instance."""
        self._compare(batch_ticks=None, n=512, counts=[320, 192], ticks=1024, trials=200)

    def test_requires_color_configuration(self):
        engine = CountsSequentialEngine(TwoChoicesSequentialCounts())
        with pytest.raises(ConfigurationError):
            engine.run(np.array([5, 5]))

    def test_deterministic_given_seed(self):
        engine = CountsSequentialEngine(TwoChoicesSequentialCounts())
        a = engine.run(ColorConfiguration([700, 300]), seed=42)
        b = engine.run(ColorConfiguration([700, 300]), seed=42)
        assert a.rounds == b.rounds and a.final.counts == b.final.counts

    def test_trace_recording(self):
        engine = CountsSequentialEngine(TwoChoicesSequentialCounts())
        result = engine.run(
            ColorConfiguration([700, 300]), seed=3, record_trace=True, trace_every_parallel=1.0
        )
        assert result.trace is not None
        assert len(result.trace) >= 2


@settings(max_examples=25, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=0, max_value=60), min_size=2, max_size=5).filter(
        lambda c: sum(c) >= 2
    ),
    batch=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_batched_chain_conserves_population(counts, batch, seed):
    """Population conservation and non-negativity for every companion
    protocol, on adversarial inputs (tiny classes exercise the
    overdraw-and-split fallback)."""
    config = ColorConfiguration(counts)
    total = sum(counts)
    never = lambda c: False
    for counts_protocol in (
        TwoChoicesSequentialCounts(),
        VoterSequentialCounts(),
        ThreeMajoritySequentialCounts(),
        UndecidedStateSequentialCounts(),
    ):
        engine = CountsSequentialEngine(counts_protocol, batch_ticks=batch)
        result = engine.run(config, seed=seed, max_ticks=4 * batch, stop=never)
        final = np.asarray(result.final.counts)
        assert int(final.sum()) == total
        assert (final >= 0).all()
        # Absorbed starts may exit at the first check; otherwise the
        # full budget is spent (stop never fires).
        assert result.rounds <= 4 * batch


class TestCrossEngineAgreement:
    """Layer 3: convergence-time distributions agree across engines."""

    N = 600
    TRIALS = 60

    def _times(self, runner, seed0):
        results = [runner(seed0 + s) for s in range(self.TRIALS)]
        assert all(r.converged for r in results)
        return [r.parallel_time for r in results]

    def test_counts_sequential_vs_sequential_ks(self):
        config = two_colors(self.N, int(0.2 * self.N))
        agent = SequentialEngine(TwoChoicesSequential(), CompleteGraph(self.N))
        fast = fastest_engine(TwoChoicesSequential(), CompleteGraph(self.N), model="sequential")
        agent_times = self._times(lambda s: agent.run(config, seed=s), 0)
        fast_times = self._times(lambda s: fast.run(config, seed=s), 10**6)
        statistic, pvalue = ks_two_sample(agent_times, fast_times)
        assert pvalue >= 0.01, f"KS rejected: D={statistic:.3f}, p={pvalue:.4f}"
        # Means agree too (4-sigma band).
        sem = np.sqrt((np.var(agent_times) + np.var(fast_times)) / self.TRIALS)
        assert abs(np.mean(agent_times) - np.mean(fast_times)) < 4 * sem + 1e-9

    def test_counts_continuous_vs_continuous_ks(self):
        config = two_colors(self.N, int(0.2 * self.N))
        agent = ContinuousEngine(TwoChoicesSequential(), CompleteGraph(self.N))
        fast = fastest_engine(TwoChoicesSequential(), CompleteGraph(self.N), model="continuous")
        agent_times = self._times(lambda s: agent.run(config, seed=s), 0)
        fast_times = self._times(lambda s: fast.run(config, seed=s), 10**6)
        statistic, pvalue = ks_two_sample(agent_times, fast_times)
        assert pvalue >= 0.01, f"KS rejected: D={statistic:.3f}, p={pvalue:.4f}"

    def test_counts_voter_consensus_probability(self):
        """Voter on K_n: P(colour 0 wins) equals its initial fraction —
        a distribution-level invariant the fast path must preserve."""
        n = 120
        config = ColorConfiguration([80, 40])
        engine = CountsSequentialEngine(VoterSequentialCounts())
        trials = 150
        results = [engine.run(config, seed=s, max_ticks=400 * n) for s in range(trials)]
        wins = np.mean([r.winner == 0 for r in results if r.converged])
        sigma = np.sqrt((2 / 3) * (1 / 3) / trials)
        assert abs(wins - 2 / 3) < 4 * sigma + 0.02


class TestDispatch:
    def test_sequential_on_complete_takes_counts_fast_path(self):
        engine = fastest_engine(TwoChoicesSequential(), CompleteGraph(100), model="sequential")
        assert isinstance(engine, CountsSequentialEngine)

    def test_continuous_on_complete_takes_counts_fast_path(self):
        engine = fastest_engine(TwoChoicesSequential(), CompleteGraph(100), model="continuous")
        assert isinstance(engine, CountsContinuousEngine)

    def test_sequential_counts_protocol_direct(self):
        engine = fastest_engine(TwoChoicesSequentialCounts(), CompleteGraph(100))
        assert isinstance(engine, CountsSequentialEngine)

    def test_sparse_topology_routes_by_size_crossover(self):
        # Small sparse topologies stay on the zip-apply hooks engine;
        # the hazard-batched engine engages from the dispatch crossover
        # (full table: tests/test_dispatch_routing.py).
        engine = fastest_engine(TwoChoicesSequential(), hypercube(5), model="sequential")
        assert isinstance(engine, SequentialEngine)
        engine = fastest_engine(TwoChoicesSequential(), hypercube(15), model="sequential")
        assert isinstance(engine, SparseSequentialEngine)

    def test_protocol_without_companion_falls_back(self):
        engine = fastest_engine(AsyncPluralityProtocol(), CompleteGraph(100), model="sequential")
        assert isinstance(engine, SequentialEngine)

    def test_delays_force_event_queue_engine(self):
        engine = fastest_engine(
            TwoChoicesSequential(), CompleteGraph(100), model="continuous", delay_model=FixedDelay(0.1)
        )
        assert isinstance(engine, ContinuousEngine)

    def test_synchronous_routing(self):
        assert isinstance(
            fastest_engine(TwoChoicesCounts(), CompleteGraph(100), model="synchronous"), CountsEngine
        )
        assert isinstance(
            fastest_engine(TwoChoicesSynchronous(), hypercube(5), model="synchronous"),
            SynchronousEngine,
        )

    def test_invalid_requests_raise(self):
        with pytest.raises(ConfigurationError):
            fastest_engine(TwoChoicesSequential(), CompleteGraph(100), model="warp-drive")
        with pytest.raises(ConfigurationError):
            fastest_engine(
                TwoChoicesSequential(), CompleteGraph(100), model="sequential", delay_model=FixedDelay(0.1)
            )
        with pytest.raises(ConfigurationError):
            fastest_engine(TwoChoicesCounts(), hypercube(5), model="synchronous")

    def test_fast_path_runs_and_converges(self):
        engine = fastest_engine(TwoChoicesSequential(), CompleteGraph(1000), model="sequential")
        result = engine.run(ColorConfiguration([700, 300]), seed=1)
        assert result.converged and result.winner == 0
        assert result.metadata["engine"] == "counts-sequential"


class TestSeqTickBatchHooks:
    """The vectorised batch hooks draw from the per-tick law."""

    @pytest.mark.parametrize("pair", PAIRS, ids=lambda p: p[0].name)
    def test_batch_hook_matches_per_tick_loop(self, pair):
        seq_protocol, _ = pair
        undecided = "undecided" in seq_protocol.name
        counts = [30, 20]
        k = 2
        labels = _label_histogram(seq_protocol, np.array(counts))
        n = labels.size
        graph = CompleteGraph(n)
        ticks = 150
        trials = 250
        rng_batch = np.random.default_rng(1)
        rng_loop = np.random.default_rng(2)
        batch_c0, loop_c0 = [], []
        for trial in range(trials):
            nodes = np.random.default_rng(1000 + trial).integers(0, n, size=ticks)
            state = seq_protocol.make_state(labels.copy(), k)
            seq_protocol.seq_tick_batch(state, nodes, graph, rng_batch)
            batch_c0.append(int(state.counts()[0]))
            state = seq_protocol.make_state(labels.copy(), k)
            # the reference loop: one seq_tick per node
            SequentialProtocol.seq_tick_batch_loop(seq_protocol, state, nodes, graph, rng_loop)
            loop_c0.append(int(state.counts()[0]))
        sem = np.sqrt((np.var(batch_c0) + np.var(loop_c0)) / trials)
        assert abs(np.mean(batch_c0) - np.mean(loop_c0)) < 4 * sem + 1e-9


class TestTraceCadence:
    """Satellite: trace recording is decoupled from check_every."""

    def test_continuous_trace_honoured_with_large_check_every(self):
        engine = ContinuousEngine(TwoChoicesSequential(), CompleteGraph(200))
        result = engine.run(
            ColorConfiguration([140, 60]),
            seed=5,
            record_trace=True,
            trace_every=1.0,
            check_every=10**9,  # stop checks essentially never fire
            max_time=6.0,
        )
        # One point per unit of parallel time plus endpoints.
        assert len(result.trace) >= 5

    def test_sequential_trace_honoured_with_large_check_every(self):
        engine = SequentialEngine(TwoChoicesSequential(), CompleteGraph(200))
        result = engine.run(
            ColorConfiguration([140, 60]),
            seed=5,
            record_trace=True,
            trace_every_parallel=1.0,
            check_every=10**6,
            max_ticks=6 * 200,
        )
        assert len(result.trace) >= 5
